"""Lowering of a typed Python function body to a kernelc AST.

The lowering is *differential by construction*: the generated OpenCL-C
must compute bit-identical results to executing the same Python
function on NumPy scalars on the host.  The type system that makes this
work distinguishes **strong** values (carrying a NumPy dtype: container
elements, annotated parameters) from **weak** values (Python ``int``/
``float`` literals and values computed purely from them), mirroring
NumPy 2's weak-scalar promotion:

* binary results use :func:`numpy.result_type` with Python-scalar
  proxies for weak operands — NumPy promotion by construction;
* weak values are carried at ``long``/``double`` (the exact value
  semantics of Python ``int``/``float``) and convert at the point they
  combine with a strong value, exactly where NumPy converts them;
* integer results narrower than ``int`` get an explicit wrapping cast
  after every operation (C promotes to ``int`` and would *not* wrap);
* ``/`` is true division (float result, ``float64`` for integer
  operands, as NumPy), ``//`` and ``%`` lower to helper functions with
  Python's floored semantics (and NumPy's ``x // 0 == 0``);
* ``math.*`` calls cast their arguments to ``double`` and call the
  kernelc builtin of the same name — both sides then evaluate the very
  same ``libm`` function at the same precision.

Anything whose Python semantics cannot be reproduced exactly raises
:class:`JitError` with the offending Python source line and a caret —
a diagnostic, never a silent miscompile.
"""

from __future__ import annotations

import ast as pyast
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kernelc import ast as kast
from ..kernelc.ctypes_ import (BOOL, DOUBLE, FLOAT, HALF, INT, LONG, ULONG,
                               SIZE_T, PointerType, ScalarType, ctype_from_numpy,
                               numpy_dtype, wrap_int)
from ..kernelc.parser import parse
from ..kernelc.source import BUILTIN_SPAN
from .errors import JitError

SPAN = BUILTIN_SPAN

# Python math functions with a same-semantics kernelc builtin (both are
# the host libm at double precision).
_MATH_FLOAT = {
    "sqrt": "sqrt", "sin": "sin", "cos": "cos", "tan": "tan",
    "asin": "asin", "acos": "acos", "atan": "atan",
    "sinh": "sinh", "cosh": "cosh", "tanh": "tanh",
    "asinh": "asinh", "acosh": "acosh", "atanh": "atanh",
    "exp": "exp", "expm1": "expm1",
    "log": "log", "log2": "log2", "log10": "log10", "log1p": "log1p",
    "fabs": "fabs", "erf": "erf", "erfc": "erfc",
    "gamma": "tgamma", "lgamma": "lgamma",
    "pow": "pow", "fmod": "fmod", "atan2": "atan2",
    "hypot": "hypot", "copysign": "copysign", "remainder": "remainder",
}
_MATH_BINARY = {"pow", "fmod", "atan2", "hypot", "copysign", "remainder"}
# math functions returning a Python int (lower as a truncating cast of
# the double builtin result).
_MATH_TO_INT = {"floor": "floor", "ceil": "ceil", "trunc": "trunc"}
_MATH_CONSTS = {"pi": math.pi, "e": math.e, "tau": math.tau}

_INT_HELPERS = {
    "floordiv": (
        "long {name}(long a, long b) {{\n"
        "    if (b == 0) {{ return 0; }}\n"
        "    long q = a / b;\n"
        "    if (a % b != 0 && (a < 0) != (b < 0)) {{ q = q - 1; }}\n"
        "    return q;\n"
        "}}"
    ),
    "mod": (
        "long {name}(long a, long b) {{\n"
        "    if (b == 0) {{ return 0; }}\n"
        "    long r = a % b;\n"
        "    if (r != 0 && (r < 0) != (b < 0)) {{ r = r + b; }}\n"
        "    return r;\n"
        "}}"
    ),
}


@dataclass(frozen=True)
class JType:
    """A lowering type: a carrier ctype plus an optional weak kind."""

    ctype: ScalarType
    weak: Optional[str] = None  # None | 'int' | 'float'

    def __str__(self) -> str:
        return f"weak {self.weak}" if self.weak else self.ctype.name


WEAK_INT = JType(LONG, "int")
WEAK_FLOAT = JType(DOUBLE, "float")


@dataclass(frozen=True)
class JPointer:
    """A pointer parameter: element type plus its declared intent mode."""

    element: ScalarType
    mode: str  # 'r' | 'w' | 'rw' | 'inc'
    intent_name: str


@dataclass
class TX:
    """A typed, lowered expression.

    ``pyconst`` holds the exact Python value for constant expressions;
    such expressions have no node until a context type materializes
    them as a literal.
    """

    jt: JType
    node: Optional[kast.Expr] = None
    pyconst: Optional[object] = None


@dataclass
class LoweredParam:
    name: str
    ctype: object  # ScalarType or JPointer


@dataclass
class Lowered:
    """The result of lowering: printable kernelc AST plus metadata."""

    program: kast.Program
    main: kast.FunctionDef
    return_ctype: ScalarType
    param_ctypes: Tuple[object, ...]
    intent_markers: List[str] = field(default_factory=list)


def _proxy(jt: JType):
    """The value :func:`numpy.result_type` should see for ``jt``."""
    if jt.weak == "int":
        return 1
    if jt.weak == "float":
        return 1.5
    return numpy_dtype(jt.ctype)


def combine(a: JType, b: JType) -> JType:
    """NumPy's promotion of a binary operation over ``a`` and ``b``."""
    if a.weak and b.weak:
        return WEAK_FLOAT if "float" in (a.weak, b.weak) else WEAK_INT
    return JType(ctype_from_numpy(np.result_type(_proxy(a), _proxy(b))))


class Lowerer:
    """Lowers one Python function definition at concrete types."""

    def __init__(self, *, name: str, filename: str, fdef: pyast.FunctionDef,
                 source_lines: List[str], line_offset: int,
                 params: List[LoweredParam],
                 return_ctype: Optional[ScalarType],
                 component: Optional[int] = None,
                 n_outputs: Optional[int] = None):
        self.name = name
        self.filename = filename
        self.fdef = fdef
        self.source_lines = source_lines
        self.line_offset = line_offset
        self.params = params
        self.declared_return = return_ctype
        self.component = component
        self.n_outputs = n_outputs
        self.vars: Dict[str, JType] = {}
        self.var_order: List[str] = []
        self.helpers: Dict[str, str] = {}
        self.saw_return = False
        self._ret_jt: Optional[JType] = None
        self.changed = False
        self._temp_count = 0

    # -- diagnostics -------------------------------------------------------

    def err(self, message: str, node: Optional[pyast.AST] = None) -> JitError:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        end_col = getattr(node, "end_col_offset", None)
        src = None
        if line and 1 <= line <= len(self.source_lines):
            src = self.source_lines[line - 1].rstrip("\n")
        width = 1
        if end_col is not None and getattr(node, "end_lineno", line) == line:
            width = max(end_col - col, 1)
        return JitError(message, self.filename, line + self.line_offset if line else 0,
                        col, src, width)

    # -- environment -------------------------------------------------------

    def _param_type(self, name: str):
        for p in self.params:
            if p.name == name:
                return p.ctype
        return None

    def _join_var(self, name: str, jt: JType, node: pyast.AST) -> None:
        old = self.vars.get(name)
        if old is None:
            self.vars[name] = jt
            self.var_order.append(name)
            self.changed = True
            return
        new = self._join(old, jt, name, node)
        if new != old:
            self.vars[name] = new
            self.changed = True

    def _join(self, old: JType, new: JType, name: str, node: pyast.AST) -> JType:
        if old == new:
            return old
        if old.weak and new.weak:
            return WEAK_FLOAT if "float" in (old.weak, new.weak) else WEAK_INT
        if old.weak or new.weak:
            return combine(old, new)
        raise self.err(
            f"variable {name!r} is assigned conflicting types "
            f"({old} and {new}); keep each variable at one type", node)

    # -- helpers -----------------------------------------------------------

    def _helper(self, kind: str) -> str:
        helper_name = f"scl_jit_{kind}_{self.name}"
        if helper_name not in self.helpers:
            self.helpers[helper_name] = _INT_HELPERS[kind].format(name=helper_name)
        return helper_name

    def _temp(self) -> str:
        self._temp_count += 1
        return f"SCL_JIT_T{self._temp_count}"

    # -- materialization ---------------------------------------------------

    def _literal(self, value, T: ScalarType, node: pyast.AST) -> kast.Expr:
        if T.is_float():
            v = float(value)
            if not math.isfinite(v):
                raise self.err("non-finite constants are unsupported", node)
            if T == FLOAT:
                return kast.FloatLiteral(float(np.float32(v)), SPAN, "f")
            if T == HALF:
                return kast.Cast(HALF, kast.FloatLiteral(float(np.float16(v)), SPAN), SPAN)
            return kast.FloatLiteral(v, SPAN)
        v = int(value)
        if T in (ULONG, SIZE_T):
            v = wrap_int(v, LONG)
            return kast.Cast(T, kast.IntLiteral(v, SPAN), SPAN)
        v = wrap_int(v, T)
        if T == LONG and not (-(2 ** 31) <= v < 2 ** 31):
            return kast.IntLiteral(v, SPAN, "l")
        return kast.IntLiteral(v, SPAN)

    def as_ct(self, tx: TX, T: ScalarType, node: pyast.AST) -> kast.Expr:
        """``tx`` converted to carrier type ``T``."""
        if tx.pyconst is not None and tx.node is None:
            return self._literal(tx.pyconst, T, node)
        if tx.jt.ctype == T:
            return tx.node
        return kast.Cast(T, tx.node, SPAN)

    def _carrier(self, tx: TX, node: pyast.AST) -> kast.Expr:
        return self.as_ct(tx, tx.jt.ctype, node)

    # -- expressions -------------------------------------------------------

    def expr(self, node: pyast.AST) -> TX:
        if isinstance(node, pyast.Constant):
            return self._const(node)
        if isinstance(node, pyast.Name):
            return self._name(node)
        if isinstance(node, pyast.BinOp):
            return self._binop(node)
        if isinstance(node, pyast.UnaryOp):
            return self._unary(node)
        if isinstance(node, pyast.IfExp):
            return self._ifexp(node)
        if isinstance(node, pyast.Call):
            return self._call(node)
        if isinstance(node, pyast.Attribute):
            return self._attribute(node)
        if isinstance(node, pyast.Subscript):
            return self._subscript_load(node)
        if isinstance(node, (pyast.Compare, pyast.BoolOp)):
            raise self.err(
                "comparisons and and/or are only supported in conditions; "
                "use '1 if cond else 0' for a numeric result", node)
        if isinstance(node, pyast.Tuple):
            raise self.err("tuples are only supported as a whole-function "
                           "multi-output return", node)
        raise self.err(
            f"unsupported expression: {type(node).__name__}", node)

    def _const(self, node: pyast.Constant) -> TX:
        v = node.value
        if isinstance(v, bool):
            raise self.err("True/False are only supported in conditions", node)
        if isinstance(v, int):
            return TX(WEAK_INT, pyconst=v)
        if isinstance(v, float):
            return TX(WEAK_FLOAT, pyconst=v)
        raise self.err(f"unsupported constant {v!r}", node)

    def _name(self, node: pyast.Name) -> TX:
        pt = self._param_type(node.id)
        if isinstance(pt, JPointer):
            raise self.err(
                f"pointer parameter {node.id!r} used as a value; read it "
                "with get() or subscripting", node)
        if isinstance(pt, JType):
            # A weak parameter: a plain Python scalar supplied at the
            # call site (a skeleton "additional argument").  It takes
            # part in arithmetic with NumPy's weak-scalar promotion,
            # exactly as the Python value does on the host.
            return TX(pt, kast.Identifier(node.id, SPAN))
        if isinstance(pt, ScalarType):
            return TX(JType(pt), kast.Identifier(node.id, SPAN))
        jt = self.vars.get(node.id)
        if jt is None:
            raise self.err(f"undefined name {node.id!r}", node)
        return TX(jt, kast.Identifier(node.id, SPAN))

    def _fold(self, op, l: TX, r: TX, node: pyast.AST) -> Optional[TX]:
        if l.pyconst is None or r.pyconst is None or l.node is not None or r.node is not None:
            return None
        try:
            v = op(l.pyconst, r.pyconst)
        except ZeroDivisionError:
            raise self.err("constant division by zero", node)
        except Exception:
            return None
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return None
        return TX(WEAK_INT if isinstance(v, int) else WEAK_FLOAT, pyconst=v)

    def _wrap_small(self, expr: kast.Expr, R: ScalarType) -> kast.Expr:
        """Pin NumPy's per-operation semantics with an explicit cast.

        NumPy wraps integers at the result width and rounds floats after
        every operation; the execution backends evaluate with relaxed
        semantics (ints at arbitrary precision, floats in double) and
        only apply exact conversions at *explicit casts* and memory
        stores.  Wrapping each strong-typed operation in a cast makes
        the generated kernel compute NumPy's value by construction —
        including the double-rounding-safe float32 case (binary ops at
        p=24 through double's p=53 round identically, Figueroa's
        theorem).  Weak values (``long``/``double`` carriers) stay
        uncast: they model Python ``int``/``float`` semantics, which the
        relaxed evaluation matches better than wrapping would."""
        if R.is_integer():
            return kast.Cast(R, expr, SPAN)
        if R.is_float() and R != DOUBLE:
            return kast.Cast(R, expr, SPAN)
        return expr

    def _binop(self, node: pyast.BinOp) -> TX:
        l = self.expr(node.left)
        r = self.expr(node.right)
        op = node.op
        py_ops = {
            pyast.Add: (lambda a, b: a + b, "+"),
            pyast.Sub: (lambda a, b: a - b, "-"),
            pyast.Mult: (lambda a, b: a * b, "*"),
            pyast.Div: (lambda a, b: a / b, "/"),
            pyast.FloorDiv: (lambda a, b: a // b, None),
            pyast.Mod: (lambda a, b: a % b, None),
            pyast.LShift: (lambda a, b: a << b, "<<"),
            pyast.RShift: (lambda a, b: a >> b, ">>"),
            pyast.BitAnd: (lambda a, b: a & b, "&"),
            pyast.BitOr: (lambda a, b: a | b, "|"),
            pyast.BitXor: (lambda a, b: a ^ b, "^"),
        }
        if isinstance(op, pyast.Pow):
            raise self.err(
                "the ** operator is unsupported (its promotion rules do not "
                "map to OpenCL); use math.pow for float exponentiation", node)
        if type(op) not in py_ops:
            raise self.err(f"unsupported operator {type(op).__name__}", node)
        pyfn, c_op = py_ops[type(op)]
        folded = self._fold(pyfn, l, r, node)
        if folded is not None:
            return folded

        if isinstance(op, pyast.Div):
            R = combine(l.jt, r.jt)
            if R.weak:
                jt = WEAK_FLOAT
            elif R.ctype.is_integer():
                jt = JType(DOUBLE)  # np.true_divide on integers -> float64
            else:
                jt = R
            T = jt.ctype
            out = kast.BinaryOp("/", self.as_ct(l, T, node),
                                self.as_ct(r, T, node), SPAN)
            return TX(jt, self._wrap_small(out, T) if not jt.weak else out)

        if isinstance(op, (pyast.FloorDiv, pyast.Mod)):
            R = combine(l.jt, r.jt)
            if not (R.weak == "int" or (not R.weak and R.ctype.is_integer())):
                raise self.err(
                    "// and % are only supported on integers "
                    "(use math.floor(a / b) or math.fmod for floats)", node)
            helper = self._helper("floordiv" if isinstance(op, pyast.FloorDiv) else "mod")
            call = kast.Call(helper, [self.as_ct(l, LONG, node),
                                      self.as_ct(r, LONG, node)], SPAN)
            if R.weak:
                return TX(WEAK_INT, call)
            if R.ctype != LONG:
                return TX(R, kast.Cast(R.ctype, call, SPAN))
            return TX(R, call)

        if isinstance(op, (pyast.LShift, pyast.RShift, pyast.BitAnd,
                           pyast.BitOr, pyast.BitXor)):
            for side in (l, r):
                if side.jt.weak == "float" or (not side.jt.weak and not side.jt.ctype.is_integer()):
                    raise self.err("bitwise operators need integer operands", node)

        R = combine(l.jt, r.jt)
        T = R.ctype
        out = kast.BinaryOp(c_op, self.as_ct(l, T, node), self.as_ct(r, T, node), SPAN)
        return TX(R, self._wrap_small(out, T) if not R.weak else out)

    def _unary(self, node: pyast.UnaryOp) -> TX:
        if isinstance(node.op, pyast.Not):
            raise self.err("'not' is only supported in conditions", node)
        v = self.expr(node.operand)
        if v.pyconst is not None and v.node is None:
            if isinstance(node.op, pyast.USub):
                return TX(v.jt, pyconst=-v.pyconst)
            if isinstance(node.op, pyast.UAdd):
                return TX(v.jt, pyconst=+v.pyconst)
            if isinstance(node.op, pyast.Invert) and isinstance(v.pyconst, int):
                return TX(WEAK_INT, pyconst=~v.pyconst)
        if isinstance(node.op, pyast.UAdd):
            return v
        if isinstance(node.op, pyast.Invert):
            if v.jt.weak == "float" or (not v.jt.weak and not v.jt.ctype.is_integer()):
                raise self.err("~ needs an integer operand", node)
        T = v.jt.ctype
        op = "-" if isinstance(node.op, pyast.USub) else "~"
        out = kast.UnaryOp(op, self._carrier(v, node), SPAN)
        return TX(v.jt, self._wrap_small(out, T) if not v.jt.weak else out)

    def _ifexp(self, node: pyast.IfExp) -> TX:
        cond = self.condition(node.test)
        a = self.expr(node.body)
        b = self.expr(node.orelse)
        if a.jt.weak and b.jt.weak:
            jt = WEAK_FLOAT if "float" in (a.jt.weak, b.jt.weak) else WEAK_INT
        elif a.jt.weak:
            jt = b.jt
        elif b.jt.weak:
            jt = a.jt
        elif a.jt == b.jt:
            jt = a.jt
        else:
            raise self.err(
                f"ternary branches have different types ({a.jt} vs {b.jt}); "
                "convert one side explicitly", node)
        T = jt.ctype
        return TX(jt, kast.Conditional(cond, self.as_ct(a, T, node),
                                       self.as_ct(b, T, node), SPAN))

    def _attribute(self, node: pyast.Attribute) -> TX:
        if isinstance(node.value, pyast.Name) and node.value.id == "math":
            if node.attr in _MATH_CONSTS:
                return TX(WEAK_FLOAT, pyconst=_MATH_CONSTS[node.attr])
            if node.attr in ("inf", "nan"):
                raise self.err("non-finite constants are unsupported", node)
        raise self.err(f"unsupported attribute access "
                       f"{pyast.unparse(node)!r}", node)

    def _math_call(self, fname: str, node: pyast.Call) -> TX:
        if fname in _MATH_TO_INT:
            if len(node.args) != 1:
                raise self.err(f"math.{fname} takes one argument", node)
            arg = self.expr(node.args[0])
            if arg.jt.weak == "int" or (not arg.jt.weak and arg.jt.ctype.is_integer()):
                # floor/ceil/trunc of an int is the identity (a Python int).
                return TX(WEAK_INT, self.as_ct(arg, LONG, node)) \
                    if arg.pyconst is None else TX(WEAK_INT, pyconst=int(arg.pyconst))
            call = kast.Call(_MATH_TO_INT[fname], [self.as_ct(arg, DOUBLE, node)], SPAN)
            return TX(WEAK_INT, kast.Cast(LONG, call, SPAN))
        builtin = _MATH_FLOAT.get(fname)
        if builtin is None:
            raise self.err(f"math.{fname} has no exact kernelc counterpart", node)
        arity = 2 if fname in _MATH_BINARY else 1
        if len(node.args) != arity:
            raise self.err(f"math.{fname} takes {arity} argument(s)", node)
        args = [self.as_ct(self.expr(a), DOUBLE, node) for a in node.args]
        return TX(WEAK_FLOAT, kast.Call(builtin, args, SPAN))

    def _call(self, node: pyast.Call) -> TX:
        if node.keywords:
            raise self.err("keyword arguments are unsupported", node)
        if isinstance(node.func, pyast.Attribute):
            base = node.func.value
            if isinstance(base, pyast.Name) and base.id == "math":
                return self._math_call(node.func.attr, node)
            if isinstance(base, pyast.Name) and node.func.attr == "get":
                # The namespaced spelling of the stencil accessor
                # (``skelcl.get(m, -1)``); local names can't be modules
                # here, so any X.get(...) is the accessor.
                return self._get_call(node)
            raise self.err(f"unsupported call "
                           f"{pyast.unparse(node.func)!r}", node)
        if not isinstance(node.func, pyast.Name):
            raise self.err("unsupported call target", node)
        fname = node.func.id
        if fname == "get":
            return self._get_call(node)
        if fname in ("int", "float"):
            if len(node.args) != 1:
                raise self.err(f"{fname}() takes one argument", node)
            arg = self.expr(node.args[0])
            if arg.pyconst is not None and arg.node is None:
                v = int(arg.pyconst) if fname == "int" else float(arg.pyconst)
                return TX(WEAK_INT if fname == "int" else WEAK_FLOAT, pyconst=v)
            T = LONG if fname == "int" else DOUBLE
            jt = WEAK_INT if fname == "int" else WEAK_FLOAT
            return TX(jt, self.as_ct(arg, T, node))
        if fname == "abs":
            if len(node.args) != 1:
                raise self.err("abs() takes one argument", node)
            arg = self.expr(node.args[0])
            if arg.pyconst is not None and arg.node is None:
                return TX(arg.jt, pyconst=abs(arg.pyconst))
            T = arg.jt.ctype
            if T.is_float():
                return TX(arg.jt, kast.Call("fabs", [self._carrier(arg, node)], SPAN))
            # np.abs wraps at the operand width (abs(int8 -128) == -128).
            value = self._carrier(arg, node)
            out = kast.Conditional(
                kast.BinaryOp("<", value, kast.IntLiteral(0, SPAN), SPAN),
                kast.UnaryOp("-", value, SPAN), value, SPAN)
            return TX(arg.jt, self._wrap_small(out, T) if not arg.jt.weak else out)
        if fname in ("min", "max"):
            if len(node.args) < 2:
                raise self.err(f"{fname}() needs at least two arguments", node)
            args = [self.expr(a) for a in node.args]
            out = args[0]
            for nxt in args[1:]:
                out = self._min_max(fname, out, nxt, node)
            return out
        raise self.err(
            f"unsupported function {fname!r} (supported: math.*, abs, "
            "min, max, int, float, get)", node)

    def _min_max(self, fname: str, a: TX, b: TX, node: pyast.AST) -> TX:
        # Python semantics including NaN: min(a, b) is `b if b < a else a`.
        if a.jt.weak and b.jt.weak:
            jt = WEAK_FLOAT if "float" in (a.jt.weak, b.jt.weak) else WEAK_INT
        elif a.jt.weak:
            jt = b.jt
        elif b.jt.weak:
            jt = a.jt
        elif a.jt == b.jt:
            jt = a.jt
        else:
            raise self.err(
                f"{fname}() arguments must share one type ({a.jt} vs {b.jt})", node)
        T = jt.ctype
        an = self.as_ct(a, T, node)
        bn = self.as_ct(b, T, node)
        op = "<" if fname == "min" else ">"
        return TX(jt, kast.Conditional(kast.BinaryOp(op, bn, an, SPAN), bn, an, SPAN))

    def _pointer_of(self, node: pyast.AST, for_read: bool) -> Tuple[str, JPointer]:
        if not isinstance(node, pyast.Name):
            raise self.err("only pointer parameters can be indexed", node)
        pt = self._param_type(node.id)
        if not isinstance(pt, JPointer):
            raise self.err(f"{node.id!r} is not a pointer parameter", node)
        if for_read and pt.mode in ("w", "inc"):
            raise self.err(
                f"parameter {node.id!r} is declared {pt.intent_name} "
                "and must not be read", node)
        if not for_read and pt.mode == "r":
            raise self.err(
                f"parameter {node.id!r} is declared READ and must not be "
                "written", node)
        return node.id, pt

    def _get_call(self, node: pyast.Call) -> TX:
        if not 2 <= len(node.args) <= 3:
            raise self.err("get() takes a pointer and one or two offsets", node)
        pname, pt = self._pointer_of(node.args[0], for_read=True)
        args: List[kast.Expr] = [kast.Identifier(pname, SPAN)]
        for off in node.args[1:]:
            tx = self.expr(off)
            if tx.jt.weak == "float" or (not tx.jt.weak and not tx.jt.ctype.is_integer()):
                raise self.err("get() offsets must be integers", off)
            if tx.pyconst is not None and tx.node is None:
                # Literal offsets stay literal so the static bounds
                # analysis can prove them in range.
                args.append(self._literal(tx.pyconst, INT, off))
            else:
                args.append(self.as_ct(tx, INT, off))
        return TX(JType(pt.element), kast.Call("get", args, SPAN))

    def _subscript_load(self, node: pyast.Subscript) -> TX:
        pname, pt = self._pointer_of(node.value, for_read=True)
        idx = self.expr(node.slice)
        if idx.jt.weak == "float" or (not idx.jt.weak and not idx.jt.ctype.is_integer()):
            raise self.err("subscripts must be integers", node)
        return TX(JType(pt.element),
                  kast.Index(kast.Identifier(pname, SPAN),
                             self.as_ct(idx, LONG, node), SPAN))

    # -- conditions --------------------------------------------------------

    def condition(self, node: pyast.AST) -> kast.Expr:
        if isinstance(node, pyast.BoolOp):
            op = "&&" if isinstance(node.op, pyast.And) else "||"
            out = self.condition(node.values[0])
            for value in node.values[1:]:
                out = kast.BinaryOp(op, out, self.condition(value), SPAN)
            return out
        if isinstance(node, pyast.UnaryOp) and isinstance(node.op, pyast.Not):
            return kast.UnaryOp("!", self.condition(node.operand), SPAN)
        if isinstance(node, pyast.Compare):
            return self._compare(node)
        if isinstance(node, pyast.Constant) and isinstance(node.value, bool):
            return kast.IntLiteral(1 if node.value else 0, SPAN)
        tx = self.expr(node)
        # Numeric truthiness: nonzero (including NaN) is true, as in
        # Python and C alike.
        return self._carrier(tx, node)

    def _compare(self, node: pyast.Compare) -> kast.Expr:
        ops = {"Lt": "<", "LtE": "<=", "Gt": ">", "GtE": ">=",
               "Eq": "==", "NotEq": "!="}
        operands = [node.left] + list(node.comparators)
        parts: List[kast.Expr] = []
        for i, op in enumerate(node.ops):
            name = type(op).__name__
            if name not in ops:
                raise self.err(f"unsupported comparison {name}", node)
            l = self.expr(operands[i])
            r = self.expr(operands[i + 1])
            R = combine(l.jt, r.jt)
            T = R.ctype
            parts.append(kast.BinaryOp(ops[name], self.as_ct(l, T, node),
                                       self.as_ct(r, T, node), SPAN))
        out = parts[0]
        for part in parts[1:]:
            out = kast.BinaryOp("&&", out, part, SPAN)
        return out

    # -- statements --------------------------------------------------------

    def _mark(self, stmt: kast.Stmt, node: pyast.AST) -> kast.Stmt:
        line = getattr(node, "lineno", None)
        if line is not None:
            stmt._py_line = line + self.line_offset
        return stmt

    def stmts(self, body: List[pyast.stmt], *, top: bool = False) -> List[kast.Stmt]:
        out: List[kast.Stmt] = []
        for i, stmt in enumerate(body):
            if (top and i == 0 and isinstance(stmt, pyast.Expr)
                    and isinstance(stmt.value, pyast.Constant)
                    and isinstance(stmt.value.value, str)):
                continue  # docstring
            out.extend(self.stmt(stmt))
        return out

    def stmt(self, node: pyast.stmt) -> List[kast.Stmt]:
        if isinstance(node, pyast.Assign):
            return [self._mark(s, node) for s in self._assign(node)]
        if isinstance(node, pyast.AugAssign):
            return [self._mark(s, node) for s in self._augassign(node)]
        if isinstance(node, pyast.Return):
            return [self._mark(s, node) for s in self._return(node)]
        if isinstance(node, pyast.If):
            return [self._mark(s, node) for s in self._if(node)]
        if isinstance(node, pyast.For):
            return [self._mark(s, node) for s in self._for(node)]
        if isinstance(node, pyast.Pass):
            return []
        if isinstance(node, pyast.AnnAssign):
            raise self.err(
                "annotated assignments are unsupported (a local's type is "
                "inferred from its value)", node)
        if isinstance(node, pyast.While):
            raise self.err("while loops are unsupported; use for i in range(...)",
                           node)
        if isinstance(node, pyast.Expr):
            raise self.err("expression statements have no effect in a kernel",
                           node)
        raise self.err(f"unsupported statement: {type(node).__name__}", node)

    def _store_target(self, target: pyast.AST, value: TX,
                      node: pyast.AST) -> List[kast.Stmt]:
        if isinstance(target, pyast.Name):
            pt = self._param_type(target.id)
            if pt is not None:
                raise self.err(
                    f"cannot assign to parameter {target.id!r}; use a local",
                    node)
            self._join_var(target.id, value.jt, node)
            T = self.vars[target.id].ctype
            assign = kast.Assignment("=", kast.Identifier(target.id, SPAN),
                                     self.as_ct(value, T, node), SPAN)
            return [kast.ExprStmt(assign, SPAN)]
        if isinstance(target, pyast.Subscript):
            pname, pt = self._pointer_of(target.value, for_read=False)
            if pt.mode == "inc":
                raise self.err(
                    f"parameter {pname!r} is declared INC; only += "
                    "increments are allowed", node)
            idx = self.expr(target.slice)
            lhs = kast.Index(kast.Identifier(pname, SPAN),
                             self.as_ct(idx, LONG, node), SPAN)
            assign = kast.Assignment("=", lhs, self.as_ct(value, pt.element, node),
                                     SPAN)
            return [kast.ExprStmt(assign, SPAN)]
        if isinstance(target, pyast.Tuple):
            raise self.err("tuple unpacking is unsupported", node)
        raise self.err("unsupported assignment target", node)

    def _assign(self, node: pyast.Assign) -> List[kast.Stmt]:
        if len(node.targets) != 1:
            raise self.err("chained assignment is unsupported", node)
        value = self.expr(node.value)
        return self._store_target(node.targets[0], value, node)

    def _augassign(self, node: pyast.AugAssign) -> List[kast.Stmt]:
        if isinstance(node.target, pyast.Subscript):
            pname, pt = self._pointer_of(node.target.value, for_read=False)
            if pt.mode == "inc" and not isinstance(node.op, pyast.Add):
                raise self.err(
                    f"parameter {pname!r} is declared INC; only += is allowed",
                    node)
            if pt.mode == "w":
                raise self.err(
                    f"parameter {pname!r} is declared WRITE; augmented "
                    "assignment reads the old value", node)
            if not isinstance(node.op, pyast.Add):
                # Desugar through the general path (requires read access,
                # checked above).
                desugared = pyast.Assign(
                    targets=[node.target],
                    value=pyast.BinOp(left=self._as_load(node.target),
                                      op=node.op, right=node.value))
                pyast.copy_location(desugared, node)
                pyast.fix_missing_locations(desugared)
                return self._assign(desugared)
            idx = self.expr(node.target.slice)
            value = self.expr(node.value)
            lhs = kast.Index(kast.Identifier(pname, SPAN),
                             self.as_ct(idx, LONG, node), SPAN)
            assign = kast.Assignment("+=", lhs,
                                     self.as_ct(value, pt.element, node), SPAN)
            return [kast.ExprStmt(assign, SPAN)]
        desugared = pyast.Assign(
            targets=[node.target],
            value=pyast.BinOp(left=self._as_load(node.target), op=node.op,
                              right=node.value))
        pyast.copy_location(desugared, node)
        pyast.fix_missing_locations(desugared)
        return self._assign(desugared)

    @staticmethod
    def _as_load(target: pyast.AST) -> pyast.AST:
        load = pyast.copy_location(
            pyast.Name(id=target.id, ctx=pyast.Load()), target) \
            if isinstance(target, pyast.Name) else target
        return load

    def _return(self, node: pyast.Return) -> List[kast.Stmt]:
        if node.value is None:
            raise self.err("a jitted function must return a value", node)
        value_node = node.value
        if isinstance(value_node, pyast.Tuple):
            if self.component is None:
                raise self.err(
                    "multi-output functions cannot be lowered whole; use "
                    "f.outputs[i] for each component", node)
            if self.component >= len(value_node.elts):
                raise self.err(
                    f"return tuple has {len(value_node.elts)} elements, "
                    f"component {self.component} requested", node)
            value_node = value_node.elts[self.component]
        elif self.component is not None:
            raise self.err(
                "all return statements of a multi-output function must "
                "return a tuple", node)
        tx = self.expr(value_node)
        self.saw_return = True
        # The return type joins monotonically across fixpoint iterations,
        # so the converged value is consistent for every return statement.
        old = self._ret_jt
        if old is None:
            self._ret_jt = tx.jt
        elif old != tx.jt:
            if old.weak and tx.jt.weak:
                self._ret_jt = WEAK_FLOAT if "float" in (old.weak, tx.jt.weak) else WEAK_INT
            else:
                self._ret_jt = combine(old, tx.jt)
        if self._ret_jt != old:
            self.changed = True
        R = self._return_ctype()
        return [kast.ReturnStmt(self.as_ct(tx, R, node), SPAN)]

    def _return_ctype(self) -> ScalarType:
        if self.declared_return is not None:
            return self.declared_return
        if self._ret_jt is None:
            return LONG
        return self._ret_jt.ctype

    def _if(self, node: pyast.If) -> List[kast.Stmt]:
        cond = self.condition(node.test)
        then = kast.CompoundStmt(self.stmts(node.body), SPAN)
        other = None
        if node.orelse:
            other = kast.CompoundStmt(self.stmts(node.orelse), SPAN)
        return [kast.IfStmt(cond, then, other, SPAN)]

    def _for(self, node: pyast.For) -> List[kast.Stmt]:
        if node.orelse:
            raise self.err("for/else is unsupported", node)
        call = node.iter
        if not (isinstance(call, pyast.Call) and isinstance(call.func, pyast.Name)
                and call.func.id == "range"):
            raise self.err("only 'for i in range(...)' loops are supported",
                           node)
        if not isinstance(node.target, pyast.Name):
            raise self.err("the loop variable must be a plain name", node)
        args = [self.expr(a) for a in call.args]
        if not 1 <= len(args) <= 3:
            raise self.err("range() takes one to three arguments", call)
        for a, tx in zip(call.args, args):
            if tx.jt.weak == "float" or (not tx.jt.weak and not tx.jt.ctype.is_integer()):
                raise self.err("range() bounds must be integers", a)
        start = args[0] if len(args) > 1 else TX(WEAK_INT, pyconst=0)
        stop = args[1] if len(args) > 1 else args[0]
        step = args[2] if len(args) > 2 else TX(WEAK_INT, pyconst=1)
        if step.pyconst is None or step.node is not None:
            raise self.err("the range() step must be a constant", call)
        step_value = int(step.pyconst)
        if step_value == 0:
            raise self.err("range() step must not be zero", call)

        name = node.target.id
        if self._param_type(name) is not None:
            raise self.err(f"cannot assign to parameter {name!r}", node)
        self._join_var(name, WEAK_INT, node)
        prelude: List[kast.Stmt] = []
        stop_node = self.as_ct(stop, LONG, call)
        if stop.pyconst is None:
            # Hoist the bound: Python evaluates range() once, so a bound
            # that reads a variable the body modifies must not be
            # re-evaluated per iteration.
            temp = self._temp()
            if temp not in self.vars:
                self.vars[temp] = JType(LONG)
                self.var_order.append(temp)
            prelude.append(kast.ExprStmt(
                kast.Assignment("=", kast.Identifier(temp, SPAN), stop_node, SPAN),
                SPAN))
            stop_node = kast.Identifier(temp, SPAN)
        init = kast.ExprStmt(
            kast.Assignment("=", kast.Identifier(name, SPAN),
                            self.as_ct(start, LONG, call), SPAN), SPAN)
        cond = kast.BinaryOp("<" if step_value > 0 else ">",
                             kast.Identifier(name, SPAN), stop_node, SPAN)
        incr = kast.Assignment("+=", kast.Identifier(name, SPAN),
                               kast.IntLiteral(step_value, SPAN), SPAN)
        body = kast.CompoundStmt(self.stmts(node.body), SPAN)
        return prelude + [kast.ForStmt(init, cond, incr, body, SPAN)]

    # -- driver ------------------------------------------------------------

    def lower(self) -> Lowered:
        body_stmts: List[kast.Stmt] = []
        for _ in range(10):
            self.changed = False
            self.saw_return = False
            self.helpers = {}
            self._temp_count = 0
            body_stmts = self.stmts(self.fdef.body, top=True)
            if not self.changed:
                break
        else:
            raise self.err("type inference did not converge", self.fdef)

        if not self.saw_return:
            raise self.err("a jitted function must return a value", self.fdef)
        R = self._return_ctype()

        decls: List[kast.Stmt] = []
        for name in self.var_order:
            jt = self.vars[name]
            decls.append(kast.DeclStmt(
                [kast.VarDecl(name, jt.ctype, None, SPAN)], SPAN))

        kparams: List[kast.Param] = []
        param_ctypes: List[object] = []
        intent_markers: List[str] = []
        for p in self.params:
            if isinstance(p.ctype, JPointer):
                ptype = PointerType(p.ctype.element, "private",
                                    is_const=(p.ctype.mode == "r"))
                kparams.append(kast.Param(p.name, ptype, SPAN))
                param_ctypes.append(p.ctype)
                mode = "rw" if p.ctype.mode == "inc" else p.ctype.mode
                intent_markers.append(
                    f"/*@intent:{self.name}.{p.name}={mode}*/")
            elif isinstance(p.ctype, JType):
                kparams.append(kast.Param(p.name, p.ctype.ctype, SPAN))
                param_ctypes.append(p.ctype.ctype)
            else:
                kparams.append(kast.Param(p.name, p.ctype, SPAN))
                param_ctypes.append(p.ctype)

        main = kast.FunctionDef(self.name, R, kparams,
                                kast.CompoundStmt(decls + body_stmts, SPAN),
                                SPAN)
        main._py_line = self.fdef.lineno + self.line_offset

        helper_fns: List[kast.FunctionDef] = []
        for src in self.helpers.values():
            helper_fns.extend(parse(src, "<jit helper>").functions)
        program = kast.Program(functions=helper_fns + [main])
        return Lowered(program=program, main=main, return_ctype=R,
                       param_ctypes=tuple(param_ctypes),
                       intent_markers=intent_markers)
