"""PyOP2-style access descriptors for jit pointer parameters.

A pointer parameter of a jitted function declares *how* the kernel uses
the buffer by annotating it with an intent subscripted by the element
type::

    @skelcl.jit
    def stencil(m: skelcl.READ[np.float32]) -> np.float32:
        return (get(m, -1) + get(m, 1)) / 2.0

The declared intent is the contract: it is emitted verbatim into the
lowered kernel source (as an ``/*@intent:...*/`` marker) and consumed
by SkelSan's access analysis *instead of* re-deriving the modes from
the body — exactly PyOP2's READ/WRITE/RW/INC semantics.  The frontend
checks the body against the declaration at decoration time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernelc.ctypes_ import ScalarType, ctype_from_numpy


@dataclass(frozen=True)
class IntentAnnotation:
    """An intent bound to an element type: ``READ[np.float32]``."""

    intent: "Intent"
    element: ScalarType

    def __repr__(self) -> str:
        return f"{self.intent.name}[{self.element.name}]"


@dataclass(frozen=True)
class Intent:
    """An access descriptor: how a kernel argument is accessed.

    ``mode`` is the SkelSan access mode the declaration maps to:
    READ → ``r``, WRITE → ``w``, RW → ``rw``, INC → ``rw`` (an
    increment both reads and writes the location).
    """

    name: str
    mode: str

    def __getitem__(self, element) -> IntentAnnotation:
        if isinstance(element, ScalarType):
            ctype = element
        else:
            try:
                ctype = ctype_from_numpy(np.dtype(element))
            except TypeError as exc:
                raise TypeError(
                    f"{self.name}[...] needs an element dtype, got {element!r}"
                ) from exc
        return IntentAnnotation(self, ctype)

    def __repr__(self) -> str:
        return self.name


READ = Intent("READ", "r")
WRITE = Intent("WRITE", "w")
RW = Intent("RW", "rw")
INC = Intent("INC", "rw")
