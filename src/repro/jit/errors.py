"""Jit diagnostics: errors that point back into the *Python* source.

Unsupported constructs and type conflicts are compile errors of the jit
frontend.  They render exactly like kernelc diagnostics — file:line:col,
the offending source line and a caret — but against the user's Python
file, because that is the code the user wrote.
"""

from __future__ import annotations

from typing import Optional


class JitError(Exception):
    """A jit lowering error, located in the user's Python source."""

    def __init__(self, message: str, filename: str = "<jit>",
                 line: int = 0, column: int = 0,
                 source_line: Optional[str] = None,
                 width: int = 1):
        self.message = message
        self.filename = filename
        self.line = line
        self.column = column
        self.source_line = source_line
        self.width = max(width, 1)
        super().__init__(self.render())

    def render(self) -> str:
        where = f"{self.filename}:{self.line}:{self.column + 1}: " if self.line else ""
        text = f"{where}error: {self.message}"
        if self.source_line is not None:
            caret = " " * self.column + "^" * self.width
            text += f"\n{self.source_line}\n{caret}"
        return text
