"""The ``@skelcl.jit`` decorator: Python functions as skeleton customizers.

A decorated function is parsed once (``inspect`` + ``ast``) and checked
structurally at decoration time — unsupported constructs and intent
violations fail immediately with a Python-source diagnostic.  Lowering
to OpenCL-C happens per *specialization*: a concrete assignment of
ctypes to the parameters, taken from annotations or inferred at the
call site from the container dtypes.  Every skeleton accepts a
:class:`JitFunction` wherever it accepts a source string.

The decorated function stays callable as plain Python — that is what
the differential test harness executes as the host oracle.
"""

from __future__ import annotations

import ast as pyast
import inspect
import math
import os
import textwrap
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernelc.ctypes_ import ScalarType, ctype_from_numpy
from .errors import JitError
from .intents import INC, READ, Intent, IntentAnnotation
from .lower import JPointer, JType, Lowered, LoweredParam, Lowerer
from .printer import JitPrinter

_SUPPORTED_STMTS = (pyast.Assign, pyast.AugAssign, pyast.Return, pyast.If,
                    pyast.For, pyast.Pass, pyast.Expr)


def get(container, *offsets):
    """Host-side counterpart of the kernel ``get()`` stencil accessor.

    Inside a jitted function, ``get(m, di[, dj])`` reads a neighbour
    element.  On the host (oracle execution) the first argument is
    expected to provide a ``get(*offsets)`` method — the test harness
    passes a small neighbourhood view object.
    """
    return container.get(*offsets)


class JitFunction:
    """A Python function lowered on demand to an OpenCL-C user function."""

    def __init__(self, pyfunc, component: Optional[int] = None,
                 parent: Optional["JitFunction"] = None):
        self.pyfunc = pyfunc
        self.__name__ = pyfunc.__name__
        self.component = component
        self._cache: Dict[Tuple, object] = {}
        self._outputs: Optional[Tuple["JitFunction", ...]] = None
        if parent is not None:
            # Components share the parsed AST and parameter metadata.
            self.filename = parent.filename
            self.line_offset = parent.line_offset
            self.source_lines = parent.source_lines
            self.fdef = parent.fdef
            self.params = parent.params
            self.return_ctype = parent.return_ctype
            self.n_outputs = None
            self._name = f"{parent._name}_out{component}"
        else:
            self._name = self.__name__
            self._parse()

    # -- parsing -----------------------------------------------------------

    def _parse(self) -> None:
        fn = self.pyfunc
        try:
            lines, start_line = inspect.getsourcelines(fn)
            source_file = inspect.getsourcefile(fn) or "<jit>"
        except (OSError, TypeError) as exc:
            raise JitError(
                f"cannot read the source of {fn!r}; @skelcl.jit needs a "
                "function defined in a file") from exc
        self.filename = os.path.basename(source_file)
        source = textwrap.dedent("".join(lines))
        try:
            module = pyast.parse(source)
        except SyntaxError as exc:
            raise JitError(f"cannot parse {self.__name__}: {exc}") from exc
        if not module.body or not isinstance(module.body[0], pyast.FunctionDef):
            raise JitError(f"@skelcl.jit expects a plain function definition")
        self.fdef = module.body[0]
        self.line_offset = start_line - 1
        self.source_lines = [line.rstrip("\n") for line in source.split("\n")]

        self._parse_signature()
        self._validate_structure()
        self.n_outputs = self._detect_outputs()
        if self.n_outputs is None and self.is_fully_annotated():
            # Eager trial lowering: annotated functions fail fast on
            # type errors at decoration time.
            self._lowered(self.signature_ctypes())

    def _parse_signature(self) -> None:
        args = self.fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults \
                or args.kw_defaults or args.posonlyargs:
            raise self._err_at(
                "only plain positional parameters are supported", self.fdef)
        annotations = dict(getattr(self.pyfunc, "__annotations__", {}))
        self.params: List[Tuple[str, object]] = []
        for arg in args.args:
            ann = annotations.get(arg.arg)
            resolved = self._resolve_annotation(ann, arg) if ann is not None else None
            self.params.append((arg.arg, resolved))
        ret = annotations.get("return")
        self.return_ctype = None
        if ret is not None:
            resolved = self._resolve_annotation(ret, self.fdef)
            if not isinstance(resolved, ScalarType):
                raise self._err_at("the return annotation must be a scalar dtype",
                                   self.fdef)
            self.return_ctype = resolved

    def _resolve_annotation(self, ann, node):
        if isinstance(ann, str):
            try:
                ann = eval(ann, self.pyfunc.__globals__)  # noqa: S307
            except Exception as exc:
                raise self._err_at(f"cannot resolve annotation {ann!r}: {exc}",
                                   node)
        if isinstance(ann, IntentAnnotation):
            return ann
        if isinstance(ann, Intent):
            raise self._err_at(
                f"intent {ann.name} needs an element type: {ann.name}[dtype]",
                node)
        if isinstance(ann, ScalarType):
            return ann
        try:
            return ctype_from_numpy(np.dtype(ann))
        except TypeError:
            raise self._err_at(
                f"unsupported annotation {ann!r} (use a numpy dtype, "
                "or READ/WRITE/RW/INC[dtype] for pointers)", node)

    def _err_at(self, message: str, node) -> JitError:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        src = None
        if line and 1 <= line <= len(self.source_lines):
            src = self.source_lines[line - 1]
        return JitError(message, self.filename,
                        line + self.line_offset if line else 0, col, src)

    # -- decoration-time checks --------------------------------------------

    def _validate_structure(self) -> None:
        """Reject unsupported statements and intent violations early."""
        pointer_modes = {name: ann.intent for name, ann in self.params
                         if isinstance(ann, IntentAnnotation)}
        for node in pyast.walk(self.fdef):
            if isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef)) \
                    and node is not self.fdef:
                raise self._err_at("nested function definitions are unsupported",
                                   node)
            if isinstance(node, (pyast.While, pyast.Try, pyast.With,
                                 pyast.Raise, pyast.Assert, pyast.Delete,
                                 pyast.Global, pyast.Nonlocal, pyast.Import,
                                 pyast.ImportFrom, pyast.Match, pyast.Lambda,
                                 pyast.ListComp, pyast.SetComp, pyast.DictComp,
                                 pyast.GeneratorExp, pyast.Await, pyast.Yield,
                                 pyast.YieldFrom, pyast.Starred)):
                kind = type(node).__name__
                raise self._err_at(f"unsupported construct: {kind}", node)
            if isinstance(node, pyast.AnnAssign):
                raise self._err_at(
                    "annotated assignments are unsupported (a local's type "
                    "is inferred from its value)", node)
            # Intent checks, syntactically, at decoration time.
            if isinstance(node, pyast.Assign):
                for target in node.targets:
                    self._check_pointer_store(target, pointer_modes,
                                              augmented=False, op=None)
            if isinstance(node, pyast.AugAssign):
                self._check_pointer_store(node.target, pointer_modes,
                                          augmented=True, op=node.op)
            if isinstance(node, (pyast.Subscript, pyast.Call)):
                self._check_pointer_read(node, pointer_modes)

    def _check_pointer_store(self, target, pointer_modes, *, augmented, op) -> None:
        if not (isinstance(target, pyast.Subscript)
                and isinstance(target.value, pyast.Name)):
            return
        name = target.value.id
        intent = pointer_modes.get(name)
        if intent is None:
            return
        if intent.mode == "r":
            raise self._err_at(
                f"parameter {name!r} is declared READ but the body writes it",
                target)
        if intent is INC:
            if not augmented or not isinstance(op, pyast.Add):
                raise self._err_at(
                    f"parameter {name!r} is declared INC; only += increments "
                    "are allowed", target)
        elif intent.mode == "w" and augmented:
            raise self._err_at(
                f"parameter {name!r} is declared WRITE; augmented assignment "
                "reads the old value", target)

    def _check_pointer_read(self, node, pointer_modes) -> None:
        read_name = None
        if isinstance(node, pyast.Subscript) \
                and isinstance(node.ctx, pyast.Load) \
                and isinstance(node.value, pyast.Name):
            read_name = node.value.id
        elif isinstance(node, pyast.Call) and node.args \
                and isinstance(node.args[0], pyast.Name) \
                and ((isinstance(node.func, pyast.Name)
                      and node.func.id == "get")
                     or (isinstance(node.func, pyast.Attribute)
                         and node.func.attr == "get")):
            read_name = node.args[0].id
        if read_name is None:
            return
        intent = pointer_modes.get(read_name)
        if intent is not None and intent.mode == "w":
            raise self._err_at(
                f"parameter {read_name!r} is declared WRITE but the body "
                "reads it", node)
        if intent is INC:
            raise self._err_at(
                f"parameter {read_name!r} is declared INC and must only be "
                "incremented", node)

    def _detect_outputs(self) -> Optional[int]:
        counts = set()
        for node in pyast.walk(self.fdef):
            if isinstance(node, pyast.Return) and node.value is not None:
                if isinstance(node.value, pyast.Tuple):
                    counts.add(len(node.value.elts))
                else:
                    counts.add(1)
        if not counts:
            return None
        if counts == {1}:
            return None
        if len(counts) > 1:
            raise self._err_at(
                "all return statements must return the same number of values",
                self.fdef)
        return counts.pop()

    # -- multi-output ------------------------------------------------------

    @property
    def outputs(self) -> Tuple["JitFunction", ...]:
        """Component functions of a tuple-returning (multi-output) jit."""
        if self.n_outputs is None:
            raise JitError(
                f"{self.__name__} returns a single value; .outputs is only "
                "available on tuple-returning functions")
        if self._outputs is None:
            self._outputs = tuple(
                JitFunction(self.pyfunc, component=i, parent=self)
                for i in range(self.n_outputs))
        return self._outputs

    # -- specialization ----------------------------------------------------

    def is_fully_annotated(self) -> bool:
        return all(ann is not None for _, ann in self.params)

    def signature_ctypes(self) -> Tuple:
        """The annotated parameter ctypes (None for unannotated)."""
        out = []
        for _, ann in self.params:
            if isinstance(ann, IntentAnnotation):
                out.append(ann)
            else:
                out.append(ann)
        return tuple(out)

    def resolve_param_ctypes(self, hints: Optional[Sequence] = None) -> Tuple:
        """Merge annotations with call-site ``hints`` (ScalarTypes)."""
        hints = list(hints) if hints is not None else []
        resolved = []
        for index, (name, ann) in enumerate(self.params):
            hint = hints[index] if index < len(hints) else None
            if ann is not None:
                resolved.append(ann)
            elif isinstance(hint, (ScalarType, JType)):
                resolved.append(hint)
            else:
                raise JitError(
                    f"cannot infer a type for parameter {name!r} of "
                    f"{self.__name__}; annotate it or call the skeleton "
                    "with typed containers", self.filename,
                    self.fdef.lineno + self.line_offset)
        return tuple(resolved)

    def _lowered(self, param_ctypes: Tuple) -> Lowered:
        key = param_ctypes
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        lparams = []
        for (name, _), ctype in zip(self.params, param_ctypes):
            if isinstance(ctype, IntentAnnotation):
                mode = "inc" if ctype.intent is INC else ctype.intent.mode
                lparams.append(LoweredParam(name, JPointer(
                    ctype.element, mode, ctype.intent.name)))
            else:
                lparams.append(LoweredParam(name, ctype))
        lowerer = Lowerer(
            name=self._name, filename=self.filename, fdef=self.fdef,
            source_lines=self.source_lines, line_offset=self.line_offset,
            params=lparams, return_ctype=self.return_ctype,
            component=self.component, n_outputs=self.n_outputs)
        lowered = lowerer.lower()
        self._cache[key] = lowered
        return lowered

    def lower_source(self, hints: Optional[Sequence] = None) -> str:
        """The full lowered OpenCL-C source (helpers + markers included)."""
        if self.n_outputs is not None and self.component is None:
            raise JitError(
                f"{self.__name__} returns {self.n_outputs} values; lower its "
                f"components via {self.__name__}.outputs", self.filename,
                self.fdef.lineno + self.line_offset)
        param_ctypes = self.resolve_param_ctypes(hints)
        lowered = self._lowered(param_ctypes)
        text = JitPrinter(self.filename).print_program(lowered.program)
        if lowered.intent_markers:
            text = "\n".join(lowered.intent_markers) + "\n" + text
        return text

    # -- host execution ----------------------------------------------------

    def __call__(self, *args, **kwargs):
        """Execute the original Python function (the host oracle)."""
        result = self.pyfunc(*args, **kwargs)
        if self.component is not None:
            return result[self.component]
        return result

    def __repr__(self) -> str:
        params = ", ".join(name for name, _ in self.params)
        return f"<skelcl.jit {self.__name__}({params})>"


def jit(fn=None):
    """Decorator: compile a Python function for use as a skeleton
    customizer.  Usable bare (``@skelcl.jit``) or called
    (``@skelcl.jit()``)."""
    if fn is None:
        return jit
    if isinstance(fn, JitFunction):
        return fn
    if not callable(fn):
        raise TypeError("@skelcl.jit expects a function")
    _ = math  # the lowering recognizes the stdlib math module by name
    return JitFunction(fn)
