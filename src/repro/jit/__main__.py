"""Command-line driver for the ``@skelcl.jit`` frontend.

Usage::

    python -m repro.jit MODULE             # dump every jit kernel to stdout
    python -m repro.jit MODULE:FUNC        # dump a single function
    python -m repro.jit MODULE -o DIR      # write one .cl file per kernel
    python -m repro.jit MODULE --list      # list jit functions, no lowering

``MODULE`` is a dotted module name or a path to a ``.py`` file (the
``examples/`` scripts are not importable by dotted name).  Only fully
annotated functions can be lowered without a call site; unannotated
ones are skipped with a note on stderr (or fail the run when named
explicitly).  Multi-output functions are dumped one component per
kernel as ``name.0``, ``name.1``, ...

The dumped files are plain kernelc sources (with ``/*@py:...*/`` and
``/*@intent:...*/`` markers), so they feed straight into
``python -m repro.kernelc --lint --access`` — that pairing is what the
CI ``jit`` job runs over the example kernels.

Exit status 0 on success, 1 when an explicitly named function is
missing or fails to lower.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import os
import re
import sys

from .errors import JitError
from .frontend import JitFunction


def _load_module(spec: str):
    """Import ``spec`` as a dotted module name or a .py file path."""
    if spec.endswith(".py") or os.path.sep in spec:
        name = os.path.splitext(os.path.basename(spec))[0]
        loader_spec = importlib.util.spec_from_file_location(name, spec)
        if loader_spec is None or loader_spec.loader is None:
            raise ImportError(f"cannot load {spec!r}")
        module = importlib.util.module_from_spec(loader_spec)
        loader_spec.loader.exec_module(module)
        return module
    return importlib.import_module(spec)


def _jit_functions(module):
    """``(name, JitFunction)`` pairs defined in ``module``, in
    definition order, with multi-output functions expanded into their
    components."""
    found = []
    for name, value in vars(module).items():
        if not isinstance(value, JitFunction):
            continue
        if value.n_outputs is not None:
            for index, component in enumerate(value.outputs):
                found.append((f"{name}.{index}", component))
        else:
            found.append((name, value))
    found.sort(key=lambda item: item[1].fdef.lineno)
    return found


# Stencil functions call the skeleton-provided ``get`` accessor; the
# composed MapOverlap kernel defines it.  For standalone linting the
# ``--lint-harness`` flag prepends the unchecked definition (with a
# unit stride so the matrix form stays affine).
_VECTOR_HARNESS = "#define get(m, di) ((m)[(di)])\n"
_MATRIX_HARNESS = ("#define _stride 1\n"
                   "#define get(m, dx, dy) ((m)[(dy) * _stride + (dx)])\n")
_MATRIX_GET = re.compile(r"\bget\([^,()]+,[^,()]+,[^,()]+\)")


def _with_harness(source: str) -> str:
    if "get(" not in source:
        return source
    harness = (_MATRIX_HARNESS if _MATRIX_GET.search(source)
               else _VECTOR_HARNESS)
    return harness + source


def _emit(name: str, source: str, outdir: str | None) -> None:
    if outdir is None:
        sys.stdout.write(f"// --- {name} ---\n{source}\n")
        return
    path = os.path.join(outdir, f"{name}.cl")
    with open(path, "w") as handle:
        handle.write(source)
    print(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jit",
        description="Lower @skelcl.jit functions to OpenCL-C sources.")
    parser.add_argument("target",
                        help="dotted module, path/to/file.py, or either "
                             "suffixed with :FUNC for a single function")
    parser.add_argument("-o", "--outdir", default=None,
                        help="write one NAME.cl per kernel into this "
                             "directory (created if missing) instead of "
                             "stdout")
    parser.add_argument("--list", action="store_true",
                        help="list jit functions without lowering them")
    parser.add_argument("--lint-harness", action="store_true",
                        help="prepend a standalone get() definition to "
                             "stencil kernels so the dumps compile under "
                             "python -m repro.kernelc")
    args = parser.parse_args(argv)

    spec, _, wanted = args.target.partition(":")
    try:
        module = _load_module(spec)
    except Exception as exc:  # import errors carry their own context
        print(f"error: cannot import {spec!r}: {exc}", file=sys.stderr)
        return 1

    functions = _jit_functions(module)
    if wanted:
        functions = [(name, fn) for name, fn in functions
                     if name == wanted or name.split(".")[0] == wanted]
        if not functions:
            print(f"error: no @skelcl.jit function {wanted!r} in {spec!r}",
                  file=sys.stderr)
            return 1

    if args.list:
        for name, fn in functions:
            marker = "" if fn.is_fully_annotated() else "  (unannotated)"
            print(f"{name}{marker}")
        return 0

    if args.outdir is not None:
        os.makedirs(args.outdir, exist_ok=True)

    status = 0
    for name, fn in functions:
        try:
            source = fn.lower_source(fn.resolve_param_ctypes())
        except JitError as exc:
            if wanted:
                print(exc.render(), file=sys.stderr)
                status = 1
            else:
                print(f"note: skipping {name}: {exc}", file=sys.stderr)
            continue
        if args.lint_harness:
            source = _with_harness(source)
        _emit(name, source, args.outdir)
    return status


if __name__ == "__main__":
    sys.exit(main())
