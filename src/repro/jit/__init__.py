"""repro.jit: the ``@skelcl.jit`` Python-function frontend.

Lowers decorated Python functions to kernelc OpenCL-C, so NumPy-literate
users (and generated test corpora) can customize every skeleton without
writing OpenCL-C strings::

    import numpy as np
    import repro.skelcl as skelcl

    @skelcl.jit
    def mult(x, y):
        return x * y

    dot = skelcl.Reduce("float sum(float x, float y) { return x + y; }")
    product = skelcl.Zip(mult)          # types inferred at the call site

Pointer parameters declare PyOP2-style access intents
(``skelcl.READ/WRITE/RW/INC``) that flow verbatim into SkelSan's access
analysis.  See ``docs/jit.md`` for the supported subset.
"""

from .errors import JitError
from .frontend import JitFunction, get, jit
from .intents import INC, READ, RW, WRITE, Intent, IntentAnnotation
from .printer import strip_markers

__all__ = [
    "INC",
    "Intent",
    "IntentAnnotation",
    "JitError",
    "JitFunction",
    "READ",
    "RW",
    "WRITE",
    "get",
    "jit",
    "strip_markers",
]
