#!/usr/bin/env python
"""An image-processing pipeline chaining skeletons: Gaussian blur →
Sobel edges → binary threshold → edge-pixel count.

Demonstrates §3.2's point that "applications often require different
distributions for their computational steps": the intermediates move
between block and overlap distributions implicitly (halo exchanges on
multiple GPUs), and nothing returns to the host until the final count.

Run:  python examples/image_pipeline.py [size]
"""

import sys

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.gaussian import GaussianBlur
from repro.apps.images import synthetic_image
from repro.apps.sobel import SobelEdgeDetection
from repro.skelcl import Map, Matrix, Reduce


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    runtime = skelcl.init(num_devices=2, spec=ocl.TESLA_FERMI_480)

    blur = GaussianBlur()
    sobel = SobelEdgeDetection()
    threshold = Map("uchar func(uchar x, int t) { return x > t ? 1 : 0; }")
    count = Reduce("int func(int a, int b) { return a + b; }")
    widen = Map("int func(uchar x) { return x; }")

    image = Matrix(data=synthetic_image(size, size))

    blurred = blur(image)          # MapOverlap, NEAREST boundaries
    edges = sobel(blurred)         # MapOverlap, NEUTRAL boundaries
    binary = threshold(edges, 40)  # Map with an additional argument
    edge_pixels = count(widen(binary)).get_value()

    total = size * size
    print(f"{size}x{size} pipeline on {runtime.num_devices} simulated GPUs:")
    print(f"  edge pixels: {edge_pixels} ({edge_pixels / total:.1%} of the image)")

    kernel_ms = max(q.total_kernel_ns for q in runtime.queues) / 1e6
    transfers = sum(q.total_transfer_bytes for q in runtime.queues)
    reads = sum(
        e.info.get("bytes", 0)
        for q in runtime.queues
        for e in q.events
        if e.command_type == "read_buffer"
    )
    print(f"  simulated kernel time: {kernel_ms:.3f} ms")
    print(f"  PCIe traffic: {transfers / 1024:.0f} KiB total, "
          f"{reads / 1024:.0f} KiB of it downloads")
    print("  (intermediates stayed device-resident; only halo rows and the")
    print("   reduction partials crossed the bus)")
    skelcl.terminate()


if __name__ == "__main__":
    main()
