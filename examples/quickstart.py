#!/usr/bin/env python
"""Quickstart: the dot product from the paper's Listing 1.1.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.skelcl as skelcl

SIZE = 1024


# The same customizing functions as plain Python: @skelcl.jit lowers
# them to the OpenCL-C above, so either spelling customizes a skeleton.
@skelcl.jit
def mult_py(x: np.float32, y: np.float32) -> np.float32:
    return x * y


@skelcl.jit
def sum_py(x: np.float32, y: np.float32) -> np.float32:
    return x + y


def main() -> None:
    # Initialize SkelCL on two simulated GPUs (SkelCL::init()).
    skelcl.init(num_devices=2)

    # Create skeletons, customized with OpenCL-C function strings.
    sum_up = skelcl.Reduce("float sum(float x, float y) { return x + y; }")
    mult = skelcl.Zip("float mult(float x, float y) { return x * y; }")

    # Create input vectors and fill them with data (host-side access;
    # transfers to the GPUs happen implicitly on first use).
    a = skelcl.Vector(SIZE)
    b = skelcl.Vector(SIZE)
    for i in range(SIZE):
        a[i] = i
        b[i] = 2.0

    # Execute the skeletons: C = sum( mult( A, B ) ).
    c = sum_up(mult(a, b))

    # Fetch the result.
    value = c.get_value()
    expected = float(np.dot(np.arange(SIZE, dtype=np.float32), np.full(SIZE, 2.0, np.float32)))
    print(f"dot product  = {value}")
    print(f"numpy agrees = {abs(value - expected) < 1e-2}")

    # The jit spelling computes the identical result.
    value_jit = skelcl.Reduce(sum_py)(skelcl.Zip(mult_py)(a, b)).get_value()
    print(f"jit agrees   = {value_jit == value}")

    # How much implicit data movement did the library do for us?
    runtime = skelcl.get_runtime()
    moved = sum(q.total_transfer_bytes for q in runtime.queues)
    print(f"implicit transfers: {moved} bytes across {runtime.num_devices} GPUs")

    skelcl.terminate()


if __name__ == "__main__":
    main()
