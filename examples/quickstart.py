#!/usr/bin/env python
"""Quickstart: the dot product from the paper's Listing 1.1.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.skelcl as skelcl

SIZE = 1024


def main() -> None:
    # Initialize SkelCL on two simulated GPUs (SkelCL::init()).
    skelcl.init(num_devices=2)

    # Create skeletons, customized with OpenCL-C function strings.
    sum_up = skelcl.Reduce("float sum(float x, float y) { return x + y; }")
    mult = skelcl.Zip("float mult(float x, float y) { return x * y; }")

    # Create input vectors and fill them with data (host-side access;
    # transfers to the GPUs happen implicitly on first use).
    a = skelcl.Vector(SIZE)
    b = skelcl.Vector(SIZE)
    for i in range(SIZE):
        a[i] = i
        b[i] = 2.0

    # Execute the skeletons: C = sum( mult( A, B ) ).
    c = sum_up(mult(a, b))

    # Fetch the result.
    value = c.get_value()
    expected = float(np.dot(np.arange(SIZE, dtype=np.float32), np.full(SIZE, 2.0, np.float32)))
    print(f"dot product  = {value}")
    print(f"numpy agrees = {abs(value - expected) < 1e-2}")

    # How much implicit data movement did the library do for us?
    runtime = skelcl.get_runtime()
    moved = sum(q.total_transfer_bytes for q in runtime.queues)
    print(f"implicit transfers: {moved} bytes across {runtime.num_devices} GPUs")

    skelcl.terminate()


if __name__ == "__main__":
    main()
