#!/usr/bin/env python
"""Iterative Jacobi heat diffusion on MapOverlap (the numerical stencil
workload §3.4 motivates), with the convergence check composed from Zip
and Reduce.  Intermediate grids never leave the GPUs.

Run:  python examples/heat_diffusion.py [size] [max_iterations]
"""

import sys

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.heat import HeatDiffusion, hot_spot_grid

RAMP = " .:*#@"


def preview(grid, cols=64, rows=16):
    peak = grid.max() or 1.0
    lines = []
    for r in range(rows):
        row = []
        for c in range(cols):
            value = grid[r * grid.shape[0] // rows, c * grid.shape[1] // cols]
            row.append(RAMP[min(int(value / peak * len(RAMP)), len(RAMP) - 1)])
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    max_iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    runtime = skelcl.init(num_devices=2, spec=ocl.TESLA_T10)
    grid = hot_spot_grid(size)
    print("initial hot spot:")
    print(preview(grid))

    heat = HeatDiffusion(alpha=1.0)
    result = heat.run(grid, max_iterations=max_iterations, tolerance=1e-3)

    print(f"\nafter {result.iterations} Jacobi sweeps "
          f"(residual {result.residual:.5f}):")
    print(preview(result.grid))

    kernel_ms = max(q.total_kernel_ns for q in runtime.queues) / 1e6
    moved = sum(q.total_pcie_bytes for q in runtime.queues) / 1024
    print(f"\nsimulated kernel time: {kernel_ms:.3f} ms on {runtime.num_devices} GPUs; "
          f"PCIe traffic: {moved:.0f} KiB (halo exchanges between sweeps)")
    skelcl.terminate()


if __name__ == "__main__":
    main()
