#!/usr/bin/env python
"""Mandelbrot rendering with the Map skeleton (the paper's §4.1 study).

Renders the fractal on 1-4 simulated GPUs, prints an ASCII preview and
the simulated kernel times, and writes a PGM image.

Run:  python examples/mandelbrot.py [width] [height]
"""

import sys

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.mandelbrot import Mandelbrot

ASCII_RAMP = " .:-=+*#%@"


def ascii_preview(image, cols: int = 72, rows: int = 24) -> str:
    height, width = image.shape
    lines = []
    for r in range(rows):
        row = []
        for c in range(cols):
            value = image[r * height // rows, c * width // cols]
            row.append(ASCII_RAMP[min(int(value) * len(ASCII_RAMP) // 256, len(ASCII_RAMP) - 1)])
        lines.append("".join(row))
    return "\n".join(lines)


def write_pgm(path: str, image) -> None:
    height, width = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode())
        handle.write(image.tobytes())


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 288
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 192

    image = None
    for devices in (1, 2, 4):
        skelcl.init(num_devices=devices, spec=ocl.TESLA_T10)
        app = Mandelbrot(max_iterations=100)
        image = app.render_image(width, height)
        kernel_ms = app.last_kernel_time_ns / 1e6
        print(f"{devices} GPU(s): simulated kernel time {kernel_ms:8.3f} ms")
        skelcl.terminate()

    print()
    print(ascii_preview(image))
    write_pgm("mandelbrot.pgm", image)
    print("\nwrote mandelbrot.pgm")


if __name__ == "__main__":
    main()
