#!/usr/bin/env python
"""Conway's Game of Life as a MapOverlap skeleton — a dead-simple
stencil showing the paper's `get()` API (§3.4) with NEUTRAL boundaries
(the world edge counts as dead).

Run:  python examples/game_of_life.py [generations]
"""

import sys

import numpy as np

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import MapOverlap, Matrix, SCL_NEUTRAL

LIFE_RULE = """
uchar func(const uchar* world) {
    int neighbours = 0;
    for (int dx = -1; dx <= 1; ++dx)
        for (int dy = -1; dy <= 1; ++dy)
            if (dx != 0 || dy != 0)
                neighbours += get(world, dx, dy);
    uchar alive = get(world, 0, 0);
    if (alive) {
        return (neighbours == 2 || neighbours == 3) ? 1 : 0;
    }
    return (neighbours == 3) ? 1 : 0;
}
"""


def glider_world(height=20, width=40):
    world = np.zeros((height, width), dtype=np.uint8)
    glider = [(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)]
    for r, c in glider:
        world[r + 1, c + 1] = 1
    # A blinker and a block, for variety.
    world[8, 20:23] = 1
    world[14:16, 30:32] = 1
    return world


def show(world):
    print("\n".join("".join("#" if cell else "." for cell in row) for row in world))


def main() -> None:
    generations = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    skelcl.init(num_devices=2, spec=ocl.TESLA_T10)

    step = MapOverlap(LIFE_RULE, 1, SCL_NEUTRAL, 0)
    world = Matrix(data=glider_world())

    print("generation 0:")
    show(world.to_numpy())
    for generation in range(1, generations + 1):
        world = step(world)
    print(f"\ngeneration {generations}:")
    show(world.to_numpy())

    population = int(world.to_numpy().sum())
    print(f"\npopulation: {population} "
          f"(static bounds proof: {step.bounds_proof.proven})")
    skelcl.terminate()


if __name__ == "__main__":
    main()
