#!/usr/bin/env python
"""N-body simulation with the AllPairs skeleton — the physics workload
the paper cites as motivation for all-pairs computations (§3.5).

The force evaluation is pure skeleton composition: a raw AllPairs builds
the n×n interaction matrix, matrix-vector products (AllPairs again)
turn it into accelerations, and Zip skeletons integrate with leapfrog.

Run:  python examples/nbody.py [bodies] [steps]
"""

import sys

import numpy as np

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.nbody import NBodySimulation, plummer_sphere


def main() -> None:
    bodies = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    runtime = skelcl.init(num_devices=2, spec=ocl.TESLA_T10)
    sim = NBodySimulation(plummer_sphere(bodies), softening=0.1)

    initial_energy = sim.total_energy()
    print(f"{bodies} bodies, {steps} leapfrog steps on {runtime.num_devices} simulated GPUs")
    print(f"initial energy: {initial_energy:+.6f}")

    for step in range(steps):
        sim.step(dt=0.01)
        if (step + 1) % 5 == 0:
            energy = sim.total_energy()
            drift = (energy - initial_energy) / abs(initial_energy) * 100.0
            radius = float(np.sqrt((sim.state.positions**2).sum(axis=1)).mean())
            print(f"step {step + 1:3d}: energy {energy:+.6f} ({drift:+.3f}% drift), "
                  f"mean radius {radius:.3f}")

    kernel_ms = sum(q.total_kernel_ns for q in runtime.queues) / 1e6
    transfer_mb = sum(q.total_transfer_bytes for q in runtime.queues) / (1 << 20)
    print(f"\nsimulated kernel time: {kernel_ms:.2f} ms, "
          f"implicit transfers: {transfer_mb:.1f} MiB")
    skelcl.terminate()


if __name__ == "__main__":
    main()
