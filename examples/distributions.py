#!/usr/bin/env python
"""Data distributions and implicit redistribution (§3.2, Figs. 1-2).

Shows how single/copy/block/overlap place a vector on multiple GPUs,
and how changing the distribution at runtime triggers the implicit
device→host→device exchange the paper describes — with every transfer
accounted by the simulated command queues.

Run:  python examples/distributions.py
"""

import numpy as np

import repro.skelcl as skelcl
from repro import ocl
from repro.reporting import render_table


def transfer_bytes(runtime) -> int:
    # Host-link traffic only: device-local copies issued by in-place
    # redistributions count into total_transfer_bytes but not here.
    return sum(q.total_pcie_bytes for q in runtime.queues)


def main() -> None:
    runtime = skelcl.init(num_devices=4, spec=ocl.TESLA_T10)
    n = 1 << 20  # 1M floats = 4 MiB
    vec = skelcl.Vector(data=np.arange(n, dtype=np.float32))

    rows = []
    for dist in (skelcl.Single(), skelcl.Copy(), skelcl.Block(), skelcl.Overlap(1024)):
        chunks = dist.chunks(n, runtime.num_devices)
        stored = sum(c.stored_size for c in chunks)
        rows.append((repr(dist), f"{stored * 4 / (1 << 20):.2f} MiB",
                     ", ".join(f"gpu{c.device_index}:{c.stored_size}" for c in chunks)))
    print(render_table(["distribution", "total device memory", "chunks (elements)"], rows,
                       title="How 1M floats are placed on 4 GPUs:"))
    print()

    # Redistribute live device data and watch the implicit transfers.
    vec.ensure_on_devices(skelcl.Block())
    vec.mark_written_on_devices()  # pretend a skeleton wrote it
    before = transfer_bytes(runtime)
    vec.set_distribution(skelcl.Copy())
    moved = transfer_bytes(runtime) - before
    print(f"block -> copy redistribution moved {moved / (1 << 20):.2f} MiB "
          f"(download once, upload to all {runtime.num_devices} GPUs)")

    before = transfer_bytes(runtime)
    vec.set_distribution(skelcl.Overlap(1024))
    moved = transfer_bytes(runtime) - before
    print(f"copy -> overlap(1024) moved {moved / (1 << 20):.2f} MiB")

    print(f"\nsimulated elapsed time: {runtime.elapsed_ns() / 1e6:.2f} ms")
    skelcl.terminate()


if __name__ == "__main__":
    main()
