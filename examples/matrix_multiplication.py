#!/usr/bin/env python
"""Matrix multiplication via the AllPairs skeleton (§3.5, Example 1):
``A × B = allpairs(dotProduct)(A, Bᵀ)`` — scaling over 1-4 GPUs.

Run:  python examples/matrix_multiplication.py
"""

import numpy as np

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.matmul import MatrixMultiplication
from repro.reporting import format_speedups


def main() -> None:
    rng = np.random.RandomState(42)
    a = rng.rand(96, 64).astype(np.float32)
    b = rng.rand(64, 96).astype(np.float32)
    expected = a @ b

    times = {}
    for devices in (1, 2, 3, 4):
        skelcl.init(num_devices=devices, spec=ocl.TESLA_T10)
        app = MatrixMultiplication()
        result = app.compute(a, b)
        assert np.allclose(result, expected, rtol=1e-3), "wrong result!"
        by_device = {}
        for event in app.last_events:
            index = event.info.get("device_index", 0)
            by_device[index] = by_device.get(index, 0) + event.duration_ns
        times[devices] = max(by_device.values())
        skelcl.terminate()

    print("AllPairs matrix multiplication, 96x64 @ 64x96 (simulated kernel time):")
    print(format_speedups(times))
    print("\nThe A matrix is block-distributed by rows, B is copied to every")
    print("GPU, and each device computes its block of C — the multi-GPU")
    print("decomposition the paper's distribution mechanism makes implicit.")


if __name__ == "__main__":
    main()
