#!/usr/bin/env python
"""Sobel edge detection with MapOverlap (the paper's §4.2 study,
Listing 1.5) — compared against the AMD- and NVIDIA-style OpenCL
baselines on the same simulated Tesla GPU.

Run:  python examples/sobel_edge_detection.py [size] [num_devices]

Set ``SKELCL_TRACE=sobel.trace.json`` to export a Chrome trace of the
SkelCL run (load it at https://ui.perfetto.dev); with two or more
devices the trace shows the per-device compute/transfer overlap.
``SKELCL_METRICS=<path>`` likewise dumps the metrics snapshot.
"""

import sys

import numpy as np

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.images import sobel_reference_uchar, synthetic_image
from repro.apps.sobel import SobelEdgeDetection, sobel_py
from repro.baselines.sobel_amd import SobelAmd
from repro.baselines.sobel_nvidia import SobelNvidia
from repro.reporting import render_bars


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    num_devices = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    image = synthetic_image(size, size)  # the paper uses 512x512 Lena
    reference = sobel_reference_uchar(image)

    context = ocl.Context.create(ocl.TESLA_FERMI_480)
    amd_edges, amd_event = SobelAmd(context).run(image)
    nvidia_edges, nvidia_event = SobelNvidia(context).run(image)

    # Session style: the runtime terminates on block exit, and the exit
    # honours SKELCL_TRACE / SKELCL_METRICS (see module docstring).
    with skelcl.init(num_devices=num_devices, spec=ocl.TESLA_FERMI_480) as session:
        app = SobelEdgeDetection()
        skelcl_edges = app.detect(image)
        skelcl_event = app.last_events[-1]
        # The same stencil written as a Python function (@skelcl.jit).
        jit_edges = SobelEdgeDetection(sobel_py).detect(image)
        session.finish_all()

        print("correctness vs numpy reference:")
        print(f"  AMD (interior): {np.array_equal(amd_edges[1:-1, 1:-1], reference[1:-1, 1:-1])}")
        print(f"  NVIDIA:         {np.array_equal(nvidia_edges, reference)}")
        print(f"  SkelCL:         {np.array_equal(skelcl_edges, reference)}")
        print(f"  SkelCL (jit):   {np.array_equal(jit_edges, skelcl_edges)}")
        print(f"  static bounds proof: {app.map_overlap.bounds_proof.proven} "
              f"(runtime get() checks elided: {app.map_overlap.checks_elided})")
        print()
        print(render_bars(
            {
                "OpenCL (AMD)": amd_event.duration_ms,
                "OpenCL (NVIDIA)": nvidia_event.duration_ms,
                "SkelCL": skelcl_event.duration_ms,
            },
            unit="ms",
            title=f"Sobel kernel runtimes, {size}x{size} (cf. the paper's Fig. 5)",
            reference={"OpenCL (AMD)": 0.17, "OpenCL (NVIDIA)": 0.07, "SkelCL": 0.065},
        ))
        if num_devices > 1:
            print()
            print(session.render_timeline())


if __name__ == "__main__":
    main()
