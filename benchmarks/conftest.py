"""Shared benchmark utilities.

Benchmarks regenerate the paper's tables and figures.  Each writes a
text artifact into ``benchmarks/results/`` (and prints it), so the
numbers survive pytest's output capture and can be diffed against
EXPERIMENTS.md.

Set ``REPRO_FULL=1`` to run at the paper's problem sizes (slower);
default sizes are scaled down but preserve every qualitative shape.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture
def record_result():
    """Write (and print) a named experiment artifact."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write
