"""Perf smoke check and tracked benchmark trajectory.

Two jobs in one script:

1. **Backend smoke** (``--only fig5`` or ``all``): times the Fig. 5
   Sobel benchmark (``benchmarks/bench_fig5_sobel.py``) wall-clock under
   ``SKELCL_BACKEND=interp`` and ``=vector``, plus an in-process timing
   of the SkelCL Sobel application, and asserts the vector backend is
   strictly faster on both measurements.
2. **Fusion gate** (``--only fusion`` or ``all``): runs producer/consumer
   pipelines eagerly and under the lazy planner and asserts the fused
   schedules are bit-exact while launching fewer kernels and moving
   strictly less modeled global memory.

Each job writes its measurements — wall-clock, modeled time from the
timing model, and ExecutionCounters totals — to a ``BENCH_*.json`` file
at the repo root (``BENCH_fig5.json`` / ``BENCH_fusion.json``), so every
PR's perf deltas are recorded in-tree, not anecdotal.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --output benchmarks/results/perf_smoke.json
    PYTHONPATH=src python benchmarks/perf_smoke.py --only fusion
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH = os.path.join(_REPO_ROOT, "benchmarks", "bench_fig5_sobel.py")

BACKENDS = ("interp", "vector")

SCALE = "float func(float x) { return x * 2.0f; }"
SHIFT = "float func(float x) { return x + 3.0f; }"
ADD = "float func(float x, float y) { return x + y; }"
MUL = "float func(float x, float y) { return x * y; }"


def _import_repro():
    src = os.path.join(_REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    import repro.skelcl as skelcl
    from repro import ocl
    return skelcl, ocl


def _session_counters(runtime):
    """ExecutionCounters totals for everything this session ran."""
    metrics = runtime.metrics
    return {
        "kernel_launches": metrics.value("skelcl_commands_total", kind="ndrange_kernel"),
        "kernel_ops": metrics.value("skelcl_kernel_ops_total"),
        "global_memory_bytes": sum(
            event.info.get("global_bytes", 0)
            for queue in runtime.context.queues
            for event in queue.events
            if event.command_type == "ndrange_kernel"
        ),
        "transfer_bytes": sum(q.total_transfer_bytes for q in runtime.context.queues),
    }


# -- Fig. 5 Sobel: interp vs vector backend ------------------------------


def time_bench_suite(backend: str) -> float:
    """Wall-clock seconds for one pytest run of the Fig. 5 benchmark."""
    env = dict(os.environ, SKELCL_BACKEND=backend)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", _BENCH],
        env=env, cwd=_REPO_ROOT, check=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    return time.perf_counter() - start


def run_sobel_app(backend: str, size: int, runs: int) -> dict:
    """One-pass modeled time + counters and best-of-``runs`` wall-clock
    for the in-process SkelCL Sobel application."""
    skelcl, ocl = _import_repro()
    from repro.apps.images import synthetic_image
    from repro.apps.sobel import SobelEdgeDetection

    image = synthetic_image(size, size)
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, backend=backend)
    try:
        app = SobelEdgeDetection()
        app.detect(image)  # warm-up: compile + vectorization plan caches
        runtime.finish_all()
        runtime.context.reset_timelines()
        app.detect(image)  # the measured pass
        modeled_ns = runtime.finish_all()
        counters = _session_counters(runtime)
        best = float("inf")
        for _ in range(runs):
            start = time.perf_counter()
            app.detect(image)
            best = min(best, time.perf_counter() - start)
    finally:
        skelcl.terminate()
    return {
        "sobel_app_best_s": round(best, 4),
        "modeled_ns": modeled_ns,
        "counters": counters,
    }


def bench_fig5(args, results: dict) -> bool:
    for backend in BACKENDS:
        suite = time_bench_suite(backend)
        app = run_sobel_app(backend, args.size, args.runs)
        results["backends"][backend] = dict(
            app, bench_fig5_sobel_wallclock_s=round(suite, 3))
        print(f"{backend:>6}: bench_fig5_sobel {suite:6.2f}s   "
              f"sobel app ({args.size}x{args.size}) "
              f"{app['sobel_app_best_s']:6.3f}s   "
              f"modeled {app['modeled_ns']/1e6:8.3f}ms")

    interp = results["backends"]["interp"]
    vector = results["backends"]["vector"]
    results["speedup"] = {
        "bench_fig5_sobel": round(
            interp["bench_fig5_sobel_wallclock_s"]
            / vector["bench_fig5_sobel_wallclock_s"], 2),
        "sobel_app": round(
            interp["sobel_app_best_s"] / vector["sobel_app_best_s"], 2),
    }
    print(f"speedup: bench {results['speedup']['bench_fig5_sobel']}x, "
          f"app {results['speedup']['sobel_app']}x")

    ok = True
    if vector["bench_fig5_sobel_wallclock_s"] >= interp["bench_fig5_sobel_wallclock_s"]:
        print("FAIL: vector backend not faster on bench_fig5_sobel wall-clock")
        ok = False
    if vector["sobel_app_best_s"] >= interp["sobel_app_best_s"]:
        print("FAIL: vector backend not faster on the in-process Sobel app")
        ok = False
    return ok


# -- Fusion: eager vs lazy planner ---------------------------------------


def _pipeline_map_map_reduce(skelcl, data):
    scale, shift = skelcl.Map(SCALE), skelcl.Map(SHIFT)
    total = skelcl.Reduce(ADD)
    return float(total(shift(scale(skelcl.Vector(data=data)))).get_value())


def _pipeline_zip_map_reduce(skelcl, data):
    # The motivating Fig. 5-style composition: reduce(zip(map(a), map(b))).
    scale, shift = skelcl.Map(SCALE), skelcl.Map(SHIFT)
    mul, total = skelcl.Zip(MUL), skelcl.Reduce(ADD)
    a = skelcl.Vector(data=data)
    b = skelcl.Vector(data=data[::-1].copy())
    return float(total(mul(scale(a), shift(b))).get_value())


FUSION_PIPELINES = {
    "map_map_reduce": _pipeline_map_map_reduce,
    "zip_map_reduce": _pipeline_zip_map_reduce,
}


def run_fusion_case(pipeline, elements: int, lazy: bool) -> dict:
    import numpy as np

    skelcl, ocl = _import_repro()
    data = np.random.RandomState(11).rand(elements).astype(np.float32)
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, lazy=lazy)
    try:
        start = time.perf_counter()
        value = pipeline(skelcl, data)
        modeled_ns = runtime.finish_all()
        wallclock = time.perf_counter() - start
        counters = _session_counters(runtime)
        fused = runtime.metrics.value  # registry survives terminate
        fusions = sum(
            fused("skelcl_fusion_total", rule=rule)
            for rule in ("map_map", "zip_map", "map_reduce")
        )
    finally:
        skelcl.terminate()
    return {
        "result": value,
        "wallclock_s": round(wallclock, 4),
        "modeled_ns": modeled_ns,
        "counters": counters,
        "fusions": fusions,
    }


def bench_fusion(args, results: dict) -> bool:
    ok = True
    for name, pipeline in FUSION_PIPELINES.items():
        eager = run_fusion_case(pipeline, args.elements, lazy=False)
        lazy = run_fusion_case(pipeline, args.elements, lazy=True)
        bit_exact = eager["result"] == lazy["result"]
        entry = {
            "eager": eager,
            "lazy": lazy,
            "bit_exact": bit_exact,
            "deltas": {
                key: eager["counters"][key] - lazy["counters"][key]
                for key in eager["counters"]
            },
        }
        results["pipelines"][name] = entry
        e, l = eager["counters"], lazy["counters"]
        print(f"{name}: launches {e['kernel_launches']} -> {l['kernel_launches']}, "
              f"ops {e['kernel_ops']} -> {l['kernel_ops']}, "
              f"global bytes {e['global_memory_bytes']} -> {l['global_memory_bytes']}, "
              f"modeled {eager['modeled_ns']/1e3:.1f}us -> {lazy['modeled_ns']/1e3:.1f}us"
              f"{'' if bit_exact else '   MISMATCH'}")
        if not bit_exact:
            print(f"FAIL: {name} fused result differs from eager")
            ok = False
        if l["kernel_launches"] >= e["kernel_launches"]:
            print(f"FAIL: {name} fused schedule does not launch fewer kernels")
            ok = False
        if l["global_memory_bytes"] >= e["global_memory_bytes"]:
            print(f"FAIL: {name} fused schedule does not reduce modeled "
                  "global-memory traffic")
            ok = False
        if lazy["fusions"] < 1:
            print(f"FAIL: {name} recorded no fusions under the lazy planner")
            ok = False
    acceptance = results["pipelines"]["map_map_reduce"]["lazy"]["counters"]
    if acceptance["kernel_launches"] > 2:
        print("FAIL: map-map-reduce needs more than 2 launches on one device")
        ok = False
    if ok:
        print("OK: fused pipelines are bit-exact and strictly cheaper")
    return ok


# -- entry point ---------------------------------------------------------


def _write_json(path: str, payload: dict) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(path, _REPO_ROOT)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="also write the fig5 timings JSON to this path")
    parser.add_argument("--only", choices=("all", "fig5", "fusion"), default="all",
                        help="which benchmark group to run")
    parser.add_argument("--size", type=int, default=256,
                        help="Sobel image edge length for the app timing")
    parser.add_argument("--runs", type=int, default=3,
                        help="timed repetitions for the app timing")
    parser.add_argument("--elements", type=int, default=1 << 15,
                        help="vector length for the fusion pipelines")
    parser.add_argument("--bench-dir", default=_REPO_ROOT,
                        help="directory for the tracked BENCH_*.json files")
    args = parser.parse_args()

    ok = True
    if args.only in ("all", "fig5"):
        results = {"schema": "skelcl-bench-v1", "benchmark": "fig5_sobel",
                   "image_size": args.size, "runs": args.runs, "backends": {}}
        ok = bench_fig5(args, results) and ok
        _write_json(os.path.join(args.bench_dir, "BENCH_fig5.json"), results)
        if args.output:
            _write_json(args.output, results)

    if args.only in ("all", "fusion"):
        results = {"schema": "skelcl-bench-v1", "benchmark": "fusion",
                   "elements": args.elements, "pipelines": {}}
        ok = bench_fusion(args, results) and ok
        _write_json(os.path.join(args.bench_dir, "BENCH_fusion.json"), results)

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
