"""Perf smoke check: the vectorized backend must beat the interpreter.

Times the Fig. 5 Sobel benchmark (``benchmarks/bench_fig5_sobel.py``)
wall-clock under ``SKELCL_BACKEND=interp`` and ``=vector``, plus an
in-process timing of the SkelCL Sobel application itself, and asserts
the vector backend is strictly faster on both measurements.  Timings
are written as JSON (uploaded as a CI artifact) so regressions leave a
paper trail, not just a red X.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --output benchmarks/results/perf_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH = os.path.join(_REPO_ROOT, "benchmarks", "bench_fig5_sobel.py")

BACKENDS = ("interp", "vector")


def time_bench_suite(backend: str) -> float:
    """Wall-clock seconds for one pytest run of the Fig. 5 benchmark."""
    env = dict(os.environ, SKELCL_BACKEND=backend)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", _BENCH],
        env=env, cwd=_REPO_ROOT, check=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    return time.perf_counter() - start


def time_sobel_app(backend: str, size: int, runs: int) -> float:
    """Best-of-``runs`` seconds for one in-process SkelCL Sobel pass."""
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
    import repro.skelcl as skelcl
    from repro import ocl
    from repro.apps.images import synthetic_image
    from repro.apps.sobel import SobelEdgeDetection

    image = synthetic_image(size, size)
    skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, backend=backend)
    try:
        app = SobelEdgeDetection()
        app.detect(image)  # warm-up: compile + vectorization plan caches
        best = float("inf")
        for _ in range(runs):
            start = time.perf_counter()
            app.detect(image)
            best = min(best, time.perf_counter() - start)
    finally:
        skelcl.terminate()
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write timings JSON to this path")
    parser.add_argument("--size", type=int, default=256,
                        help="Sobel image edge length for the app timing")
    parser.add_argument("--runs", type=int, default=3,
                        help="timed repetitions for the app timing")
    args = parser.parse_args()

    results = {"backends": {}, "image_size": args.size, "runs": args.runs}
    for backend in BACKENDS:
        suite = time_bench_suite(backend)
        app = time_sobel_app(backend, args.size, args.runs)
        results["backends"][backend] = {
            "bench_fig5_sobel_wallclock_s": round(suite, 3),
            "sobel_app_best_s": round(app, 4),
        }
        print(f"{backend:>6}: bench_fig5_sobel {suite:6.2f}s   "
              f"sobel app ({args.size}x{args.size}) {app:6.3f}s")

    interp = results["backends"]["interp"]
    vector = results["backends"]["vector"]
    results["speedup"] = {
        "bench_fig5_sobel": round(
            interp["bench_fig5_sobel_wallclock_s"]
            / vector["bench_fig5_sobel_wallclock_s"], 2),
        "sobel_app": round(
            interp["sobel_app_best_s"] / vector["sobel_app_best_s"], 2),
    }
    print(f"speedup: bench {results['speedup']['bench_fig5_sobel']}x, "
          f"app {results['speedup']['sobel_app']}x")

    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")

    ok = True
    if vector["bench_fig5_sobel_wallclock_s"] >= interp["bench_fig5_sobel_wallclock_s"]:
        print("FAIL: vector backend not faster on bench_fig5_sobel wall-clock")
        ok = False
    if vector["sobel_app_best_s"] >= interp["sobel_app_best_s"]:
        print("FAIL: vector backend not faster on the in-process Sobel app")
        ok = False
    if ok:
        print("OK: vector backend beats interp on both measurements")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
