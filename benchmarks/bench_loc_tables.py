"""TAB-DOT-LOC and TAB-SOBEL-LOC: the textual programming-effort
comparisons of §3.3 and §4.2.

* §3.3: the NVIDIA OpenCL dot product is ~68 LoC (9 kernel + 59 host)
  versus the few lines of Listing 1.1 in SkelCL.
* §4.2: the AMD Sobel kernel is 37 LoC and the NVIDIA one 208 LoC,
  versus Listing 1.5.
"""

from repro import loc
from repro.reporting import render_table


def test_dotproduct_loc(benchmark, record_result):
    counts = benchmark(lambda: {
        "OpenCL (NVIDIA style)": loc.count_reference("dotproduct_opencl.c"),
        "SkelCL (Listing 1.1)": loc.count_reference("dotproduct_skelcl.cpp"),
    })
    rows = [
        (name, c.total, c.kernel, c.host) for name, c in counts.items()
    ]
    record_result(
        "loc_dotproduct",
        render_table(
            ["version", "LoC", "kernel", "host"],
            rows,
            title="TAB-DOT-LOC (§3.3): dot product programming effort "
                  "(paper: OpenCL ~68 = 9 + 59)",
        ),
    )
    opencl = counts["OpenCL (NVIDIA style)"]
    skelcl_count = counts["SkelCL (Listing 1.1)"]
    assert opencl.total == 68
    assert opencl.kernel == 9 and opencl.host == 59
    assert skelcl_count.total < opencl.total / 3


def test_sobel_loc(benchmark, record_result):
    counts = benchmark(lambda: {
        "AMD kernel": loc.count_reference("sobel_amd.cl"),
        "NVIDIA kernel": loc.count_reference("sobel_nvidia.cl"),
        "SkelCL (Listing 1.5)": loc.count_reference("sobel_skelcl.cpp"),
    })
    rows = [(name, c.total, c.kernel, c.host) for name, c in counts.items()]
    record_result(
        "loc_sobel",
        render_table(
            ["version", "LoC", "kernel", "host"],
            rows,
            title="TAB-SOBEL-LOC (§4.2): Sobel programming effort "
                  "(paper: AMD kernel 37, NVIDIA kernel 208)",
        ),
    )
    assert counts["AMD kernel"].kernel == 37
    assert counts["NVIDIA kernel"].kernel == 208
    assert counts["SkelCL (Listing 1.5)"].kernel < 15
