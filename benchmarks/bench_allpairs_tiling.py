"""ABL-TILING: the local-memory AllPairs optimization.

The SkelCL authors' follow-up work optimizes AllPairs by staging row
tiles of both matrices in local memory — possible only because the
zip/reduce customization exposes the computation's structure (an opaque
row function cannot be restructured).  This bench quantifies that on
matrix multiplication against the naive fused kernel and the raw-form
kernel, on the paper's Tesla T10.
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.reporting import render_table

from conftest import full_scale

ADD = "float f(float x, float y) { return x + y; }"
MUL = "float g(float x, float y) { return x * y; }"
RAW_DOT = """
float f(const float* a, const float* b, int d) {
    float sum = 0.0f;
    for (int k = 0; k < d; ++k) sum += a[k] * b[k];
    return sum;
}
"""


def _measure(n):
    rng = np.random.RandomState(3)
    a = rng.rand(n, n).astype(np.float32)
    b = rng.rand(n, n).astype(np.float32)
    expected = a @ b.T
    results = {}
    skelcl.init(num_devices=1, spec=ocl.TESLA_T10)
    variants = {
        "raw function": skelcl.AllPairs(source=RAW_DOT),
        "zip/reduce (naive)": skelcl.AllPairs(skelcl.Reduce(ADD), skelcl.Zip(MUL)),
        "zip/reduce (tiled)": skelcl.AllPairs(skelcl.Reduce(ADD), skelcl.Zip(MUL), tiled=True),
    }
    for name, skeleton in variants.items():
        out = skeleton(skelcl.Matrix(data=a), skelcl.Matrix(data=b)).to_numpy()
        np.testing.assert_allclose(out, expected, rtol=1e-3)
        event = skeleton.last_events[0]
        results[name] = (event.duration_ns, event.info["global_loads"])
    skelcl.terminate()
    return results


def test_allpairs_tiling(benchmark, record_result):
    n = 256 if full_scale() else 96
    results = benchmark.pedantic(_measure, args=(n,), iterations=1, rounds=1)

    naive_ns = results["zip/reduce (naive)"][0]
    rows = [
        (name, f"{ns / 1e6:.3f} ms", loads, f"{naive_ns / ns:.2f}x")
        for name, (ns, loads) in results.items()
    ]
    record_result(
        "allpairs_tiling",
        render_table(
            ["variant", "kernel time", "global loads", "speedup vs naive"],
            rows,
            title=f"ABL-TILING: AllPairs matrix multiplication, {n}x{n} "
                  "(structured customization enables tiling)",
        ),
    )
    tiled_ns, tiled_loads = results["zip/reduce (tiled)"]
    naive_loads = results["zip/reduce (naive)"][1]
    assert tiled_ns < naive_ns  # tiling must pay off
    assert tiled_loads < naive_loads / 8
