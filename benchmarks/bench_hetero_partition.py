"""Heterogeneous partitioning gate and tracked benchmark.

Runs a compute-heavy Map over a simulated 2x Tesla T10 + 1x 8-core CPU
pool (~4:1 modeled throughput skew per GPU vs the CPU) under four
partitioning policies and records the modeled critical-path kernel time
of each:

- **even**: the historic 1/N split — the baseline every prior PR used.
- **throughput**: one-shot split proportional to modeled peak
  throughput (``Partition.from_specs``), no feedback.
- **adaptive**: starts even, re-sizes from measured per-device kernel
  time after each flush (``AdaptivePartitioner``).
- **oracle**: fits the linear per-device cost model from two measured
  splits, scans every CPU share at 256-element granularity, then runs
  the best candidate — the exhaustive-search reference.

The regression gate asserts the acceptance criteria of the
heterogeneous-scheduling milestone: the adaptive policy converges
within 3 re-partitions, beats the even split by >= 2x on critical-path
kernel time, lands within 10% of the oracle, and every policy's output
is bit-exact against the even baseline.

Results go to the tracked ``BENCH_hetero.json`` at the repo root, so
each PR's heterogeneous-scheduling deltas are recorded in-tree.

Usage::

    PYTHONPATH=src python benchmarks/bench_hetero_partition.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEVICES = ["tesla", "tesla", "cpu-8core"]

# 64 dependent FMAs per element: compute dominates launch overhead, so
# the 4:1 throughput skew (not the 3.5x launch-cost skew) drives the
# optimal split — the regime heterogeneous partitioning targets.
HEAVY_MAP = """\
float func(float x) {
    float a = x;
    for (int i = 0; i < 64; ++i) {
        a = a * 1.000001f + 0.25f;
    }
    return a;
}"""


def _import_repro():
    src = os.path.join(_REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    import repro.skelcl as skelcl
    return skelcl


def _kernel_ns_by_device(session):
    return [session.metrics.value("skelcl_kernel_ns_total", device=index)
            for index in range(session.num_devices)]


def _iteration(session, skel, vec):
    """One skeleton call; per-device kernel-ns deltas and the output."""
    before = _kernel_ns_by_device(session)
    out = skel(vec)
    session.finish_all()
    after = _kernel_ns_by_device(session)
    return [a - b for a, b in zip(after, before)], out


def run_policies(elements: int, rounds: int) -> dict:
    import numpy as np

    skelcl = _import_repro()
    from repro.skelcl import Partition

    data = np.random.RandomState(7).rand(elements).astype(np.float32)
    results: dict = {"policies": {}}
    # Vector backend keeps the interp CI matrix fast; the modeled times
    # this benchmark gates on are backend-independent.
    with skelcl.init(devices=DEVICES, backend="vector") as session:
        skel = skelcl.Map(HEAVY_MAP)
        vec = skelcl.Vector(data=data)

        even_times, even_out = _iteration(session, skel, vec)
        baseline = even_out.to_numpy()
        results["policies"]["even"] = {
            "critical_path_ns": max(even_times),
            "device_kernel_ns": even_times,
        }

        session.partition = Partition.from_specs(session.specs).quantized()
        prop_times, prop_out = _iteration(session, skel, vec)
        results["policies"]["throughput"] = {
            "critical_path_ns": max(prop_times),
            "device_kernel_ns": prop_times,
            "partition": [round(w, 4) for w in session.partition.weights],
            "bit_exact": bool(np.array_equal(prop_out.to_numpy(), baseline)),
        }

        partitioner = session.use_adaptive(initial="even")
        steady_times = even_times
        adaptive_exact = True
        for _ in range(rounds):
            steady_times, out = _iteration(session, skel, vec)
            adaptive_exact &= bool(np.array_equal(out.to_numpy(), baseline))
        results["policies"]["adaptive"] = {
            "critical_path_ns": max(steady_times),
            "device_kernel_ns": steady_times,
            "partition": [round(w, 4) for w in session.partition.weights],
            "repartitions": partitioner.repartitions,
            "final_imbalance": round(partitioner.last_imbalance, 4),
            "bit_exact": adaptive_exact,
        }

        # Oracle: linear per-device cost fit from the even and a second
        # probe split, then an exhaustive scan of CPU shares (256-element
        # steps, GPUs split evenly); the best candidate is actually run.
        session.partitioner = None
        probe = Partition.of(1, 1, 2)
        session.partition = probe
        probe_times, _probe_out = _iteration(session, skel, vec)
        fits = []
        for index in range(3):
            u1 = Partition.even(3).counts(elements)[index]
            u2 = probe.counts(elements)[index]
            slope = (probe_times[index] - even_times[index]) / (u2 - u1)
            fits.append((even_times[index] - slope * u1, slope))
        best_cpu, best_model = 0, float("inf")
        for cpu_units in range(0, elements + 1, 256):
            gpu_units = -(-(elements - cpu_units) // 2)  # ceil: worst chunk
            model = max(
                fits[0][0] + fits[0][1] * gpu_units,
                fits[1][0] + fits[1][1] * gpu_units,
                fits[2][0] + fits[2][1] * cpu_units,
            )
            if model < best_model:
                best_cpu, best_model = cpu_units, model
        gpu_units = elements - best_cpu
        session.partition = Partition.of(
            gpu_units - gpu_units // 2, gpu_units // 2, best_cpu
        )
        oracle_times, oracle_out = _iteration(session, skel, vec)
        results["policies"]["oracle"] = {
            "critical_path_ns": max(oracle_times),
            "device_kernel_ns": oracle_times,
            "cpu_units": best_cpu,
            "bit_exact": bool(np.array_equal(oracle_out.to_numpy(), baseline)),
        }
    return results


def gate(results: dict) -> bool:
    policies = results["policies"]
    even = policies["even"]["critical_path_ns"]
    prop = policies["throughput"]["critical_path_ns"]
    adaptive = policies["adaptive"]["critical_path_ns"]
    oracle = policies["oracle"]["critical_path_ns"]

    speedup = {
        "throughput_vs_even": round(even / prop, 2),
        "adaptive_vs_even": round(even / adaptive, 2),
        "adaptive_vs_oracle": round(adaptive / oracle, 3),
    }
    results["speedup"] = speedup
    for name, entry in policies.items():
        print(f"{name:>10}: critical path {entry['critical_path_ns']:>10} ns   "
              f"per-device {entry['device_kernel_ns']}")
    print(f"speedup: throughput {speedup['throughput_vs_even']}x, "
          f"adaptive {speedup['adaptive_vs_even']}x vs even; "
          f"adaptive/oracle {speedup['adaptive_vs_oracle']}; "
          f"{policies['adaptive']['repartitions']} re-partition(s)")

    ok = True
    for name in ("throughput", "adaptive", "oracle"):
        if not policies[name]["bit_exact"]:
            print(f"FAIL: {name} output differs from the even baseline")
            ok = False
    if policies["adaptive"]["repartitions"] > 3:
        print("FAIL: adaptive needed more than 3 re-partitions to settle")
        ok = False
    if even < 2.0 * adaptive:
        print("FAIL: adaptive does not beat the even split by >= 2x")
        ok = False
    if adaptive > 1.10 * oracle:
        print("FAIL: adaptive lands more than 10% off the oracle split")
        ok = False
    if ok:
        print("OK: adaptive converges, beats even >= 2x, within 10% of oracle")
    return ok


def _write_json(path: str, payload: dict) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(path, _REPO_ROOT)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--elements", type=int, default=3 * 32768,
                        help="vector length (default 98304)")
    parser.add_argument("--rounds", type=int, default=6,
                        help="adaptive feedback iterations (default 6)")
    parser.add_argument("--bench-dir", default=_REPO_ROOT,
                        help="directory for the tracked BENCH_hetero.json")
    args = parser.parse_args()

    results = {"schema": "skelcl-bench-v1", "benchmark": "hetero_partition",
               "devices": DEVICES, "elements": args.elements,
               "rounds": args.rounds}
    results.update(run_policies(args.elements, args.rounds))
    ok = gate(results)
    _write_json(os.path.join(args.bench_dir, "BENCH_hetero.json"), results)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
