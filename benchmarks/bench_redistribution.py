"""ABL-DISTR: the cost of runtime redistribution (§3.2).

The paper: "Container's distribution can be changed at runtime: this
implies data exchanges between multiple GPUs and the CPU, which are
performed by the SkelCL implementation implicitly."  This bench
measures the implicit transfer volume and simulated time of every
distribution change on a 4-GPU system, verifying the expected traffic
(download once, upload per target-distribution placement).
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.reporting import render_table

from conftest import full_scale


def _measure_redistributions(n):
    itembytes = 4
    transitions = [
        (skelcl.Single(), skelcl.Block()),
        (skelcl.Block(), skelcl.Copy()),
        (skelcl.Copy(), skelcl.Block()),
        (skelcl.Block(), skelcl.Overlap(n // 64)),
        (skelcl.Overlap(n // 64), skelcl.Single()),
    ]
    rows = []
    for source, target in transitions:
        runtime = skelcl.init(num_devices=4, spec=ocl.TESLA_T10)
        vec = skelcl.Vector(data=np.zeros(n, np.float32))
        vec.ensure_on_devices(source)
        vec.mark_written_on_devices()  # live device data forces the exchange
        # PCIe traffic only: in-place halo refreshes also issue
        # device-local copy_buffer commands, which count into
        # total_transfer_bytes but never cross the host link.
        bytes_before = sum(q.total_pcie_bytes for q in runtime.queues)
        ns_before = runtime.elapsed_ns()
        vec.set_distribution(target)
        moved = sum(q.total_pcie_bytes for q in runtime.queues) - bytes_before
        elapsed = runtime.elapsed_ns() - ns_before
        # Expected PCIe traffic: block -> overlap grows storage in place
        # and exchanges only the halo units (each crosses the link twice,
        # owner -> host -> consumer); every other transition here is a
        # full download-once + upload-per-chunk exchange.
        stored_after = sum(c.stored_size for c in target.chunks(n, 4))
        if isinstance(source, skelcl.Block) and isinstance(target, skelcl.Overlap):
            # In-place grow: only the halo units cross the link (twice).
            halo_units = stored_after - n
            expected = 2 * halo_units * itembytes
        elif isinstance(source, skelcl.Copy) and isinstance(target, skelcl.Block):
            expected = 0  # ownership shrinks; every device already holds its block
        else:
            expected = n * itembytes + stored_after * itembytes
        rows.append((f"{source!r} -> {target!r}", moved, expected, f"{elapsed / 1e6:.3f} ms"))
        skelcl.terminate()
    return rows


def test_redistribution_cost(benchmark, record_result):
    n = 1 << 22 if full_scale() else 1 << 18
    rows = benchmark.pedantic(_measure_redistributions, args=(n,), iterations=1, rounds=1)
    record_result(
        "redistribution",
        render_table(
            ["transition", "moved (bytes)", "expected", "simulated time"],
            rows,
            title=f"ABL-DISTR: implicit redistribution of {n} floats on 4 GPUs",
        ),
    )
    for _name, moved, expected, _time in rows:
        assert moved == expected
