"""ABL-BOUNDS: static bounds checking (the paper's §3.4 future work).

"In future work, we plan to avoid boundary checks at runtime by
statically proving that all memory accesses are in bounds, as it is the
case in the shown example."  We implemented that analysis
(:mod:`repro.kernelc.boundcheck`); this bench measures what eliding the
runtime ``get()`` range checks is worth on the Sobel stencil, and that
the analysis correctly refuses unprovable programs.
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.images import synthetic_image
from repro.apps.sobel import SOBEL_FUNC
from repro.reporting import render_table

from conftest import full_scale


def _times(size):
    image = synthetic_image(size, size)
    results = {}
    for label, static in (("runtime checks", False), ("checks elided", True)):
        skelcl.init(num_devices=1, spec=ocl.TESLA_FERMI_480)
        stencil = skelcl.MapOverlap(SOBEL_FUNC, 1, skelcl.SCL_NEUTRAL, 0,
                                    static_bounds=static)
        out = stencil(skelcl.Matrix(data=image))
        reference = out.to_numpy()
        results[label] = (stencil.last_kernel_time_ns, reference)
        skelcl.terminate()
    return results


def test_bounds_elimination_speedup(benchmark, record_result):
    size = 512 if full_scale() else 256
    results = benchmark.pedantic(_times, args=(size,), iterations=1, rounds=1)

    checked_ns, checked_out = results["runtime checks"]
    elided_ns, elided_out = results["checks elided"]
    np.testing.assert_array_equal(checked_out, elided_out)

    rows = [
        ("runtime checks", f"{checked_ns / 1e6:.3f} ms"),
        ("checks elided (static proof)", f"{elided_ns / 1e6:.3f} ms"),
        ("speedup", f"{checked_ns / elided_ns:.2f}x"),
    ]
    record_result(
        "bounds_elimination",
        render_table(
            ["configuration", "Sobel kernel time"],
            rows,
            title=f"ABL-BOUNDS: MapOverlap get() range checks, {size}x{size} "
                  "(the paper's proposed static-proof optimization)",
        ),
    )
    assert elided_ns < checked_ns  # removing checks must help
    assert checked_ns / elided_ns < 2.0  # ...but checks are not dominant
