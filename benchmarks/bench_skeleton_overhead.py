"""ABL-SKEL: per-skeleton overhead versus hand-written OpenCL.

Generalizes the Fig. 4 finding ("SkelCL introduces a tolerable overhead
of less than 5% as compared to OpenCL") across the basic skeletons:
each skeleton's generated kernel is timed against a hand-written OpenCL
kernel doing the same work on the same simulated device.
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.reporting import render_table

from conftest import full_scale

_HAND_MAP = """
__kernel void hand_map(__global const float* in, __global float* out, int n) {
    int gid = get_global_id(0);
    if (gid < n) out[gid] = -in[gid];
}
"""

_HAND_ZIP = """
__kernel void hand_zip(__global const float* a, __global const float* b,
                       __global float* out, int n) {
    int gid = get_global_id(0);
    if (gid < n) out[gid] = a[gid] + b[gid];
}
"""


def _hand_time(source, name, buffers, n):
    ctx = ocl.Context.create(ocl.TESLA_T10)
    bufs = [ctx.create_buffer(n * 4) for _ in range(buffers)]
    queue = ctx.queues[0]
    for buf in bufs[:-1]:
        queue.enqueue_write_buffer(buf, np.zeros(n, np.float32))
    kernel = ocl.Program(source).build().create_kernel(name)
    kernel.set_args(*bufs, n)
    event = queue.enqueue_nd_range_kernel(kernel, ((n + 255) // 256 * 256,), (256,))
    ctx.release()
    return event.duration_ns


def _skeleton_times(n):
    data = np.zeros(n, np.float32)
    results = {}

    skelcl.init(num_devices=1, spec=ocl.TESLA_T10)
    neg = skelcl.Map("float func(float x) { return -x; }")
    neg(skelcl.Vector(data=data))
    results["Map (negate)"] = (neg.last_kernel_time_ns, _hand_time(_HAND_MAP, "hand_map", 2, n))

    add = skelcl.Zip("float func(float x, float y) { return x + y; }")
    add(skelcl.Vector(data=data), skelcl.Vector(data=data))
    results["Zip (add)"] = (add.last_kernel_time_ns, _hand_time(_HAND_ZIP, "hand_zip", 3, n))
    skelcl.terminate()
    return results


def test_skeleton_overhead(benchmark, record_result):
    n = 1 << 22 if full_scale() else 1 << 19
    results = benchmark.pedantic(_skeleton_times, args=(n,), iterations=1, rounds=1)

    rows = []
    for name, (skeleton_ns, hand_ns) in results.items():
        overhead = (skeleton_ns - hand_ns) / hand_ns * 100.0
        rows.append((name, f"{skeleton_ns / 1e6:.3f} ms", f"{hand_ns / 1e6:.3f} ms",
                     f"{overhead:+.1f}%"))
    record_result(
        "skeleton_overhead",
        render_table(
            ["skeleton", "generated kernel", "hand-written", "overhead"],
            rows,
            title=f"ABL-SKEL: generated vs hand-written kernels, {n} floats "
                  "(paper's Fig. 4 claim: < 5%)",
        ),
    )
    for name, (skeleton_ns, hand_ns) in results.items():
        assert skeleton_ns <= hand_ns * 1.05, f"{name} overhead exceeds 5%"


def test_reduce_against_hand_two_stage(benchmark, record_result):
    """Reduce has no 1:1 hand kernel here (two-stage); instead verify the
    generated reduction stays within 2x of the theoretical single-pass
    memory bound (n loads at peak bandwidth + overheads)."""
    n = 1 << 20 if full_scale() else 1 << 18
    data = np.ones(n, np.float32)

    def run():
        skelcl.init(num_devices=1, spec=ocl.TESLA_T10)
        total = skelcl.Reduce("float func(float x, float y) { return x + y; }")
        value = total(skelcl.Vector(data=data)).get_value()
        elapsed = total.last_kernel_time_ns
        skelcl.terminate()
        return value, elapsed

    value, elapsed = benchmark.pedantic(run, iterations=1, rounds=1)
    assert value == pytest.approx(float(n), rel=1e-3)
    spec = ocl.TESLA_T10
    memory_bound_ns = n * 4 / spec.global_bandwidth_gbs + n * spec.global_latency_ns / spec.latency_hiding
    record_result(
        "reduce_efficiency",
        f"ABL-SKEL: Reduce(sum) of {n} floats: {elapsed / 1e6:.3f} ms simulated "
        f"(single-pass memory bound: {memory_bound_ns / 1e6:.3f} ms)",
    )
    assert elapsed < 4 * memory_bound_ns + 100_000
