"""ABL-MULTIGPU: multi-GPU scalability of block-distributed skeletons.

The paper has no scaling figure, but scalability is the stated purpose
of the distribution mechanism (§1, §3.2, §5: "a data (re)distribution
mechanism ... ensures scalability when using multiple GPUs").  This
bench measures simulated kernel time of data-parallel skeletons on
1-4 Tesla T10 GPUs (the paper's S1070 has four).
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.sobel import SobelEdgeDetection
from repro.apps.images import synthetic_image
from repro.reporting import format_speedups, render_table

from conftest import full_scale


def _zip_scaling(n):
    data = np.arange(n, dtype=np.float32)
    times = {}
    for devices in (1, 2, 3, 4):
        skelcl.init(num_devices=devices, spec=ocl.TESLA_T10)
        add = skelcl.Zip("float func(float x, float y) { return x + y; }")
        result = add(skelcl.Vector(data=data), skelcl.Vector(data=data))
        assert result is not None
        times[devices] = add.last_kernel_time_ns
        skelcl.terminate()
    return times


def _mapoverlap_scaling(size):
    image = synthetic_image(size, size)
    times = {}
    for devices in (1, 2, 3, 4):
        skelcl.init(num_devices=devices, spec=ocl.TESLA_T10)
        app = SobelEdgeDetection()
        app.detect(image)
        times[devices] = app.last_kernel_time_ns
        skelcl.terminate()
    return times


def test_zip_scaling(benchmark, record_result):
    n = 1 << 22 if full_scale() else 1 << 18
    times = benchmark.pedantic(_zip_scaling, args=(n,), iterations=1, rounds=1)
    record_result(
        "multigpu_zip",
        f"ABL-MULTIGPU: Zip(add) over {n} floats, block distribution\n"
        + format_speedups(times),
    )
    benchmark.extra_info.update({str(k): v / 1e6 for k, v in times.items()})
    # Near-linear scaling: 4 GPUs at least 2.8x faster than 1.
    assert times[1] / times[4] > 2.8
    assert times[1] / times[2] > 1.6


def _pipelined_overlap(n):
    """Chained Zips on 4 GPUs: the asynchronous command graph overlaps
    uploads with kernels (per-device transfer vs compute engines) and
    runs the devices concurrently, so the critical-path elapsed time is
    below the serialized sum of all command durations."""
    runtime = skelcl.init(num_devices=4, spec=ocl.TESLA_T10)
    add = skelcl.Zip("float func(float x, float y) { return x + y; }")
    x = skelcl.Vector(data=np.arange(n, dtype=np.float32))
    y = skelcl.Vector(data=np.ones(n, dtype=np.float32))
    z = skelcl.Vector(data=np.full(n, 2.0, dtype=np.float32))
    step1 = add(x, y)
    step2 = add(step1, z)
    assert step2 is not None
    elapsed = runtime.finish_all()
    serialized = sum(e.duration_ns for q in runtime.queues for e in q.events)
    skelcl.terminate()
    return elapsed, serialized


def test_pipelined_overlap(benchmark, record_result):
    n = 1 << 22 if full_scale() else 1 << 18
    elapsed, serialized = benchmark.pedantic(
        _pipelined_overlap, args=(n,), iterations=1, rounds=1
    )
    record_result(
        "multigpu_overlap",
        f"ABL-MULTIGPU: chained Zip(add) over {n} floats on 4 GPUs\n"
        f"critical path {elapsed / 1e6:.3f} ms vs serialized "
        f"{serialized / 1e6:.3f} ms ({serialized / elapsed:.2f}x overlap)",
    )
    benchmark.extra_info.update(
        {"elapsed_ms": elapsed / 1e6, "serialized_ms": serialized / 1e6}
    )
    # The tentpole acceptance: simulated elapsed time is strictly below
    # the sum of serialized command durations.
    assert elapsed < serialized


def test_mapoverlap_scaling(benchmark, record_result):
    size = 1024 if full_scale() else 512
    times = benchmark.pedantic(_mapoverlap_scaling, args=(size,), iterations=1, rounds=1)
    record_result(
        "multigpu_mapoverlap",
        f"ABL-MULTIGPU: MapOverlap (Sobel) on a {size}x{size} image, "
        f"overlap distribution\n" + format_speedups(times),
    )
    # Stencils scale too (halos make the chunks marginally larger).
    assert times[1] / times[4] > 2.5
