"""FIG-5: Sobel kernel runtimes (§4.2).

Paper setup: one NVIDIA Tesla with 480 processing elements, 512×512
Lena, kernel-only times from the OpenCL profiling API, mean of six
runs.  Paper result: AMD ≈ 0.17 ms clearly slower (no local memory);
NVIDIA ≈ 0.07 ms and SkelCL ≈ 0.065 ms similar, SkelCL slightly ahead.
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.images import sobel_reference_uchar, synthetic_image
from repro.apps.sobel import SobelEdgeDetection
from repro.baselines.sobel_amd import SobelAmd
from repro.baselines.sobel_nvidia import SobelNvidia
from repro.reporting import render_bars

PAPER_MS = {"OpenCL (AMD)": 0.17, "OpenCL (NVIDIA)": 0.07, "SkelCL": 0.065}
RUNS = 6  # mean of six runs, as in the paper
RESULTS_DIR = Path(__file__).parent / "results"


def _sobel_times(image):
    ctx = ocl.Context.create(ocl.TESLA_FERMI_480)
    amd = SobelAmd(ctx)
    nvidia = SobelNvidia(ctx)
    session = skelcl.init(num_devices=1, spec=ocl.TESLA_FERMI_480)
    app = SobelEdgeDetection()
    reference = sobel_reference_uchar(image)

    # One full run validates correctness; the remaining timing runs use
    # sampled execution (the simulated times are identical — sampling
    # executes a deterministic subset of work-groups and scales the
    # counted costs).
    amd_edges, amd_event = amd.run(image)
    nvidia_edges, nvidia_event = nvidia.run(image)
    skelcl_edges = app.detect(image)
    assert np.array_equal(nvidia_edges, reference)
    assert np.array_equal(skelcl_edges, reference)
    assert np.array_equal(amd_edges[1:-1, 1:-1], reference[1:-1, 1:-1])

    amd_ns = [amd_event.duration_ns]
    nvidia_ns = [nvidia_event.duration_ns]
    skelcl_ns = [app.last_events[-1].duration_ns]
    for _ in range(RUNS - 1):
        _, amd_event = amd.run(image, sample_fraction=0.1)
        _, nvidia_event = nvidia.run(image, sample_fraction=0.1)
        amd_ns.append(amd_event.duration_ns)
        nvidia_ns.append(nvidia_event.duration_ns)
        skelcl_ns.append(skelcl_ns[0])

    # SkelScope artifacts: the SkelCL run's Chrome trace (Perfetto-
    # loadable; CI schema-checks and uploads it) and metrics snapshot.
    RESULTS_DIR.mkdir(exist_ok=True)
    session.export_trace(str(RESULTS_DIR / "fig5_sobel.trace.json"))
    with open(RESULTS_DIR / "fig5_sobel.metrics.json", "w") as handle:
        json.dump(session.metrics_snapshot(), handle, indent=2, sort_keys=True)

    skelcl.terminate()
    ctx.release()
    return {
        "OpenCL (AMD)": float(np.mean(amd_ns)),
        "OpenCL (NVIDIA)": float(np.mean(nvidia_ns)),
        "SkelCL": float(np.mean(skelcl_ns)),
    }


def test_fig5_sobel_runtimes(benchmark, record_result):
    image = synthetic_image(512, 512)
    times = benchmark.pedantic(_sobel_times, args=(image,), iterations=1, rounds=1)

    record_result(
        "fig5_sobel",
        render_bars(
            {name: t / 1e6 for name, t in times.items()},
            unit="ms",
            title=(
                "FIG-5: Sobel kernel runtime, 512x512, simulated 480-PE Tesla, "
                f"mean of {RUNS} runs"
            ),
            reference=PAPER_MS,
        ),
    )
    benchmark.extra_info.update({name: t / 1e6 for name, t in times.items()})

    amd = times["OpenCL (AMD)"]
    nvidia = times["OpenCL (NVIDIA)"]
    skel = times["SkelCL"]
    # Paper shape: AMD clearly slower than both; NVIDIA and SkelCL
    # similar, with SkelCL slightly ahead.
    assert amd > 2.0 * nvidia
    assert amd > 2.0 * skel
    assert abs(skel - nvidia) / nvidia < 0.15
    assert skel <= nvidia * 1.02
