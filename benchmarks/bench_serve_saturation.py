"""Multi-tenant serving saturation gate and tracked benchmark.

Drives the :mod:`repro.serve` runtime with a mixed workload from three
tenants on a shared 2-GPU pool:

- **sobel**: 1D Sobel-style MapOverlap graph jobs (stencil, medium);
- **mandel**: Mandelbrot-style iterate-heavy Map jobs (compute-bound,
  large, batchable);
- **dot**: dot-product graph jobs (Zip + Reduce, small and latency
  sensitive).

Two experiments:

1. **Saturation curve** — a closed-loop load generator sweeps the
   offered load (think time between request waves, from 4x the service
   capacity down to an all-upfront backlog) and records achieved
   throughput and p50/p99 latency per level: the classic
   throughput-vs-offered-load saturation curve.  At the fully saturated
   level the same backlog is replayed under the naive FIFO policy; the
   gate asserts the weighted-fair scheduler beats FIFO on p99 latency
   (round-robin interleaving + launch batching vs head-of-line
   blocking).

2. **Weighted shares** — two tenants with a 2:1 weight ratio submit
   identical backlogs; over the contended window (both backlogged) the
   2:1 tenant must receive ~2x the device-ns, within +-15%.

The per-level latency table goes to ``benchmarks/results/
serve_saturation.json``; the tracked ``BENCH_serve.json`` at the repo
root records the gated summary.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_saturation.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEVICES = ["tesla", "tesla"]

SOBEL = ("float func(float* v) { return get(v, 1) - get(v, -1); }", 1)

# 48 dependent iterations per element: a Mandelbrot-style escape loop's
# compute profile without the branchy early-out.
MANDEL = """\
float func(float x) {
    float re = x, im = 0.5f * x;
    for (int i = 0; i < 48; ++i) {
        float r2 = re * re - im * im + x;
        im = 2.0f * re * im + 0.25f;
        re = r2;
    }
    return re + im;
}"""

MULT = "float f(float x, float y) { return x * y; }"
ADD = "float f(float x, float y) { return x + y; }"


def _import_repro():
    src = os.path.join(_REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    import repro.skelcl as skelcl
    from repro import serve
    return skelcl, serve


def _percentile(values, q):
    import numpy as np

    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class Workload:
    """The three tenants' job factories over pre-generated inputs."""

    def __init__(self, skelcl, rng, sobel_n=2048, mandel_n=4096, dot_n=1024):
        self.skelcl = skelcl
        self.sobel = skelcl.MapOverlap(SOBEL[0], SOBEL[1],
                                       skelcl.SCL_NEUTRAL, 0.0)
        self.mandel = skelcl.Map(MANDEL)
        self.mult = skelcl.Zip(MULT)
        self.total = skelcl.Reduce(ADD)
        self.sobel_data = rng.rand(sobel_n).astype("float32")
        self.mandel_data = rng.rand(mandel_n).astype("float32")
        self.dot_a = rng.rand(dot_n).astype("float32")
        self.dot_b = rng.rand(dot_n).astype("float32")

    def submit(self, tenant_name, client):
        skelcl = self.skelcl
        if tenant_name == "sobel":
            data = self.sobel_data
            return client.submit(
                lambda: self.sobel(skelcl.Vector(data=data)), label="sobel")
        if tenant_name == "mandel":
            return client.submit_map(self.mandel, self.mandel_data,
                                     label="mandel")
        a, b = self.dot_a, self.dot_b
        return client.submit(
            lambda: self.total(self.mult(skelcl.Vector(data=a),
                                         skelcl.Vector(data=b))),
            label="dot")


TENANTS = ("sobel", "mandel", "dot")


def _run_level(skelcl, serve, waves, think_ns, policy="drr",
               drain_every=1):
    """One closed-loop run: ``waves`` request waves (one job per tenant
    per wave), ``think_ns`` of modeled client think time between waves,
    a drain every ``drain_every`` waves.  Returns (jobs, elapsed_ns)."""
    quota = serve.TenantQuota(max_queue_depth=max(64, 4 * waves))
    with serve.Server(devices=DEVICES, policy=policy,
                      default_quota=quota) as server:
        import numpy as np

        workload = Workload(skelcl, np.random.RandomState(42))
        clients = {name: server.client(name) for name in TENANTS}
        start_ns = server.now_ns
        jobs = []
        for wave in range(waves):
            if think_ns:
                server.advance_clock(think_ns)
            for name in TENANTS:
                jobs.append(workload.submit(name, clients[name]))
            if drain_every and (wave + 1) % drain_every == 0:
                server.drain()
        server.drain()
        elapsed_ns = server.now_ns - start_ns
        skelcl.terminate()
    return jobs, elapsed_ns


def _latency_stats(jobs):
    latencies = [job.latency_ns for job in jobs]
    return {
        "jobs": len(jobs),
        "p50_latency_ns": round(_percentile(latencies, 50)),
        "p99_latency_ns": round(_percentile(latencies, 99)),
        "max_latency_ns": max(latencies),
    }


def run_saturation(waves: int) -> dict:
    skelcl, serve = _import_repro()

    # Calibrate the per-wave service time from a quick unloaded run.
    calib_jobs, calib_ns = _run_level(skelcl, serve, waves=8, think_ns=0)
    wave_service_ns = max(1, calib_ns // 8)

    levels = []
    for load in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        think_ns = int(wave_service_ns / load)
        jobs, elapsed_ns = _run_level(skelcl, serve, waves, think_ns)
        entry = {
            "offered_load": load,
            "think_ns": think_ns,
            "elapsed_ns": elapsed_ns,
            "throughput_jobs_per_ms": round(len(jobs) * 1e6 / elapsed_ns, 3),
        }
        entry.update(_latency_stats(jobs))
        entry["per_tenant"] = {
            name: _latency_stats([j for j in jobs if j.tenant.name == name])
            for name in TENANTS
        }
        levels.append(entry)

    # Fully saturated: the whole backlog arrives at once; replay it
    # under both policies (this is where scheduling policy matters).
    saturated = {}
    for policy in ("drr", "fifo"):
        jobs, elapsed_ns = _run_level(skelcl, serve, waves, think_ns=0,
                                      policy=policy, drain_every=0)
        entry = _latency_stats(jobs)
        entry["elapsed_ns"] = elapsed_ns
        entry["throughput_jobs_per_ms"] = round(
            len(jobs) * 1e6 / elapsed_ns, 3)
        entry["per_tenant"] = {
            name: _latency_stats([j for j in jobs if j.tenant.name == name])
            for name in TENANTS
        }
        saturated[policy] = entry

    return {
        "wave_service_ns": wave_service_ns,
        "levels": levels,
        "saturated": saturated,
    }


def run_weighted_shares(jobs_per_tenant: int) -> dict:
    skelcl, serve = _import_repro()
    import numpy as np

    rng = np.random.RandomState(7)
    with serve.Server(devices=DEVICES, quantum_ns=12_000, batching=False,
                      default_quota=serve.TenantQuota(
                          max_queue_depth=4 * jobs_per_tenant)) as server:
        heavy = server.client("heavy", weight=2.0)
        light = server.client("light", weight=1.0)
        mandel = skelcl.Map(MANDEL)
        heavy_jobs, light_jobs = [], []
        for _ in range(jobs_per_tenant):
            heavy_jobs.append(heavy.submit_map(
                mandel, rng.rand(2048).astype(np.float32)))
            light_jobs.append(light.submit_map(
                mandel, rng.rand(2048).astype(np.float32)))
        server.drain()
        # Compare device-ns over the contended window only: once the
        # heavy backlog empties, the light tenant gets the whole pool
        # and the totals converge regardless of weights.
        heavy_done = max(job.end_ns for job in heavy_jobs)
        heavy_ns = sum(job.cost_ns for job in heavy_jobs)
        light_ns = sum(job.cost_ns for job in light_jobs
                       if job.end_ns <= heavy_done)
        fairness = server.metrics.value("skelcl_serve_weighted_fairness")
        skelcl.terminate()
    return {
        "weights": {"heavy": 2.0, "light": 1.0},
        "jobs_per_tenant": jobs_per_tenant,
        "heavy_device_ns": heavy_ns,
        "light_device_ns_in_window": light_ns,
        "ns_ratio": round(heavy_ns / light_ns, 3),
        "jain_fairness_after_drain": fairness,
    }


def gate(results: dict) -> bool:
    ok = True
    saturated = results["saturation"]["saturated"]
    drr_p99 = saturated["drr"]["p99_latency_ns"]
    fifo_p99 = saturated["fifo"]["p99_latency_ns"]
    print(f"saturated p99: drr {drr_p99} ns, fifo {fifo_p99} ns "
          f"(drr/fifo {drr_p99 / fifo_p99:.3f})")
    for level in results["saturation"]["levels"]:
        print(f"  load {level['offered_load']:>5}: "
              f"{level['throughput_jobs_per_ms']:>8} jobs/ms   "
              f"p50 {level['p50_latency_ns']:>9} ns   "
              f"p99 {level['p99_latency_ns']:>9} ns")
    if drr_p99 >= fifo_p99:
        print("FAIL: weighted-fair does not beat FIFO on p99 at saturation")
        ok = False

    ratio = results["weighted_shares"]["ns_ratio"]
    print(f"2:1-weighted device-ns ratio over the contended window: {ratio}")
    if not (2.0 * 0.85 <= ratio <= 2.0 * 1.15):
        print("FAIL: 2:1-weighted tenant's device-ns share off by > 15%")
        ok = False

    # Throughput must not degrade as offered load rises past capacity
    # (saturate, not collapse): the top level within 10% of the peak.
    levels = results["saturation"]["levels"]
    peak = max(level["throughput_jobs_per_ms"] for level in levels)
    top = levels[-1]["throughput_jobs_per_ms"]
    if top < 0.9 * peak:
        print(f"FAIL: throughput collapses past saturation "
              f"({top} vs peak {peak} jobs/ms)")
        ok = False

    if ok:
        print("OK: fair scheduling beats FIFO p99 at saturation; "
              "2:1 weights yield ~2x device-ns; throughput saturates")
    return ok


def _write_json(path: str, payload: dict) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(path, _REPO_ROOT)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--waves", type=int, default=60,
                        help="request waves per load level, one job per "
                             "tenant per wave (default 60 -> 180 jobs/level)")
    parser.add_argument("--weighted-jobs", type=int, default=60,
                        help="jobs per tenant in the weighted-shares run")
    parser.add_argument("--bench-dir", default=_REPO_ROOT,
                        help="directory for the tracked BENCH_serve.json")
    args = parser.parse_args()

    results = {
        "schema": "skelcl-bench-v1",
        "benchmark": "serve_saturation",
        "devices": DEVICES,
        "tenants": list(TENANTS),
        "waves": args.waves,
        "saturation": run_saturation(args.waves),
        "weighted_shares": run_weighted_shares(args.weighted_jobs),
    }
    ok = gate(results)
    _write_json(os.path.join(_REPO_ROOT, "benchmarks", "results",
                             "serve_saturation.json"), results)
    summary = {k: v for k, v in results.items() if k != "saturation"}
    summary["saturation"] = {
        "wave_service_ns": results["saturation"]["wave_service_ns"],
        "saturated": results["saturation"]["saturated"],
        "levels": [
            {k: level[k] for k in ("offered_load", "throughput_jobs_per_ms",
                                   "p50_latency_ns", "p99_latency_ns")}
            for level in results["saturation"]["levels"]
        ],
    }
    summary["gate_ok"] = ok
    _write_json(os.path.join(args.bench_dir, "BENCH_serve.json"), summary)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
