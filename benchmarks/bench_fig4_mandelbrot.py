"""FIG-4: the Mandelbrot study (§4.1).

Two artifacts, matching the two halves of the paper's Fig. 4:

* program size (LoC) of the CUDA / OpenCL / SkelCL versions —
  paper: CUDA 49 (28 kernel + 21 host), OpenCL 118 (28 + 90),
  SkelCL 57 (26 + 31);
* runtime of the three versions on one simulated Tesla T10 —
  paper: CUDA 18 s, OpenCL 25 s, SkelCL 26 s, i.e. CUDA ≈ 0.72× OpenCL
  and SkelCL within 5% of OpenCL.
"""

import pytest

import repro.skelcl as skelcl
from repro import loc, ocl
from repro.apps.mandelbrot import Mandelbrot
from repro.baselines.cuda import CudaRuntime
from repro.baselines.mandelbrot_cl import MandelbrotOpenCL
from repro.baselines.mandelbrot_cuda import MandelbrotCuda
from repro.reporting import render_bars, render_table

from conftest import full_scale

PAPER_LOC = {
    "CUDA": (49, 28, 21),
    "OpenCL": (118, 28, 90),
    "SkelCL": (57, 26, 31),
}

_SOURCES = {
    "CUDA": "mandelbrot_cuda.cu",
    "OpenCL": "mandelbrot_opencl.c",
    "SkelCL": "mandelbrot_skelcl.cpp",
}


def test_fig4_program_size(benchmark, record_result):
    counts = benchmark(lambda: {name: loc.count_reference(f) for name, f in _SOURCES.items()})

    rows = []
    for name, count in counts.items():
        paper_total, paper_kernel, paper_host = PAPER_LOC[name]
        rows.append((name, count.total, count.kernel, count.host,
                     f"{paper_total} ({paper_kernel}+{paper_host})"))
    record_result(
        "fig4_program_size",
        render_table(
            ["version", "LoC", "kernel", "host", "paper"],
            rows,
            title="FIG-4 (left): Mandelbrot program size",
        ),
    )

    # The paper's shape: OpenCL more than twice CUDA/SkelCL; SkelCL close
    # to CUDA.
    assert counts["OpenCL"].total > 2 * counts["CUDA"].total
    assert counts["SkelCL"].total < 0.6 * counts["OpenCL"].total
    for name, count in counts.items():
        assert count.total == PAPER_LOC[name][0]


def _mandelbrot_times(width, height, max_iter, sample_fraction):
    ctx = ocl.Context.create(ocl.TESLA_T10)
    _, cl_event = MandelbrotOpenCL(ctx).run(width, height, max_iter,
                                            sample_fraction=sample_fraction)
    ctx.release()

    runtime = CudaRuntime(ocl.TESLA_T10)
    _, cu_event = MandelbrotCuda(runtime).run(width, height, max_iter,
                                              sample_fraction=sample_fraction)
    runtime.release()

    skelcl.init(num_devices=1, spec=ocl.TESLA_T10)
    app = Mandelbrot(max_iterations=max_iter)
    app.render(width, height, sample_fraction=sample_fraction)
    skelcl_ns = app.last_kernel_time_ns
    skelcl.terminate()

    return {"CUDA": cu_event.duration_ns, "OpenCL": cl_event.duration_ns, "SkelCL": skelcl_ns}


def test_fig4_runtime(benchmark, record_result):
    if full_scale():
        # 1% of work-groups: sampling below that makes the 1-D (SkelCL)
        # and 2-D (CUDA/OpenCL) group shapes sample noticeably different
        # parts of the fractal boundary.
        width, height, max_iter, sample = 4096, 3072, 300, 0.01
    else:
        width, height, max_iter, sample = 1024, 768, 300, 0.05

    times = benchmark.pedantic(
        _mandelbrot_times, args=(width, height, max_iter, sample), iterations=1, rounds=1
    )

    cl = times["OpenCL"]
    record_result(
        "fig4_runtime",
        render_bars(
            {name: t / 1e6 for name, t in times.items()},
            unit="ms",
            title=(
                f"FIG-4 (right): Mandelbrot runtime, {width}x{height}, "
                f"{max_iter} iterations, 1 simulated Tesla T10\n"
                f"paper shape: CUDA 0.72x OpenCL; SkelCL within 5% of OpenCL"
            ),
        )
        + f"\nratios vs OpenCL: CUDA {times['CUDA']/cl:.3f}, SkelCL {times['SkelCL']/cl:.3f}",
    )
    benchmark.extra_info.update({name: t / 1e6 for name, t in times.items()})

    # Paper shape: CUDA ~31% faster than OpenCL; SkelCL overhead < 5%.
    assert 0.6 < times["CUDA"] / cl < 0.9
    assert 0.9 < times["SkelCL"] / cl < 1.05
