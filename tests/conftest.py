"""Shared fixtures: SkelCL runtimes on small simulated devices."""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl


@pytest.fixture
def rng():
    return np.random.RandomState(12345)


@pytest.fixture
def runtime_1gpu():
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    yield runtime
    skelcl.terminate()


@pytest.fixture
def runtime_2gpu():
    runtime = skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE)
    yield runtime
    skelcl.terminate()


@pytest.fixture
def runtime_4gpu():
    runtime = skelcl.init(num_devices=4, spec=ocl.TEST_DEVICE)
    yield runtime
    skelcl.terminate()


@pytest.fixture(params=["interp", "vector"])
def runtime_backend(request):
    """One-device runtime parametrized over both execution backends."""
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE,
                          backend=request.param)
    yield runtime
    skelcl.terminate()


@pytest.fixture(params=[1, 2, 3, 4])
def runtime_multi(request):
    """Parametrized over 1-4 simulated GPUs."""
    runtime = skelcl.init(num_devices=request.param, spec=ocl.TEST_DEVICE)
    yield runtime
    skelcl.terminate()
