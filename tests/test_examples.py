"""Smoke tests: every example script must run end-to-end.

Each example is executed in-process (runpy) with small arguments; these
tests keep the examples from rotting as the library evolves.
"""

import runpy
import sys
from pathlib import Path

import pytest

import repro.skelcl as skelcl

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def clean_runtime(tmp_path, monkeypatch):
    # Examples write output files (PGM images) into the cwd.
    monkeypatch.chdir(tmp_path)
    yield
    if skelcl.is_initialized():
        skelcl.terminate()


def run_example(name: str, *argv: str, capsys=None) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script), *argv]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "dot product" in out
        assert "numpy agrees = True" in out
        # The @skelcl.jit spelling of the same skeletons is bit-equal.
        assert "jit agrees   = True" in out

    def test_mandelbrot(self, capsys, tmp_path):
        out = run_example("mandelbrot.py", "96", "64", capsys=capsys)
        assert "simulated kernel time" in out
        assert (tmp_path / "mandelbrot.pgm").exists()

    def test_sobel(self, capsys):
        out = run_example("sobel_edge_detection.py", "160", capsys=capsys)
        assert "SkelCL:         True" in out
        # The jitted stencil matches the string kernel bit-for-bit.
        assert "SkelCL (jit):   True" in out
        assert "static bounds proof: True" in out

    def test_matrix_multiplication(self, capsys):
        out = run_example("matrix_multiplication.py", capsys=capsys)
        assert "speedup" in out
        assert "4" in out

    def test_distributions(self, capsys):
        out = run_example("distributions.py", capsys=capsys)
        assert "block -> copy redistribution moved" in out

    def test_nbody(self, capsys):
        out = run_example("nbody.py", "24", "5", capsys=capsys)
        assert "drift" in out

    def test_heat(self, capsys):
        out = run_example("heat_diffusion.py", "32", "10", capsys=capsys)
        assert "Jacobi sweeps" in out

    def test_game_of_life(self, capsys):
        out = run_example("game_of_life.py", "2", capsys=capsys)
        assert "population:" in out
        assert "static bounds proof: True" in out

    def test_image_pipeline(self, capsys):
        out = run_example("image_pipeline.py", "96", capsys=capsys)
        assert "edge pixels:" in out
        assert "device-resident" in out
