"""Jit-lowered kernels versus their hand-written OpenCL-C twins.

For each pair the tests prove three things:

1. **Same source** — stripping the ``/*@py:...*/`` and
   ``/*@intent:...*/`` markers from the lowered kernel yields exactly
   the bytes of the hand-written twin.
2. **Same execution** — running both through the same skeleton on the
   same data produces bit-identical results and identical summed
   :class:`~repro.ocl.event.Event` execution counters (ops, loads,
   stores, bytes, barriers, ...): the jit adds zero overhead.
3. **Race-free** — both versions run clean under the strict SkelSan
   sanitizer.
"""

import textwrap

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.jit import strip_markers
from repro.skelcl import BoundaryMode, Map, MapOverlap, Reduce, Vector, Zip


# --- the jitted functions and their hand-written twins ---------------

@skelcl.jit
def square(x: np.float32) -> np.float32:
    return x * x


SQUARE_TWIN = """\
float square(float x)
{
    return (float)(x * x);
}"""


@skelcl.jit
def saxpy(x: np.float32, y: np.float32, a: np.float32) -> np.float32:
    return a * x + y


SAXPY_TWIN = """\
float saxpy(float x, float y, float a)
{
    return (float)((float)(a * x) + y);
}"""


@skelcl.jit
def add(x: np.float32, y: np.float32) -> np.float32:
    return x + y


ADD_TWIN = """\
float add(float x, float y)
{
    return (float)(x + y);
}"""


@skelcl.jit
def blur(v: skelcl.READ[np.float32]) -> np.float32:
    return (skelcl.get(v, -1) + skelcl.get(v, 0) + skelcl.get(v, 1)) / 3.0


BLUR_TWIN = """\
float blur(const float* v)
{
    return (float)((float)((float)(get(v, -1) + get(v, 0)) + get(v, 1)) / 3.0f);
}"""


# --- helpers ---------------------------------------------------------

def lowered(fn):
    return fn.lower_source(fn.resolve_param_ctypes())


def summed_counters(skeleton):
    """Sum the execution counters over the skeleton's kernel launches."""
    totals = {}
    for event in skeleton.last_events:
        if event.command_type != "ndrange_kernel":
            continue
        for key, value in event.info.items():
            totals[key] = totals.get(key, 0) + value
    return totals


@pytest.fixture
def strict_runtime():
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE,
                          detect_races="strict")
    yield runtime
    skelcl.terminate()


def assert_clean(runtime):
    runtime.finish_all()
    assert runtime.context.check_races() == []


# --- 1. byte equality ------------------------------------------------

class TestSourceBytes:
    @pytest.mark.parametrize("fn,twin", [
        (square, SQUARE_TWIN),
        (saxpy, SAXPY_TWIN),
        (add, ADD_TWIN),
        (blur, BLUR_TWIN),
    ], ids=lambda v: v if isinstance(v, str) else v.__name__)
    def test_stripped_source_equals_twin(self, fn, twin):
        assert strip_markers(lowered(fn)).strip() == twin.strip()

    def test_markers_present_before_stripping(self):
        source = lowered(blur)
        assert "/*@py:" in source
        assert "/*@intent:blur.v=r*/" in source


# --- 2. identical execution ------------------------------------------

class TestExecutionParity:
    def _parity(self, run_jit, run_twin, runtime):
        jit_result, jit_skel = run_jit()
        jit_counters = summed_counters(jit_skel)
        twin_result, twin_skel = run_twin()
        twin_counters = summed_counters(twin_skel)
        np.testing.assert_array_equal(np.asarray(jit_result),
                                      np.asarray(twin_result))
        assert np.asarray(jit_result).dtype == np.asarray(twin_result).dtype
        assert jit_counters == twin_counters and jit_counters
        assert_clean(runtime)

    def test_map_square(self, strict_runtime, rng):
        data = rng.rand(513).astype(np.float32)

        def run(skel):
            out = skel(Vector(data=data)).to_numpy()
            return out, skel

        self._parity(lambda: run(Map(square)),
                     lambda: run(Map(SQUARE_TWIN)), strict_runtime)

    def test_zip_saxpy_with_extra_argument(self, strict_runtime, rng):
        x = rng.rand(257).astype(np.float32)
        y = rng.rand(257).astype(np.float32)

        def run(skel):
            out = skel(Vector(data=x), Vector(data=y), np.float32(2.5))
            return out.to_numpy(), skel

        self._parity(lambda: run(Zip(saxpy)),
                     lambda: run(Zip(SAXPY_TWIN)), strict_runtime)

    def test_reduce_add(self, strict_runtime, rng):
        data = rng.randint(-40, 40, 301).astype(np.float32)

        def run(skel):
            out = skel(Vector(data=data)).to_numpy()
            return out, skel

        self._parity(lambda: run(Reduce(add, "0.0")),
                     lambda: run(Reduce(ADD_TWIN, "0.0")), strict_runtime)

    def test_mapoverlap_blur(self, strict_runtime, rng):
        data = rng.rand(129).astype(np.float32)

        def run(skel):
            out = skel(Vector(data=data)).to_numpy()
            return out, skel

        self._parity(
            lambda: run(MapOverlap(blur, 1, BoundaryMode.NEUTRAL, 0.0)),
            lambda: run(MapOverlap(BLUR_TWIN, 1, BoundaryMode.NEUTRAL, 0.0)),
            strict_runtime)
