"""Span mapping: diagnostics against jit-generated kernels point back
at the *Python* source.

The lowering emits a ``/*@py:file:line*/`` marker on every generated
line; :class:`~repro.kernelc.source.SourceFile` recovers the mapping
and :meth:`~repro.kernelc.diagnostics.Diagnostic.render` prefers the
Python origin, appending a note with the generated kernel line.
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.kernelc.source import SourceFile
from repro.ocl.program import BuildError, Program
from repro.skelcl import Map, Vector, Zip


class TestSourceFileOrigins:
    def test_origin_markers_are_scanned(self):
        source = (
            "float f(float x) /*@py:app.py:7*/\n"
            "{\n"
            "    return x * 2.0f; /*@py:app.py:8*/\n"
            "}\n")
        sf = SourceFile(source, "<kernel>")
        assert sf.origins == {1: ("app.py", 7), 3: ("app.py", 8)}
        assert sf.origin(3) == ("app.py", 8)
        assert sf.origin(2) is None

    def test_intent_markers_are_scanned(self):
        source = ("/*@intent:blur.v=r*/\n"
                  "float blur(const float* v) { return get(v, 0); }\n")
        sf = SourceFile(source, "<kernel>")
        assert sf.declared_intents == {("blur", "v"): "r"}


class TestTypecheckErrorsCarryPythonOrigin:
    def test_error_on_marked_line_renders_python_location(self):
        # A synthetic kernel whose broken line carries an origin marker,
        # as jit-lowered code would.
        source = (
            "float broken_span_probe(float x) /*@py:app.py:3*/\n"
            "{\n"
            "    return x + undefined_name; /*@py:app.py:4*/\n"
            "}\n"
            "__kernel void k(__global float* a) { a[0] = broken_span_probe(a[0]); }\n")
        with pytest.raises(BuildError) as excinfo:
            Program(source, "probe").build()
        text = str(excinfo.value)
        assert "app.py:4: error:" in text
        assert "(generated from app.py:4; generated kernel line 3)" in text


class TestLintThroughSkeletonsReportsPythonOrigin:
    def test_unused_parameter_warning_points_at_this_file(self, runtime_1gpu,
                                                          rng):
        @skelcl.jit
        def ignores_second(x, y):
            return x * 2.0

        left = rng.rand(17).astype(np.float32)
        right = rng.rand(17).astype(np.float32)
        skel = Zip(ignores_second)
        skel(Vector(data=left), Vector(data=right))

        diags = [d for program in skel._programs.values()
                 for d in program.lint_diagnostics]
        unused = [d for d in diags if "unused-binding" in d.message
                  and "'y'" in d.message]
        assert unused, [d.message for d in diags]

        program = next(iter(skel._programs.values()))
        rendered = unused[0].render(program._compiled.program.source)
        def_line = ignores_second.fdef.lineno + ignores_second.line_offset
        assert rendered.startswith(f"test_spans.py:{def_line}: warning:")
        assert "parameter 'y' of ignores_second" in rendered
        assert f"(generated from test_spans.py:{def_line};" in rendered

    def test_clean_jit_map_has_no_lint_findings(self, runtime_1gpu, rng):
        @skelcl.jit
        def doubles(x: np.float32) -> np.float32:
            return x * 2.0

        skel = Map(doubles)
        skel(Vector(data=rng.rand(9).astype(np.float32)))
        assert all(not program.lint_diagnostics
                   for program in skel._programs.values())
