"""The hand-written half of the jit differential corpus.

Every function here is a ``@skelcl.jit`` customizer.  The *same object*
serves as both sides of the differential test: executed through a
skeleton it runs as lowered OpenCL-C; called directly it runs the
original Python on NumPy scalars — the host oracle.  The harness in
``test_differential.py`` demands bit-exact agreement.

Cases carry a *domain* so the data generator avoids inputs where Python
itself would fault (``math.log`` of a negative, division by zero) —
those inputs are a property of the test data, not of the lowering.
"""

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

import repro.skelcl as skelcl
from repro.skelcl import get


@dataclass(frozen=True)
class Case:
    """One corpus entry: a jit function plus how to feed it."""

    fn: object
    dtypes: Tuple[str, ...]          # one per container input
    extras: Tuple = ()               # additional scalar arguments
    domain: str = "any"              # data constraint, see make_data()
    note: str = ""


def make_data(dtype, domain, rng, n=73):
    """Deterministic input data honouring the case's domain."""
    dt = np.dtype(dtype)
    if dt.kind == "f":
        if domain == "positive":
            return (rng.uniform(0.125, 8.0, n)).astype(dt)
        if domain == "unit":
            return (rng.uniform(-0.99, 0.99, n)).astype(dt)
        if domain == "intlike":
            return rng.randint(-50, 50, n).astype(dt)
        return (rng.uniform(-10.0, 10.0, n)).astype(dt)
    if domain == "positive":
        return rng.randint(1, 100, n).astype(dt)
    if domain == "small":
        return rng.randint(0, 6, n).astype(dt)
    if domain == "nonzero":
        data = rng.randint(1, 100, n).astype(dt)
        return (data * rng.choice([-1, 1], n).astype(dt)).astype(dt)
    return rng.randint(-100, 100, n).astype(dt)


# =====================================================================
# Map corpus: unary functions (plus additional scalar arguments).
# =====================================================================

@skelcl.jit
def m_negate(x):
    return -x


@skelcl.jit
def m_square(x):
    return x * x


@skelcl.jit
def m_scale_shift(x):
    return 2.0 * x + 1.0


@skelcl.jit
def m_int_arith(x):
    return (x + 7) * 3 - 2


@skelcl.jit
def m_true_div(x):
    return x / 4.0


@skelcl.jit
def m_int_true_div(x):
    return x / 2


@skelcl.jit
def m_floordiv_const(x):
    return x // 7


@skelcl.jit
def m_mod_const(x):
    return x % 5


@skelcl.jit
def m_neg_floordiv(x):
    return (x - 3) // -4


@skelcl.jit
def m_abs(x):
    return abs(x)


@skelcl.jit
def m_min_max(x):
    return min(max(x, -2), 2)


@skelcl.jit
def m_clamp_mixed(x):
    lo = 0.5
    return max(x, lo)


@skelcl.jit
def m_ternary(x):
    return x if x > 0 else -x


@skelcl.jit
def m_ternary_weak(x):
    return 1 if x > 3 else 0


@skelcl.jit
def m_compare_chain(x):
    return 1.0 if 0 < x < 5 else 0.0


@skelcl.jit
def m_boolop(x):
    return x * 2 if x > 1 and x < 9 else x


@skelcl.jit
def m_not(x):
    return 5 if not x > 0 else 7


@skelcl.jit
def m_locals(x):
    a = x + 1
    b = a * a
    return b - x


@skelcl.jit
def m_if_stmt(x):
    y = x
    if x > 0:
        y = x * 3
    else:
        y = x - 1
    return y


@skelcl.jit
def m_elif(x):
    y = 0.0
    if x < -1:
        y = -1.0
    elif x > 1:
        y = 1.0
    else:
        y = x * 1.0
    return y


@skelcl.jit
def m_for_loop(x):
    acc = x
    for i in range(4):
        acc = acc + i
    return acc


@skelcl.jit
def m_for_range2(x):
    acc = x
    for i in range(1, 5):
        acc = acc * 1 + i
    return acc


@skelcl.jit
def m_for_step(x):
    acc = x
    for i in range(10, 0, -2):
        acc = acc + i
    return acc


@skelcl.jit
def m_nested_for(x):
    acc = x
    for i in range(3):
        for j in range(2):
            acc = acc + i * j
    return acc


@skelcl.jit
def m_augassign(x):
    acc = x
    acc += 2
    acc *= 3
    acc -= 1
    return acc


@skelcl.jit
def m_sin_cos(x):
    return math.sin(x) * math.cos(x)


@skelcl.jit
def m_exp(x):
    return math.exp(x / 16.0)


@skelcl.jit
def m_log_positive(x):
    return math.log(x)


@skelcl.jit
def m_sqrt_abs(x):
    return math.sqrt(abs(x) + 1.0)


@skelcl.jit
def m_tanh(x):
    return math.tanh(x)


@skelcl.jit
def m_atan2(x):
    return math.atan2(x, 2.0)


@skelcl.jit
def m_pow(x):
    return math.pow(abs(x) + 0.5, 1.5)


@skelcl.jit
def m_floor_ceil(x):
    return math.floor(x / 3.0) + math.ceil(x / 7.0)


@skelcl.jit
def m_trunc(x):
    # math.trunc needs a Python float on the host (numpy scalars define
    # no __trunc__); float(x) is exactly the kernel's (double) cast.
    return math.trunc(float(x) * 1.5)


@skelcl.jit
def m_pi(x):
    return x * math.pi


@skelcl.jit
def m_int_cast(x):
    return int(x) + 1


@skelcl.jit
def m_float_cast(x):
    return float(x) / 2.0


@skelcl.jit
def m_bitops(x):
    return ((x & 63) | 5) ^ 9


@skelcl.jit
def m_shifts(x):
    return (x << 2) >> 1


@skelcl.jit
def m_invert(x):
    return ~x


@skelcl.jit
def m_wrap_small(x):
    # At int8/int16 the C result would be computed at int width; the
    # lowering must wrap back to the operand width like NumPy does.
    return x * x + 17


@skelcl.jit
def m_extra_scale(x, s):
    return x * s


@skelcl.jit
def m_extra_two(x, a, b):
    return x * a + b


@skelcl.jit
def m_extra_cond(x, threshold):
    return x if x > threshold else threshold


@skelcl.jit
def m_annotated(x: np.float32) -> np.float32:
    return x * 0.5 + 2.0


@skelcl.jit
def m_annotated_narrow(x: np.float32) -> np.int32:
    # A declared narrower return type truncates, as np.int32(value).
    y = x * 3.0
    return int(y)


@skelcl.jit
def m_docstringed(x):
    """Docstrings are allowed and ignored."""
    return x + 1


# (fn, dtypes-to-run-at, extras, domain)
MAP_CASES = [
    Case(m_negate, ("float32", "float64", "int32", "int64")),
    Case(m_square, ("float32", "int32", "int16")),
    Case(m_scale_shift, ("float32", "float64", "int32")),
    Case(m_int_arith, ("int32", "int64", "int8")),
    Case(m_true_div, ("float32", "float64", "int32")),
    Case(m_int_true_div, ("int32", "int64", "float32")),
    Case(m_floordiv_const, ("int32", "int64", "int16")),
    Case(m_mod_const, ("int32", "int64")),
    Case(m_neg_floordiv, ("int32",)),
    Case(m_abs, ("float32", "int32", "int8")),
    Case(m_min_max, ("float32", "int32")),
    Case(m_clamp_mixed, ("float32", "float64")),
    Case(m_ternary, ("float32", "int32")),
    Case(m_ternary_weak, ("float32", "int32")),
    Case(m_compare_chain, ("float32", "int32")),
    Case(m_boolop, ("float32", "int32")),
    Case(m_not, ("float32", "int32")),
    Case(m_locals, ("float32", "int32")),
    Case(m_if_stmt, ("float32", "int32")),
    Case(m_elif, ("float32", "float64")),
    Case(m_for_loop, ("float32", "int32")),
    Case(m_for_range2, ("float32", "int32")),
    Case(m_for_step, ("int32", "float32")),
    Case(m_nested_for, ("int32", "float32")),
    Case(m_augassign, ("float32", "int32")),
    Case(m_sin_cos, ("float32", "float64")),
    Case(m_exp, ("float32", "float64")),
    Case(m_log_positive, ("float32", "float64"), domain="positive"),
    Case(m_sqrt_abs, ("float32", "float64")),
    Case(m_tanh, ("float32",)),
    Case(m_atan2, ("float32", "float64")),
    Case(m_pow, ("float32",)),
    Case(m_floor_ceil, ("float32", "float64")),
    Case(m_trunc, ("float32",)),
    Case(m_pi, ("float32", "float64")),
    Case(m_int_cast, ("float32", "int32")),
    Case(m_float_cast, ("float32", "int32")),
    Case(m_bitops, ("int32", "int64", "int16")),
    Case(m_shifts, ("int32", "int64"), domain="small"),
    Case(m_invert, ("int32", "int8")),
    Case(m_wrap_small, ("int8", "int16")),
    Case(m_extra_scale, ("float32",), extras=(2.5,)),
    Case(m_extra_scale, ("float32",), extras=(np.float32(0.75),)),
    Case(m_extra_scale, ("int32",), extras=(3,)),
    Case(m_extra_two, ("float32",), extras=(1.5, 2.0)),
    Case(m_extra_two, ("int32",), extras=(2, np.int32(7))),
    Case(m_extra_cond, ("float32",), extras=(0.5,)),
    Case(m_annotated, ("float32",)),
    Case(m_annotated_narrow, ("float32",)),
    Case(m_docstringed, ("float32", "int64")),
]


# =====================================================================
# Zip corpus: binary functions.
# =====================================================================

@skelcl.jit
def z_add(x, y):
    return x + y


@skelcl.jit
def z_mult(x, y):
    return x * y


@skelcl.jit
def z_sub_scaled(x, y):
    return (x - y) * 0.5


@skelcl.jit
def z_hypot(x, y):
    return math.sqrt(x * x + y * y)


@skelcl.jit
def z_select(x, y):
    return x if x > y else y


@skelcl.jit
def z_mixed_promote(x, y):
    # Mixed strong dtypes promote by np.result_type.
    return x + y


@skelcl.jit
def z_div_guarded(x, y):
    return x / (y * y + 1.0)


@skelcl.jit
def z_floordiv(x, y):
    return x // y


@skelcl.jit
def z_mod(x, y):
    return x % y


@skelcl.jit
def z_fmod(x, y):
    return math.fmod(x, y)


@skelcl.jit
def z_extra(x, y, alpha):
    return x * alpha + y


@skelcl.jit
def z_annotated(x: np.float32, y: np.float32) -> np.float32:
    return x * y + 1.0


ZIP_CASES = [
    Case(z_add, ("float32", "float32")),
    Case(z_add, ("int32", "int32")),
    Case(z_mult, ("float32", "float32")),
    Case(z_mult, ("int64", "int64")),
    Case(z_sub_scaled, ("float32", "float32")),
    Case(z_hypot, ("float32", "float32")),
    Case(z_select, ("float32", "float32")),
    Case(z_select, ("int32", "int32")),
    Case(z_mixed_promote, ("float32", "int32")),
    Case(z_mixed_promote, ("int16", "int32")),
    Case(z_div_guarded, ("float32", "float32")),
    Case(z_floordiv, ("int32", "int32"), domain="nonzero"),
    Case(z_mod, ("int64", "int64"), domain="nonzero"),
    Case(z_fmod, ("float32", "float32"), domain="positive"),
    Case(z_extra, ("float32", "float32"), extras=(1.25,)),
    Case(z_annotated, ("float32", "float32")),
]


# =====================================================================
# Reduce corpus.  The operator must be associative; bit-exactness of an
# order-insensitive oracle additionally requires exact arithmetic, so
# float cases use min/max or integral-valued data (exact float sums).
# =====================================================================

@skelcl.jit
def r_add(x, y):
    return x + y


@skelcl.jit
def r_max(x, y):
    return x if x > y else y


@skelcl.jit
def r_min(x, y):
    return min(x, y)


@skelcl.jit
def r_bitor(x, y):
    return x | y


# (fn, identity-literal, dtype, domain)
REDUCE_CASES = [
    (r_add, "0", "int32", "any"),
    (r_add, "0", "int64", "any"),
    (r_add, "0.0", "float32", "intlike"),
    (r_max, "-1000000", "int32", "any"),
    (r_max, "-1000000.0", "float32", "any"),
    (r_min, "1000000", "int64", "any"),
    (r_min, "1000000.0", "float64", "any"),
    (r_bitor, "0", "int32", "positive"),
]


# =====================================================================
# Scan corpus (inclusive prefix; same exactness constraints as Reduce).
# =====================================================================

SCAN_CASES = [
    (r_add, "0", "int32", "any"),
    (r_add, "0", "int64", "any"),
    # float32 + intlike data: prefix sums stay integral (exact at any
    # association, so the tree-shaped device scan matches the left fold).
    (r_add, "0.0", "float32", "intlike"),
    (r_max, "-1000000", "int32", "any"),
]


# =====================================================================
# MapOverlap corpus: stencil functions with declared intents.
# =====================================================================

@skelcl.jit
def s_blur3(v: skelcl.READ[np.float32]) -> np.float32:
    return (get(v, -1) + get(v, 0) + get(v, 1)) / 3.0


@skelcl.jit
def s_diff(v: skelcl.READ[np.float32]) -> np.float32:
    return get(v, 1) - get(v, -1)


@skelcl.jit
def s_widen(v: skelcl.READ[np.int32]) -> np.int32:
    acc = 0
    for d in range(-2, 3):
        acc = acc + get(v, d)
    return int(acc)


@skelcl.jit
def s_cross(m: skelcl.READ[np.float32]) -> np.float32:
    return (get(m, 0, 0) + get(m, -1, 0) + get(m, 1, 0)
            + get(m, 0, -1) + get(m, 0, 1)) / 5.0


# (fn, overlap, 2d?, dtype)
STENCIL_CASES = [
    (s_blur3, 1, False, "float32"),
    (s_diff, 1, False, "float32"),
    (s_widen, 2, False, "int32"),
    (s_cross, 1, True, "float32"),
]


# =====================================================================
# Multi-output (tuple-returning) corpus.
# =====================================================================

@skelcl.jit
def t_sumdiff(x, y):
    return x + y, x - y


@skelcl.jit
def t_polar(x):
    r = abs(x) + 1.0
    return math.log(r), math.sqrt(r)


# =====================================================================
# Host-oracle helpers.
#
# The oracle result dtype follows NEP 50 over the *host* element types:
# NumPy scalars are strong, Python int/float results are weak
# (``np.result_type`` implements exactly that).  ``np.array`` list
# inference does NOT apply NEP 50, so the array is materialized
# explicitly.  A declared return annotation pins the dtype instead —
# the same cast the lowered kernel performs on return.
# =====================================================================

def oracle_array(values, shape, declared_dtype=None):
    dtype = np.dtype(declared_dtype) if declared_dtype is not None \
        else np.result_type(*values)
    out = np.empty(len(values), dtype=dtype)
    for i, v in enumerate(values):
        out[i] = v
    return out.reshape(shape)


def declared_dtype(fn):
    """The dtype a return annotation pins, or None."""
    if fn.return_ctype is None:
        return None
    from repro.skelcl.types_ import dtype_for_ctype
    return dtype_for_ctype(fn.return_ctype)


def host_map(fn, data, extras=()):
    """The NumPy host oracle for an elementwise function: apply the
    *Python* function to every element as a NumPy scalar."""
    with np.errstate(over="ignore"):  # small-int wraparound is the point
        values = [fn(v, *extras) for v in data.reshape(-1)]
    return oracle_array(values, data.shape, declared_dtype(fn))


def host_zip(fn, left, right, extras=()):
    with np.errstate(over="ignore"):
        values = [fn(a, b, *extras)
                  for a, b in zip(left.reshape(-1), right.reshape(-1))]
    return oracle_array(values, left.shape, declared_dtype(fn))


def host_reduce(fn, data):
    """Left fold over the data (the identity is neutral by contract)."""
    acc = data[0]
    for v in data[1:]:
        acc = fn(acc, v)
    return acc


def host_scan(fn, data):
    """Inclusive left prefix fold."""
    acc = data[0]
    out = [acc]
    for v in data[1:]:
        acc = fn(acc, v)
        out.append(acc)
    return np.array(out, dtype=data.dtype)


class Neighbourhood:
    """Host-side stencil view: what ``get(m, ...)`` reads in a jitted
    function running as the oracle.  Mirrors MapOverlap's accessor:
    ``get(v, di)`` on vectors, ``get(m, dx, dy)`` on matrices (``dx`` is
    the column offset), with NEUTRAL or NEAREST boundary handling."""

    def __init__(self, data, i, j=None, *, neutral=None):
        self.data = data
        self.i = i
        self.j = j
        self.neutral = neutral

    def get(self, *offsets):
        if self.data.ndim == 1:
            (di,) = offsets
            idx = self.i + di
            if 0 <= idx < self.data.shape[0]:
                return self.data[idx]
            if self.neutral is not None:
                return self.data.dtype.type(self.neutral)
            return self.data[min(max(idx, 0), self.data.shape[0] - 1)]
        dx, dy = offsets
        row, col = self.i + dy, self.j + dx
        if 0 <= row < self.data.shape[0] and 0 <= col < self.data.shape[1]:
            return self.data[row, col]
        if self.neutral is not None:
            return self.data.dtype.type(self.neutral)
        row = min(max(row, 0), self.data.shape[0] - 1)
        col = min(max(col, 0), self.data.shape[1] - 1)
        return self.data[row, col]


def host_mapoverlap(fn, data, *, neutral=None):
    """Oracle for MapOverlap: run the Python function per element with a
    Neighbourhood view standing in for the pointer parameter."""
    if data.ndim == 1:
        values = [fn(Neighbourhood(data, i, neutral=neutral))
                  for i in range(data.shape[0])]
    else:
        values = [fn(Neighbourhood(data, i, j, neutral=neutral))
                  for i in range(data.shape[0])
                  for j in range(data.shape[1])]
    return oracle_array(values, data.shape, declared_dtype(fn))
