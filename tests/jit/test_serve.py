"""Jitted functions through the multi-tenant serving runtime.

A ``@skelcl.jit`` skeleton is a first-class citizen of ``repro.serve``:
map jobs and recorded graph jobs accept it, and results stay bit-exact
with the host oracle."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import serve

from . import corpus
from .corpus import host_map, host_reduce, host_zip, make_data
from .test_differential import assert_bitexact


@pytest.fixture(autouse=True)
def _teardown():
    yield
    skelcl.terminate()


def test_jit_map_job(rng):
    data = make_data("float32", "any", rng, n=256)
    skeleton = skelcl.Map(corpus.m_locals)
    with serve.Server(devices=["test"]) as server:
        client = server.client("jit")
        job = client.submit_map(skeleton, data)
        server.drain()
        result = np.asarray(job.result())
    assert_bitexact(result, host_map(corpus.m_locals, data))


def test_jit_graph_job_mixing_skeletons(rng):
    left = make_data("float32", "intlike", rng, n=128)
    right = make_data("float32", "intlike", rng, n=128)
    mult = skelcl.Zip(corpus.z_mult)
    total = skelcl.Reduce(corpus.r_add, "0.0")

    with serve.Server(devices=["test"]) as server:
        client = server.client("jit")
        job = client.submit(lambda: total(
            mult(skelcl.Vector(data=left), skelcl.Vector(data=right))))
        server.drain()
        result = job.result().to_numpy()

    expected = host_reduce(corpus.r_add, host_zip(corpus.z_mult, left, right))
    assert_bitexact(result, expected)


def test_jit_and_string_tenants_interleave(rng):
    jit_data = make_data("float32", "any", rng, n=512)
    str_data = make_data("float32", "any", rng, n=512)
    jit_map = skelcl.Map(corpus.m_square)
    str_map = skelcl.Map("float f(float x) { return x * x; }")

    with serve.Server(devices=["test"]) as server:
        a = server.client("jit-tenant")
        b = server.client("str-tenant")
        ja = a.submit_map(jit_map, jit_data)
        jb = b.submit_map(str_map, str_data)
        server.drain()
        ra = np.asarray(ja.result())
        rb = np.asarray(jb.result())

    assert_bitexact(ra, host_map(corpus.m_square, jit_data))
    np.testing.assert_array_equal(rb, str_data * str_data)
