"""The ``python -m repro.jit`` kernel-dump driver.

The CLI lowers every ``@skelcl.jit`` function of a module to ``.cl``
files; with ``--lint-harness`` the dumps are standalone kernelc
sources, which is how the CI job feeds them to
``python -m repro.kernelc --lint --access``.
"""

from pathlib import Path

from repro.jit.__main__ import main
from repro.kernelc.frontend import compile_source
from repro.kernelc.lint import lint_program


def test_dump_module_to_directory(tmp_path, capsys):
    assert main(["repro.apps.sobel", "-o", str(tmp_path)]) == 0
    listed = capsys.readouterr().out.strip().split("\n")
    assert listed == [str(tmp_path / "sobel_py.cl")]
    source = (tmp_path / "sobel_py.cl").read_text()
    assert "uchar sobel_py(const uchar* img)" in source
    assert "/*@intent:sobel_py.img=r*/" in source


def test_dump_by_file_path_and_name(tmp_path, capsys):
    quickstart = Path(__file__).parents[2] / "examples" / "quickstart.py"
    assert main([f"{quickstart}:mult_py", "-o", str(tmp_path)]) == 0
    capsys.readouterr()
    assert (tmp_path / "mult_py.cl").exists()
    assert not (tmp_path / "sum_py.cl").exists()


def test_list_names_functions(capsys):
    assert main(["repro.apps.sobel", "--list"]) == 0
    assert capsys.readouterr().out.strip() == "sobel_py"


def test_missing_function_fails(capsys):
    assert main(["repro.apps.sobel:nope"]) == 1
    assert "no @skelcl.jit function 'nope'" in capsys.readouterr().err


def test_lint_harness_makes_stencils_standalone(tmp_path, capsys):
    assert main(["repro.apps.sobel", "--lint-harness",
                 "-o", str(tmp_path)]) == 0
    capsys.readouterr()
    source = (tmp_path / "sobel_py.cl").read_text()
    # The dump compiles and lints clean as a standalone kernelc source.
    program = compile_source(source, "sobel_py.cl")
    assert lint_program(program) == []
