"""Unsupported constructs are rejected with located diagnostics.

Every rejection raises :class:`skelcl.JitError` whose ``render()``
pins the *Python* source position — ``file:line:col``, the offending
source line, and a caret under the construct — matching the kernelc
diagnostic format.  Structural rejections fire at decoration time;
type-dependent ones fire eagerly too when the function is fully
annotated.
"""

import math

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import JitError


def reject(match):
    return pytest.raises(JitError, match=match)


class TestStructuralRejections:
    def test_power_operator(self):
        with reject(r"\*\* operator is unsupported"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x ** 2

    def test_while_loop(self):
        with reject("unsupported construct: While"):
            @skelcl.jit
            def f(x):
                while x > 0:
                    x = x - 1
                return x

    def test_nested_def(self):
        with reject("nested function definitions are unsupported"):
            @skelcl.jit
            def f(x):
                def g(y):
                    return y
                return g(x)

    def test_lambda(self):
        with reject("unsupported construct: Lambda"):
            @skelcl.jit
            def f(x):
                g = lambda y: y + 1
                return g(x)

    def test_comprehension(self):
        with reject("unsupported construct"):
            @skelcl.jit
            def f(x):
                return sum([x for _ in range(3)])

    def test_annotated_assignment(self):
        with reject("annotated assignments are unsupported"):
            @skelcl.jit
            def f(x):
                t: float = x * 2
                return t

    def test_chained_assignment(self):
        with reject("chained assignment is unsupported"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                a = b = x
                return a + b

    def test_tuple_outside_return(self):
        with reject("tuples are only supported as a whole-function "
                    "multi-output return"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                a, b = x, x
                return a + b

    def test_keyword_arguments(self):
        with reject("keyword arguments are unsupported"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return min(x, b=2)

    def test_missing_return(self):
        with reject("must return a value"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                t = x + 1

    def test_function_without_source_file(self):
        namespace = {}
        exec("def g(x):\n    return x\n", namespace)
        with reject("needs a .*function defined in a file"):
            skelcl.jit(namespace["g"])


class TestTypeRejections:
    def test_undefined_name(self):
        with reject("undefined name 'q'"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x + q

    def test_bool_constant_in_expression(self):
        with reject("True/False are only supported in conditions"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x + True

    def test_conflicting_local_types(self):
        with reject("assigned conflicting types"):
            @skelcl.jit
            def f(x: np.int32) -> np.int32:
                t = x
                t = 1.5
                return t

    def test_floordiv_on_floats(self):
        with reject("// and % are only supported on integers"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x // 2

    def test_bitwise_on_floats(self):
        with reject("bitwise operators need integer operands"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x & 1

    def test_mixed_strong_minmax(self):
        with reject("arguments must share one type"):
            @skelcl.jit
            def f(x: np.int8, y: np.float64) -> np.float64:
                return min(x, y)

    def test_nonfinite_constant(self):
        with reject("non-finite constants are unsupported"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x + math.inf

    def test_unknown_function(self):
        with reject("unsupported function 'round'"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return round(x)

    def test_comparison_outside_condition(self):
        with reject("only supported in conditions"):
            @skelcl.jit
            def f(x: np.float32) -> np.float32:
                return x > 0


class TestIntentRejections:
    def test_read_parameter_written(self):
        with reject("declared READ but the body writes it"):
            @skelcl.jit
            def f(v: skelcl.READ[np.float32], out: skelcl.WRITE[np.float32]):
                v[0] = 1.0
                return 0.0

    def test_write_parameter_read(self):
        with reject("declared WRITE but the body reads it"):
            @skelcl.jit
            def f(out: skelcl.WRITE[np.float32]) -> np.float32:
                return out[0]

    def test_inc_parameter_plain_assignment(self):
        with reject("declared INC; only \\+= increments"):
            @skelcl.jit
            def f(acc: skelcl.INC[np.float32]) -> np.float32:
                acc[0] = 1.0
                return 0.0


class TestDiagnosticRendering:
    def test_render_pins_file_line_and_caret(self):
        with pytest.raises(JitError) as excinfo:
            @skelcl.jit
            def broken(x: np.float32) -> np.float32:
                return x ** 2

        err = excinfo.value
        rendered = err.render()
        lines = rendered.split("\n")
        # file:line:col against THIS file and the offending line.
        assert lines[0].startswith("test_rejections.py:")
        assert ":" in lines[0] and "error:" in lines[0]
        assert err.filename == "test_rejections.py"
        assert err.source_line.strip() == "return x ** 2"
        assert lines[1] == err.source_line
        # The caret sits under the expression's column.
        caret_line = lines[2]
        assert set(caret_line.strip()) == {"^"}
        assert caret_line.index("^") == err.column
        # The reported line number is the offending statement's line in
        # this file, not a line inside the generated kernel.
        import inspect
        sourcefile_lines = inspect.getsource(
            __import__("sys").modules[__name__]).split("\n")
        assert "x ** 2" in sourcefile_lines[err.line - 1]

    def test_uninferrable_parameter_names_the_function(self):
        @skelcl.jit
        def broken2(x):
            return x + 1

        with pytest.raises(JitError,
                           match="cannot infer a type for parameter 'x' "
                                 "of broken2"):
            broken2.lower_source()
