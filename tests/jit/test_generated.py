"""The jit differential harness, generated half.

Hypothesis draws random Python functions from the supported subset,
writes each one to a real file (``inspect`` needs the source on disk),
jits it, runs it through a skeleton on the simulated device, and
compares the result bit-for-bit against the same function run as plain
Python over NumPy scalars.  Any counterexample fails the test, so the
pass criterion is 100% of the generated corpus — stricter than the 95%
acceptance bar.  The map sweep runs on the interpreter backend and the
zip sweep on the vectorizing backend; the hand-written corpus in
``test_differential.py`` already runs every construct on both.

Grammar notes (each restriction mirrors a documented jit rule, see
docs/jit.md):

* ``min``/``max`` and ternary arms come from a *dtype-preserving*
  sub-grammar over a single variable (negation, ``abs``, +/-/* with
  small int constants).  Python's ``min(np.int8(3), 0.5)`` returns
  ``0.5`` with its own type; a statically-typed kernel cannot
  reproduce a value-dependent result type, and the jit rejects arms of
  different strong types — so the generator keeps both arms at the
  variable's dtype.
* Weak integer constants stay tiny (|c| <= 5).  NEP 50 makes NumPy
  raise ``OverflowError`` for unrepresentable Python ints next to a
  small-int array, where a kernel would wrap.
* ``int(...)`` only appears range-clamped through ``math.fmod`` so the
  truncated value fits every tested dtype.
* Division denominators are ``abs(d) + 3`` — never zero, including
  after int8 wraparound (``abs(-128) + 3 == -125``).
"""

import math
import tempfile
from pathlib import Path

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, given, settings, strategies as st
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    pytest.skip("hypothesis not installed", allow_module_level=True)

import repro.ocl as ocl
import repro.skelcl as skelcl
from repro.skelcl import Map, Vector, Zip

from . import corpus
from .corpus import host_map, host_zip
from .test_differential import assert_bitexact

# How many functions each @given test draws; the corpus-size floor test
# below counts these toward the >= 200 total.
MAP_EXAMPLES = 80
ZIP_EXAMPLES = 60

DTYPES = ["int8", "int16", "int32", "int64", "float32", "float64"]

_INT_CONSTS = ["1", "2", "3", "5", "-2", "-4"]
_FLOAT_CONSTS = ["0.5", "1.5", "2.0", "-0.25", "-3.5"]


def _pure(var):
    """Expressions guaranteed to have the dtype of ``var``: closed
    under negation, abs, +/-/* with small int constants, min/max and
    ternaries between two such expressions."""
    def build(child):
        rhs = st.one_of(child, st.sampled_from(_INT_CONSTS))
        return st.one_of(
            st.tuples(child, st.sampled_from(["+", "-", "*"]), rhs).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"),
            child.map(lambda e: f"(-{e})"),
            child.map(lambda e: f"abs({e})"),
            st.tuples(st.sampled_from(["min", "max"]), child, child).map(
                lambda t: f"{t[0]}({t[1]}, {t[2]})"),
            st.tuples(child, st.sampled_from(["0", "1"]), child).map(
                lambda t: f"({t[0]} if {var} > {t[1]} else {t[2]})"),
        )
    return st.recursive(st.just(var), build, max_leaves=5)


def _anchored(varnames, pure_vars):
    """Expressions guaranteed to reference a variable (hence strongly
    typed and lint-clean for parameter usage); arbitrary promotions are
    fine everywhere except min/max/ternary, which embed only via the
    dtype-preserving sub-grammar."""
    variables = st.sampled_from(list(varnames))
    pure = st.sampled_from(list(pure_vars)).flatmap(_pure)

    def build(child):
        loose = st.one_of(
            child,
            st.sampled_from(_INT_CONSTS + _FLOAT_CONSTS),
            child.map(lambda e: f"math.sin({e})"),
            child.map(lambda e: f"math.sqrt(max({e}, 0) + 1.5)"),
            child.map(lambda e: f"float({e})"),
            child.map(lambda e: f"int(math.fmod({e}, 16.0))"),
        )
        return st.one_of(
            st.tuples(child, st.sampled_from(["+", "-", "*"]), loose).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"),
            child.map(lambda e: f"(-{e})"),
            child.map(lambda e: f"abs({e})"),
            st.tuples(child, loose).map(
                lambda t: f"({t[0]} / (abs({t[1]}) + 3))"),
        )

    return st.recursive(st.one_of(variables, pure), build, max_leaves=6)


@st.composite
def map_programs(draw):
    """A unary function body in one of three statement shapes."""
    shape = draw(st.sampled_from(["expr", "local", "loop"]))
    if shape == "expr":
        body = f"    return {draw(_anchored(('x',), ('x',)))}\n"
    elif shape == "local":
        # `t` may have any strong type, so it is anchored-only.
        body = (f"    t = {draw(_anchored(('x',), ('x',)))}\n"
                f"    return ({draw(_anchored(('x', 't'), ('x',)))}) + (t - t)\n")
    else:
        # `acc = acc * c + x` keeps acc at x's dtype, so acc is pure.
        k = draw(st.integers(min_value=1, max_value=4))
        c = draw(st.sampled_from(_INT_CONSTS))
        body = (f"    acc = x\n"
                f"    for i in range({k}):\n"
                f"        acc = acc * {c} + x\n"
                f"    return ({draw(_anchored(('acc', 'x'), ('acc', 'x')))})"
                f" + (x - x)\n")
    return f"def gen(x):\n{body}"


@st.composite
def zip_programs(draw):
    # x and y may have different dtypes, so each pure island sticks to
    # one variable; the surrounding expression mixes them freely.
    expr = draw(_anchored(("x", "y"), ("x", "y")))
    return f"def gen(x, y):\n    return ({expr}) + (x - x) + (y - y)\n"


_GENDIR = Path(tempfile.mkdtemp(prefix="skelcl_jit_gen_"))
_counter = [0]


def _jit_from_source(source):
    """Write the drawn program to a real file and jit it (inspect and
    the diagnostics machinery both read source from disk)."""
    _counter[0] += 1
    path = _GENDIR / f"gen_{_counter[0]}.py"
    path.write_text(source)
    namespace = {"math": math}
    exec(compile(source, str(path), "exec"), namespace)
    return skelcl.jit(namespace["gen"])


def _make_data(dtype, seed, n=33):
    r = np.random.RandomState(seed)
    if np.dtype(dtype).kind == "f":
        return r.uniform(-4.0, 4.0, n).astype(dtype)
    return r.randint(-4, 5, n).astype(dtype)


@pytest.fixture
def interp_session():
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, backend="interp")
    yield runtime
    skelcl.terminate()


@pytest.fixture
def vector_session():
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, backend="vector")
    yield runtime
    skelcl.terminate()


@settings(max_examples=MAP_EXAMPLES, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(source=map_programs(), dtype=st.sampled_from(DTYPES),
       seed=st.integers(min_value=0, max_value=2**16))
def test_generated_map_bitexact(interp_session, source, dtype, seed):
    fn = _jit_from_source(source)
    data = _make_data(dtype, seed)
    result = Map(fn)(Vector(data=data))
    expected = host_map(fn, data)
    assert_bitexact(result.to_numpy(), expected, source)


@settings(max_examples=ZIP_EXAMPLES, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(source=zip_programs(),
       dtypes=st.tuples(st.sampled_from(DTYPES), st.sampled_from(DTYPES)),
       seed=st.integers(min_value=0, max_value=2**16))
def test_generated_zip_bitexact(vector_session, source, dtypes, seed):
    fn = _jit_from_source(source)
    left = _make_data(dtypes[0], seed)
    right = _make_data(dtypes[1], seed + 1)
    result = Zip(fn)(Vector(data=left), Vector(data=right))
    expected = host_zip(fn, left, right)
    assert_bitexact(result.to_numpy(), expected, source)


def test_corpus_meets_size_floor():
    """Hand-written + generated functions together clear the >= 200
    function acceptance bar."""
    hand = [v for v in vars(corpus).values()
            if isinstance(v, skelcl.JitFunction)]
    components = sum(len(fn.outputs) for fn in hand
                     if fn.n_outputs is not None)
    total = len(hand) + components + MAP_EXAMPLES + ZIP_EXAMPLES
    assert total >= 200, total
