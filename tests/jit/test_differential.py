"""The jit differential harness, hand-written half.

Every corpus function runs twice: lowered through a skeleton (OpenCL-C,
on both execution backends) and directly as Python on NumPy scalars
(the host oracle).  The results must agree **bit-exactly** — same
dtype, same shape, same bytes.  See ``tests/jit/corpus.py`` for the
corpus and the oracle's NEP 50 dtype rules.
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import (BoundaryMode, IndexMatrix, IndexVector, Map,
                          MapOverlap, Matrix, Reduce, Scan, Vector, Zip)

from . import corpus
from .corpus import (host_map, host_mapoverlap, host_reduce, host_scan,
                     host_zip, make_data)


def assert_bitexact(result, expected, context=""):
    result = np.asarray(result)
    expected = np.asarray(expected)
    assert result.dtype == expected.dtype, \
        f"{context}: dtype {result.dtype} != oracle {expected.dtype}"
    assert result.shape == expected.shape, \
        f"{context}: shape {result.shape} != oracle {expected.shape}"
    if result.tobytes() != expected.tobytes():
        np.testing.assert_array_equal(result, expected, err_msg=context)
        raise AssertionError(f"{context}: results differ bitwise (NaN/-0.0?)")


def _params(cases):
    out = []
    for index, case in enumerate(cases):
        for dt in case.dtypes:
            suffix = f"-x{len(case.extras)}" if case.extras else ""
            out.append(pytest.param(
                case, dt, id=f"{index}-{case.fn.__name__}-{dt}{suffix}"))
    return out


class TestMapCorpus:
    @pytest.mark.parametrize("case,dtype", _params(corpus.MAP_CASES))
    def test_map_vs_host_oracle(self, runtime_backend, rng, case, dtype):
        data = make_data(dtype, case.domain, rng)
        result = Map(case.fn)(Vector(data=data), *case.extras)
        expected = host_map(case.fn, data, case.extras)
        assert_bitexact(result.to_numpy(), expected, case.fn.__name__)

    def test_map_on_matrix(self, runtime_backend, rng):
        data = make_data("float32", "any", rng, n=6 * 9).reshape(6, 9)
        result = Map(corpus.m_scale_shift)(Matrix(data=data))
        assert_bitexact(result.to_numpy(), host_map(corpus.m_scale_shift, data))

    def test_map_multi_device(self, runtime_2gpu, rng):
        data = make_data("float32", "any", rng, n=517)
        result = Map(corpus.m_locals)(Vector(data=data))
        assert_bitexact(result.to_numpy(), host_map(corpus.m_locals, data))

    def test_same_jit_object_respecializes_across_dtypes(self, runtime_1gpu, rng):
        square = Map(corpus.m_square)
        for dtype in ("float32", "int32", "float64"):
            data = make_data(dtype, "any", rng)
            assert_bitexact(square(Vector(data=data)).to_numpy(),
                            host_map(corpus.m_square, data), dtype)


class TestZipCorpus:
    @pytest.mark.parametrize("case,dtype_pair", [
        pytest.param(case, case.dtypes,
                     id=f"{i}-{case.fn.__name__}-{'-'.join(case.dtypes)}")
        for i, case in enumerate(corpus.ZIP_CASES)
    ])
    def test_zip_vs_host_oracle(self, runtime_backend, rng, case, dtype_pair):
        left = make_data(dtype_pair[0], case.domain, rng)
        right = make_data(dtype_pair[1], case.domain, rng)
        result = Zip(case.fn)(Vector(data=left), Vector(data=right), *case.extras)
        expected = host_zip(case.fn, left, right, case.extras)
        assert_bitexact(result.to_numpy(), expected, case.fn.__name__)


class TestReduceCorpus:
    @pytest.mark.parametrize("fn,identity,dtype,domain", [
        pytest.param(*case, id=f"{case[0].__name__}-{case[2]}")
        for case in corpus.REDUCE_CASES
    ])
    def test_reduce_vs_host_oracle(self, runtime_backend, rng, fn, identity,
                                   dtype, domain):
        data = make_data(dtype, domain, rng, n=301)
        result = Reduce(fn, identity)(Vector(data=data)).to_numpy()
        assert_bitexact(result, host_reduce(fn, data), fn.__name__)


class TestScanCorpus:
    @pytest.mark.parametrize("fn,identity,dtype,domain", [
        pytest.param(*case, id=f"{case[0].__name__}-{case[2]}")
        for case in corpus.SCAN_CASES
    ])
    def test_scan_vs_host_oracle(self, runtime_backend, rng, fn, identity,
                                 dtype, domain):
        data = make_data(dtype, domain, rng, n=300)
        result = Scan(fn, identity)(Vector(data=data))
        assert_bitexact(result.to_numpy(), host_scan(fn, data), fn.__name__)


class TestMapOverlapCorpus:
    @pytest.mark.parametrize("fn,overlap,two_d,dtype", [
        pytest.param(*case, id=f"{case[0].__name__}")
        for case in corpus.STENCIL_CASES
    ])
    @pytest.mark.parametrize("boundary", [BoundaryMode.NEUTRAL, BoundaryMode.NEAREST],
                             ids=["neutral", "nearest"])
    def test_stencil_vs_host_oracle(self, runtime_backend, rng, fn, overlap,
                                    two_d, dtype, boundary):
        neutral = 3 if np.dtype(dtype).kind != "f" else 0.25
        if boundary is BoundaryMode.NEUTRAL:
            stencil = MapOverlap(fn, overlap, boundary, neutral)
            oracle_neutral = neutral
        else:
            stencil = MapOverlap(fn, overlap, boundary)
            oracle_neutral = None
        if two_d:
            data = make_data(dtype, "any", rng, n=12 * 17).reshape(12, 17)
            result = stencil(Matrix(data=data))
        else:
            data = make_data(dtype, "any", rng, n=97)
            result = stencil(Vector(data=data))
        expected = host_mapoverlap(fn, data, neutral=oracle_neutral)
        assert_bitexact(result.to_numpy(), expected, fn.__name__)


class TestIndexContainers:
    def test_jit_over_index_vector(self, runtime_backend):
        result = Map(corpus.m_int_arith)(IndexVector(41))
        expected = corpus.host_map(corpus.m_int_arith,
                                   np.arange(41, dtype=np.int64))
        assert_bitexact(result.to_numpy(), expected)

    def test_jit_over_index_matrix(self, runtime_1gpu):
        @skelcl.jit
        def rowcol(i, j):
            return i * 100 + j

        result = Map(rowcol)(IndexMatrix((7, 9)))
        rows, cols = np.meshgrid(np.arange(7, dtype=np.int64),
                                 np.arange(9, dtype=np.int64), indexing="ij")
        assert_bitexact(result.to_numpy(), rows * 100 + cols)


class TestMultiOutput:
    def test_tuple_return_components_via_zip(self, runtime_backend, rng):
        left = make_data("float32", "any", rng)
        right = make_data("float32", "any", rng)
        total = Zip(corpus.t_sumdiff.outputs[0])(Vector(data=left), Vector(data=right))
        delta = Zip(corpus.t_sumdiff.outputs[1])(Vector(data=left), Vector(data=right))
        assert_bitexact(total.to_numpy(),
                        host_zip(corpus.t_sumdiff.outputs[0], left, right))
        assert_bitexact(delta.to_numpy(),
                        host_zip(corpus.t_sumdiff.outputs[1], left, right))

    def test_tuple_return_components_via_map(self, runtime_backend, rng):
        data = make_data("float32", "any", rng)
        for component in corpus.t_polar.outputs:
            result = Map(component)(Vector(data=data))
            assert_bitexact(result.to_numpy(), host_map(component, data),
                            f"component {component.component}")

    def test_whole_multi_output_function_is_rejected(self, runtime_1gpu, rng):
        data = make_data("float32", "any", rng)
        with pytest.raises(skelcl.JitError, match="outputs"):
            Map(corpus.t_polar)(Vector(data=data))


class TestPlannerIntegration:
    """Jitted functions under the lazy planner: fusion still fires and
    stays bit-exact with the host oracle."""

    @pytest.fixture
    def lazy_runtime(self):
        import repro.ocl as ocl
        runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, lazy=True)
        yield runtime
        skelcl.terminate()

    def test_jitted_map_map_fusion_fires(self, lazy_runtime, rng):
        data = make_data("float32", "any", rng)
        first = Map(corpus.m_scale_shift)
        second = Map(corpus.m_square)
        out = second(first(Vector(data=data))).to_numpy()
        expected = host_map(corpus.m_square, host_map(corpus.m_scale_shift, data))
        assert_bitexact(out, expected)
        assert lazy_runtime.metrics.value(
            "skelcl_fusion_total", rule="map_map") >= 1

    def test_jitted_map_reduce_fusion(self, lazy_runtime, rng):
        data = make_data("int32", "any", rng, n=200)
        doubled = Map(corpus.m_int_arith)(Vector(data=data))
        total = Reduce(corpus.r_add, "0")(doubled).to_numpy()
        expected = host_reduce(corpus.r_add,
                               host_map(corpus.m_int_arith, data))
        assert_bitexact(total, expected)
        assert lazy_runtime.metrics.value(
            "skelcl_fusion_total", rule="map_reduce") >= 1


class TestStringJitMixing:
    def test_jit_zip_feeds_string_reduce(self, runtime_backend, rng):
        # The paper's dot product with a jitted Zip and a string Reduce.
        left = make_data("float32", "intlike", rng, n=256)
        right = make_data("float32", "intlike", rng, n=256)
        mult = Zip(corpus.z_mult)
        sum_up = Reduce("float func(float x, float y) { return x + y; }")
        result = sum_up(mult(Vector(data=left), Vector(data=right))).to_numpy()
        expected = host_reduce(corpus.r_add,
                               host_zip(corpus.z_mult, left, right))
        assert_bitexact(result, expected)
