"""Soundness tests for the compiled backend's load-CSE and strength
reduction: elided work must never change results, and invalidation must
be conservative across stores, calls, barriers and control flow.

Every case runs on both backends (the interpreter performs no CSE), so
agreement proves the optimization is semantics-preserving.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from .helpers import run_both, run_kernel


def outputs_agree(source, arrays, args, n=1, local=None):
    (c_res, c_cnt), (i_res, i_cnt) = run_both(source, "k", arrays, args, n, local)
    for name in arrays:
        np.testing.assert_array_equal(c_res[name], i_res[name], err_msg=name)
    return c_res, c_cnt, i_cnt


class TestCseCorrectness:
    def test_repeated_load_elided_but_value_correct(self):
        src = """__kernel void k(__global const int* a, __global int* o) {
            o[0] = a[3] + a[3] + a[3];
        }"""
        arrays = {"a": np.arange(8, dtype=np.int32), "o": np.zeros(1, np.int32)}
        c_res, c_cnt, i_cnt = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 9
        # The compiled backend loads once; the interpreter three times.
        assert c_cnt.memory.global_loads == 1
        assert i_cnt.memory.global_loads == 3

    def test_store_invalidates_cached_load(self):
        src = """__kernel void k(__global int* a, __global int* o) {
            int x = a[0];
            a[0] = x + 10;
            o[0] = a[0];
        }"""
        arrays = {"a": np.array([5], np.int32), "o": np.zeros(1, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 15

    def test_store_through_alias_invalidates(self):
        src = """__kernel void k(__global int* a, __global int* o) {
            __global int* p = a;
            int x = a[0];
            p[0] = 99;
            o[0] = a[0] + x;
        }"""
        arrays = {"a": np.array([1], np.int32), "o": np.zeros(1, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 100

    def test_index_variable_reassignment_invalidates(self):
        src = """__kernel void k(__global const int* a, __global int* o) {
            int i = 0;
            int x = a[i];
            i = 1;
            o[0] = a[i] + x;
        }"""
        arrays = {"a": np.array([10, 20], np.int32), "o": np.zeros(1, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 30

    def test_increment_of_index_invalidates(self):
        src = """__kernel void k(__global const int* a, __global int* o) {
            int i = 0;
            int x = a[i];
            ++i;
            o[0] = a[i] + x;
        }"""
        arrays = {"a": np.array([10, 20], np.int32), "o": np.zeros(1, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 30

    def test_helper_call_invalidates(self):
        src = """
        void bump(__global int* a) { a[0] = a[0] + 1; }
        __kernel void k(__global int* a, __global int* o) {
            int x = a[0];
            bump(a);
            o[0] = a[0] + x;
        }"""
        arrays = {"a": np.array([7], np.int32), "o": np.zeros(1, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 15

    def test_loop_body_reloads_each_iteration(self):
        src = """__kernel void k(__global int* a, __global int* o) {
            int s = 0;
            for (int i = 0; i < 4; ++i) {
                s += a[0];
                a[0] = a[0] + 1;
            }
            o[0] = s;
        }"""
        arrays = {"a": np.array([1], np.int32), "o": np.zeros(1, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 1 + 2 + 3 + 4

    def test_load_cached_inside_branch_not_reused_outside(self):
        src = """__kernel void k(__global const int* a, __global int* o, int c) {
            int x = 0;
            if (c) { x = a[0]; }
            o[0] = a[0] + x;
        }"""
        for c in (0, 1):
            arrays = {"a": np.array([4], np.int32), "o": np.zeros(1, np.int32)}
            c_res, _c, _i = outputs_agree(src, arrays, ["a", "o", c])
            assert c_res["o"][0] == (8 if c else 4)

    def test_short_circuit_load_not_hoisted(self):
        # The right side of && must not evaluate when the left is false:
        # the load would be out of bounds for gid >= n.
        src = """__kernel void k(__global const int* a, __global int* o, int n) {
            int gid = get_global_id(0);
            if (gid < n && a[gid] > 0) {
                o[gid] = a[gid];
            }
        }"""
        arrays = {"a": np.array([1, -2], np.int32), "o": np.zeros(4, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o", 2], n=4)
        assert list(c_res["o"]) == [1, 0, 0, 0]

    def test_ternary_branches_not_merged(self):
        src = """__kernel void k(__global const int* a, __global int* o, int c) {
            o[0] = c ? a[0] : a[1];
            o[1] = a[0];
        }"""
        for c in (0, 1):
            arrays = {"a": np.array([10, 20], np.int32), "o": np.zeros(2, np.int32)}
            c_res, _c, _i = outputs_agree(src, arrays, ["a", "o", c])
            assert c_res["o"][0] == (10 if c else 20)
            assert c_res["o"][1] == 10

    def test_barrier_invalidates_local_loads(self):
        src = """__kernel void k(__global const int* a, __global int* o) {
            __local int t[2];
            int lid = get_local_id(0);
            t[lid] = a[lid];
            barrier(CLK_LOCAL_MEM_FENCE);
            int x = t[1 - lid];
            barrier(CLK_LOCAL_MEM_FENCE);
            t[lid] = x * 2;
            barrier(CLK_LOCAL_MEM_FENCE);
            o[lid] = t[1 - lid];
        }"""
        arrays = {"a": np.array([3, 4], np.int32), "o": np.zeros(2, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["a", "o"], n=2, local=2)
        assert list(c_res["o"]) == [6, 8]  # t[1-lid] after doubling: [4*2? ...]

    def test_different_indices_not_merged(self):
        src = """__kernel void k(__global const int* a, __global int* o) {
            o[0] = a[0] + a[1];
        }"""
        arrays = {"a": np.array([1, 2], np.int32), "o": np.zeros(1, np.int32)}
        c_res, c_cnt, _ = outputs_agree(src, arrays, ["a", "o"])
        assert c_res["o"][0] == 3
        assert c_cnt.memory.global_loads == 2

    def test_switch_cases_isolated(self):
        src = """__kernel void k(__global int* a, __global int* o, int c) {
            int s = 0;
            switch (c) {
                case 0: s = a[0]; a[0] = 99; break;
                case 1: s = a[0] * 2; break;
            }
            o[0] = s + a[0];
        }"""
        for c, expected in ((0, 5 + 99), (1, 10 + 5)):
            arrays = {"a": np.array([5], np.int32), "o": np.zeros(1, np.int32)}
            c_res, _c, _i = outputs_agree(src, arrays, ["a", "o", c])
            assert c_res["o"][0] == expected


class TestStrengthReduction:
    def test_multiply_by_one_and_minus_one(self):
        src = """__kernel void k(__global int* o, int x) {
            o[0] = 1 * x;
            o[1] = x * 1;
            o[2] = -1 * x;
            o[3] = x * -1;
        }"""
        arrays = {"o": np.zeros(4, np.int32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["o", 7])
        assert list(c_res["o"]) == [7, 7, -7, -7]

    def test_minus_one_times_unsigned_wraps(self):
        src = "__kernel void k(__global uint* o, uint x) { o[0] = -1 * x; }"
        arrays = {"o": np.zeros(1, np.uint32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["o", 3])
        assert c_res["o"][0] == 4294967293

    def test_add_zero(self):
        src = """__kernel void k(__global float* o, float x) {
            o[0] = x + 0.0f;
            o[1] = 0.0f + x;
            o[2] = x - 0.0f;
        }"""
        arrays = {"o": np.zeros(3, np.float32)}
        c_res, _c, _i = outputs_agree(src, arrays, ["o", 2.5])
        assert list(c_res["o"]) == [2.5, 2.5, 2.5]

    def test_folded_ops_not_charged(self):
        from repro.kernelc import compile_source
        from repro.kernelc.compiler import node_cost

        program = compile_source("__kernel void k(__global int* o, int x) { o[0] = 1 * x + 0; }")
        statement = program.function("k").body.statements[0]
        baseline = compile_source("__kernel void k(__global int* o, int x) { o[0] = x; }")
        base_statement = baseline.function("k").body.statements[0]
        assert node_cost(statement.expr) == node_cost(base_statement.expr)


class TestCseRandomized:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["load", "store", "loadstore"]),
                      st.integers(0, 3), st.integers(-5, 5)),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_random_load_store_sequences(self, ops):
        """Random straight-line load/store sequences over one buffer:
        compiled (CSE) and interpreted (no CSE) must produce identical
        memory and accumulator results."""
        lines = ["int acc = 0;"]
        for kind, index, value in ops:
            if kind == "load":
                lines.append(f"acc += a[{index}];")
            elif kind == "store":
                lines.append(f"a[{index}] = acc + {value};")
            else:
                lines.append(f"a[{index}] = a[{index}] + {value};")
        lines.append("o[0] = acc;")
        body = "\n            ".join(lines)
        src = f"""__kernel void k(__global int* a, __global int* o) {{
            {body}
        }}"""
        arrays = {"a": np.arange(4, dtype=np.int32), "o": np.zeros(1, np.int32)}
        outputs_agree(src, arrays, ["a", "o"])
