"""Static bounds analysis tests (the paper's §3.4 future work)."""

import pytest

from repro.kernelc.boundcheck import Interval, analyze_get_bounds
from repro.kernelc.parser import parse


def analyze(source: str, overlap: int):
    program = parse(source)
    return analyze_get_bounds(program.functions[-1], overlap)


class TestInterval:
    def test_const(self):
        i = Interval.const(3)
        assert i.lo == i.hi == 3
        assert not i.is_top

    def test_arithmetic(self):
        a = Interval(-1, 2)
        b = Interval(0, 3)
        assert (a + b) == Interval(-1, 5)
        assert (a - b) == Interval(-4, 2)
        assert (-a) == Interval(-2, 1)

    def test_multiplication_corners(self):
        assert Interval(-2, 3) * Interval(-1, 4) == Interval(-8, 12)

    def test_top_propagates(self):
        assert (Interval.top() + Interval.const(1)).is_top
        assert (Interval.top() * Interval.const(0)).is_top  # conservative

    def test_join(self):
        assert Interval(-1, 0).join(Interval(2, 5)) == Interval(-1, 5)

    def test_within(self):
        assert Interval(-1, 1).within(-1, 1)
        assert not Interval(-2, 1).within(-1, 1)


class TestProofs:
    def test_constant_offsets_proven(self):
        proof = analyze("float f(float* m) { return get(m, -1, 1) + get(m, 0, 0); }", 1)
        assert proof.proven

    def test_constant_offset_too_large_rejected(self):
        proof = analyze("float f(float* m) { return get(m, 2, 0); }", 1)
        assert not proof.proven

    def test_negative_offset_too_large_rejected(self):
        assert not analyze("float f(float* m) { return get(m, -3, 0); }", 2).proven

    def test_vector_get_single_offset(self):
        assert analyze("float f(float* v) { return get(v, -1) + get(v, 1); }", 1).proven

    def test_for_loop_bounds_inclusive(self):
        source = """
        float f(float* m) {
            float s = 0.0f;
            for (int i = -1; i <= 1; ++i) s += get(m, i, 0);
            return s;
        }"""
        assert analyze(source, 1).proven
        assert not analyze(source, 0).proven

    def test_for_loop_strict_bound(self):
        source = """
        float f(float* m) {
            float s = 0.0f;
            for (int i = -1; i < 2; ++i) s += get(m, 0, i);
            return s;
        }"""
        assert analyze(source, 1).proven

    def test_nested_loops(self):
        source = """
        float f(float* m) {
            float s = 0.0f;
            for (int i = -1; i <= 1; ++i)
                for (int j = -1; j <= 1; ++j)
                    s += get(m, i, j);
            return s;
        }"""
        assert analyze(source, 1).proven

    def test_loop_with_step(self):
        source = """
        float f(float* m) {
            float s = 0.0f;
            for (int i = -2; i <= 2; i += 2) s += get(m, i, 0);
            return s;
        }"""
        assert analyze(source, 2).proven

    def test_arithmetic_on_induction_variable(self):
        source = """
        float f(float* m) {
            float s = 0.0f;
            for (int i = 0; i <= 2; ++i) s += get(m, i - 1, 0);
            return s;
        }"""
        assert analyze(source, 1).proven

    def test_unknown_variable_rejected(self):
        source = """
        float f(float* m, int k) { return get(m, k, 0); }"""
        assert not analyze(source, 1).proven

    def test_variable_reassigned_in_while_rejected(self):
        source = """
        float f(float* m) {
            int i = 0;
            while (i < 1) { ++i; }
            return get(m, i, 0);
        }"""
        assert not analyze(source, 1).proven

    def test_constant_propagation_through_locals(self):
        source = """
        float f(float* m) {
            int left = -1;
            int right = 1;
            return get(m, left, 0) + get(m, right, 0);
        }"""
        assert analyze(source, 1).proven

    def test_branch_join(self):
        source = """
        float f(float* m, int c) {
            int off = 0;
            if (c) { off = 1; } else { off = -1; }
            return get(m, off, 0);
        }"""
        assert analyze(source, 1).proven
        assert not analyze(source, 0).proven

    def test_reassignment_after_branch_uses_join(self):
        source = """
        float f(float* m, int c) {
            int off = 5;
            if (c) { off = 0; }
            return get(m, off, 0);
        }"""
        assert not analyze(source, 1).proven

    def test_no_get_calls_trivially_proven(self):
        assert analyze("float f(float x) { return x; }", 1).proven

    def test_descending_loop_not_matched_but_safe(self):
        # Descending loops are not pattern-matched: the analysis must
        # conservatively reject, never wrongly prove.
        source = """
        float f(float* m) {
            float s = 0.0f;
            for (int i = 1; i >= -1; --i) s += get(m, i, 0);
            return s;
        }"""
        assert not analyze(source, 1).proven

    def test_ternary_offset(self):
        source = "float f(float* m, int c) { return get(m, c ? 1 : -1, 0); }"
        assert analyze(source, 1).proven


class TestPointerEscape:
    """A proof is only as good as its view of the accesses: any use of
    the pointer parameter outside the recognized ``get()``/direct
    patterns (aliasing, helper calls) hides reads from the analysis and
    must poison the proof — a proven result would let MapOverlap shrink
    the staged halo below the kernel's actual reach."""

    def test_aliased_pointer_poisons_proof(self):
        proof = analyze("float f(float* v) { float* p = v; return p[3]; }", 1)
        assert not proof.proven
        assert "escapes" in proof.reason

    def test_pointer_passed_to_helper_poisons_proof(self):
        source = """
        float pick(float* q) { return q[3]; }
        float f(float* v) { return pick(v); }
        """
        assert not analyze(source, 1).proven

    def test_pointer_in_unmodelled_arithmetic_poisons_proof(self):
        assert not analyze(
            "float f(float* v) { return v[1] + (v + 2)[0]; }", 1).proven

    def test_recognized_patterns_do_not_escape(self):
        proof = analyze(
            "float f(float* v) { return v[1] + *(v + 1) + *v + get(v, -1); }",
            1)
        assert proof.proven
