"""Preprocessor unit tests."""

import pytest

from repro.kernelc.preprocessor import Preprocessor, PreprocessorError, preprocess


class TestObjectMacros:
    def test_simple_define(self):
        out = preprocess("#define N 16\nint x = N;")
        assert "int x = 16;" in out

    def test_define_is_word_bounded(self):
        out = preprocess("#define N 16\nint NN = N;")
        assert "int NN = 16;" in out

    def test_undef(self):
        out = preprocess("#define N 16\n#undef N\nint x = N;")
        assert "int x = N;" in out

    def test_redefine_overrides(self):
        out = preprocess("#define N 1\n#define N 2\nint x = N;")
        assert "int x = 2;" in out

    def test_macro_in_string_not_expanded(self):
        out = preprocess('#define N 16\nchar* s = "N";')
        assert '"N"' in out

    def test_macro_in_comment_not_expanded(self):
        out = preprocess("#define N 16\nint x; // uses N\n")
        assert "// uses N" in out

    def test_nested_expansion(self):
        out = preprocess("#define A B\n#define B 7\nint x = A;")
        assert "int x = 7;" in out

    def test_recursive_macro_does_not_hang(self):
        # Self-reference is hidden (painted blue), like a real cpp.
        out = preprocess("#define A A + 1\nint x = A;")
        assert "A + 1" in out

    def test_empty_body(self):
        out = preprocess("#define EMPTY\nint x EMPTY;")
        assert "int x ;" in out

    def test_object_macro_with_parenthesized_body(self):
        out = preprocess("#define X (1 + 2)\nint y = X;")
        assert "(1 + 2)" in out

    def test_predefines_argument(self):
        out = preprocess("int x = WG;", defines={"WG": "256"})
        assert "int x = 256;" in out


class TestFunctionMacros:
    def test_simple(self):
        out = preprocess("#define SQR(x) ((x) * (x))\nint y = SQR(3);")
        assert "((3) * (3))" in out

    def test_two_params(self):
        out = preprocess("#define MIN(a, b) ((a) < (b) ? (a) : (b))\nint y = MIN(1, 2);")
        assert "((1) < (2) ? (1) : (2))" in out

    def test_nested_call_arguments(self):
        out = preprocess("#define ID(x) x\nint y = ID(f(1, 2));")
        assert "f(1, 2)" in out

    def test_name_without_parens_not_invoked(self):
        out = preprocess("#define F(x) x\nint y = F;")
        assert "int y = F;" in out

    def test_wrong_arity_is_error(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define F(a, b) a\nint y = F(1);")

    def test_argument_containing_parens(self):
        out = preprocess("#define ID(x) x\nint y = ID((1 + 2) * 3);")
        assert "(1 + 2) * 3" in out

    def test_macro_calling_macro(self):
        out = preprocess("#define A(x) B(x)\n#define B(x) ((x) + 1)\nint y = A(2);")
        assert "((2) + 1)" in out

    def test_zero_parameter_macro(self):
        out = preprocess("#define F() 42\nint y = F();")
        assert "int y = 42;" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define X\n#ifdef X\nint a;\n#endif\nint b;")
        assert "int a;" in out and "int b;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef X\nint a;\n#endif\nint b;")
        assert "int a;" not in out and "int b;" in out

    def test_ifndef(self):
        out = preprocess("#ifndef X\nint a;\n#endif")
        assert "int a;" in out

    def test_else(self):
        out = preprocess("#ifdef X\nint a;\n#else\nint b;\n#endif")
        assert "int a;" not in out and "int b;" in out

    def test_nested_conditionals(self):
        src = "#define A\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
        out = preprocess(src)
        assert "int y;" in out and "int x;" not in out

    def test_if_arithmetic(self):
        out = preprocess("#define N 4\n#if N > 2\nint a;\n#endif")
        assert "int a;" in out

    def test_if_defined(self):
        out = preprocess("#define X 1\n#if defined(X) && X\nint a;\n#endif")
        assert "int a;" in out

    def test_elif(self):
        src = "#define N 2\n#if N == 1\nint a;\n#elif N == 2\nint b;\n#else\nint c;\n#endif"
        out = preprocess(src)
        assert "int b;" in out and "int a;" not in out and "int c;" not in out

    def test_unterminated_conditional_is_error(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef X\nint a;")

    def test_endif_without_if_is_error(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_define_inside_skipped_region_ignored(self):
        out = preprocess("#ifdef X\n#define N 9\n#endif\nint a = N;")
        assert "int a = N;" in out


class TestDirectivesMisc:
    def test_pragma_ignored(self):
        out = preprocess("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint a;")
        assert "int a;" in out

    def test_include_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess('#include "foo.h"')

    def test_unknown_directive_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("#frobnicate")

    def test_line_continuation(self):
        out = preprocess("#define SUM(a, b) \\\n ((a) + (b))\nint y = SUM(1, 2);")
        assert "((1) + (2))" in out

    def test_line_count_preserved(self):
        src = "#define A 1\nint x = A;\n#ifdef B\nint y;\n#endif\nint z;"
        out = preprocess(src)
        assert len(out.split("\n")) == len(src.split("\n"))

    def test_directive_with_leading_whitespace(self):
        out = preprocess("   #define N 3\nint x = N;")
        assert "int x = 3;" in out


class TestPreprocessorState:
    def test_define_api(self):
        pp = Preprocessor()
        pp.define("MIN(a,b)", "((a)<(b)?(a):(b))")
        out = pp.process("int x = MIN(3, 4);")
        assert "((3)<(4)?(3):(4))" in out

    def test_invalid_signature_rejected(self):
        with pytest.raises(PreprocessorError):
            Preprocessor().define("1BAD", "x")
