"""Value and memory model unit tests: vectors, pointers, conversions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernelc.ctypes_ import (
    CHAR,
    FLOAT,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    VectorType,
    convert_scalar,
    integer_promote,
    usual_arithmetic_conversions,
    wrap_int,
)
from repro.kernelc.execmodel import ExecutionCounters
from repro.kernelc.memory import ArrayRef, KernelFault, Pointer, allocate
from repro.kernelc.values import VecValue, component_indices


class TestComponentIndices:
    def test_xyzw(self):
        assert component_indices("x", 4) == [0]
        assert component_indices("w", 4) == [3]
        assert component_indices("xyzw", 4) == [0, 1, 2, 3]
        assert component_indices("wzyx", 4) == [3, 2, 1, 0]

    def test_numeric_selectors(self):
        assert component_indices("s0", 8) == [0]
        assert component_indices("s7", 8) == [7]
        assert component_indices("s01", 4) == [0, 1]

    def test_hex_selectors_wide_vector(self):
        assert component_indices("sF", 16) == [15]
        assert component_indices("sa", 16) == [10]

    def test_lo_hi_even_odd(self):
        assert component_indices("lo", 4) == [0, 1]
        assert component_indices("hi", 4) == [2, 3]
        assert component_indices("even", 8) == [0, 2, 4, 6]
        assert component_indices("odd", 8) == [1, 3, 5, 7]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            component_indices("z", 2)
        with pytest.raises(ValueError):
            component_indices("s4", 4)

    def test_invalid_selector_rejected(self):
        with pytest.raises(ValueError):
            component_indices("q", 4)

    def test_lo_on_odd_width_rejected(self):
        with pytest.raises(ValueError):
            component_indices("lo", 3)


class TestVecValue:
    def test_components_converted_to_element_type(self):
        v = VecValue(INT, [1.9, -2.9, 3, 4])
        assert v.components == [1, -2, 3, 4]

    def test_map_and_zip(self):
        v = VecValue(FLOAT, [1, 2, 3, 4])
        doubled = v.map(lambda c: c * 2)
        assert doubled.components == [2, 4, 6, 8]
        summed = v.zip_with(doubled, lambda a, b: a + b)
        assert summed.components == [3, 6, 9, 12]

    def test_zip_with_scalar_broadcast(self):
        v = VecValue(INT, [1, 2])
        assert v.zip_with(10, lambda a, b: a + b).components == [11, 12]

    def test_equality(self):
        assert VecValue(INT, [1, 2]) == VecValue(INT, [1, 2])
        assert VecValue(INT, [1, 2]) != VecValue(INT, [2, 1])
        assert VecValue(INT, [1, 2]) != VecValue(FLOAT, [1, 2])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VecValue(INT, [1, 2]).zip_with(VecValue(INT, [1, 2, 3]), lambda a, b: a)


class TestPointer:
    def _pointer(self, n=8, dtype=np.float32, ctype=FLOAT):
        counters = ExecutionCounters()
        array = np.arange(n, dtype=dtype)
        return Pointer(array, ctype, "global", 0, counters.memory), counters

    def test_load_store_roundtrip(self):
        pointer, _ = self._pointer()
        pointer.store(2, 42.5)
        assert pointer.load(2) == 42.5

    def test_pointer_arithmetic(self):
        pointer, _ = self._pointer()
        shifted = pointer.add(3)
        assert shifted.load(0) == 3.0
        assert shifted.diff(pointer) == 3

    def test_bounds_checked(self):
        pointer, _ = self._pointer(4)
        with pytest.raises(KernelFault):
            pointer.load(4)
        with pytest.raises(KernelFault):
            pointer.add(2).load(-3)

    def test_diff_between_objects_rejected(self):
        a, _ = self._pointer()
        b, _ = self._pointer()
        with pytest.raises(KernelFault):
            a.diff(b)

    def test_traffic_accounting(self):
        pointer, counters = self._pointer()
        pointer.load(0)
        pointer.load(1)
        pointer.store(2, 1.0)
        assert counters.memory.global_loads == 2
        assert counters.memory.global_stores == 1
        assert counters.memory.global_bytes == 3 * 4

    def test_local_traffic_separate(self):
        counters = ExecutionCounters()
        local = Pointer(np.zeros(4, np.float32), FLOAT, "local", 0, counters.memory)
        local.store(0, 1.0)
        local.load(0)
        assert counters.memory.local_loads == 1
        assert counters.memory.local_stores == 1
        assert counters.memory.global_loads == 0

    def test_store_applies_c_conversion(self):
        counters = ExecutionCounters()
        pointer = Pointer(np.zeros(2, np.uint8), UCHAR, "global", 0, counters.memory)
        pointer.store(0, 300)
        assert pointer.load(0) == 44

    def test_retyped_scalar_reinterpret(self):
        counters = ExecutionCounters()
        array = np.array([1, 0, 0, 0, 2, 0, 0, 0], np.uint8)
        bytes_ptr = Pointer(array, UCHAR, "global", 0, counters.memory)
        words = bytes_ptr.retyped(INT)
        assert words.load(0) == 1
        assert words.load(1) == 2
        assert words.length == 2

    def test_retyped_misaligned_rejected(self):
        counters = ExecutionCounters()
        array = np.zeros(8, np.uint8)
        pointer = Pointer(array, UCHAR, "global", 1, counters.memory)
        with pytest.raises(KernelFault):
            pointer.retyped(INT)

    def test_vector_load_store(self):
        counters = ExecutionCounters()
        pointer = allocate(VectorType(FLOAT, 4), 2, "global", counters.memory)
        pointer.store(1, VecValue(FLOAT, [1, 2, 3, 4]))
        value = pointer.load(1)
        assert value == VecValue(FLOAT, [1, 2, 3, 4])
        assert counters.memory.global_bytes == 32


class TestArrayRef:
    def test_flat_indexing(self):
        pointer = allocate(INT, 6, "private")
        ref = ArrayRef(pointer, INT)
        slot_pointer, index = ref.index(4)
        slot_pointer.store(index, 9)
        assert pointer.load(4) == 9

    def test_two_level_indexing(self):
        from repro.kernelc.ctypes_ import ArrayType

        pointer = allocate(INT, 6, "private")
        ref = ArrayRef(pointer, ArrayType(INT, 3))  # shape (2, 3)
        row = ref.index(1)
        assert isinstance(row, ArrayRef)
        slot_pointer, index = row.index(2)
        slot_pointer.store(index, 5)
        assert pointer.load(5) == 5

    def test_decay(self):
        pointer = allocate(INT, 4, "private")
        ref = ArrayRef(pointer, INT)
        assert ref.decayed() is pointer


class TestConversions:
    @given(value=st.integers(-(2**70), 2**70))
    @settings(max_examples=100, deadline=None)
    def test_wrap_int_ranges(self, value):
        for ctype in (CHAR, UCHAR, SHORT, INT, UINT, LONG, ULONG):
            wrapped = wrap_int(value, ctype)
            assert ctype.min_value() <= wrapped <= ctype.max_value()
            # Wrapping is congruent mod 2^bits.
            assert (wrapped - value) % (1 << ctype.bits) == 0

    @given(value=st.integers(-128, 127))
    @settings(max_examples=50, deadline=None)
    def test_wrap_identity_in_range(self, value):
        assert wrap_int(value, CHAR) == value

    def test_convert_scalar_float_to_int_truncates(self):
        assert convert_scalar(2.7, INT) == 2
        assert convert_scalar(-2.7, INT) == -2

    def test_convert_scalar_float32_rounding(self):
        value = convert_scalar(0.1, FLOAT)
        assert value == np.float32(0.1)

    def test_integer_promotion(self):
        assert integer_promote(CHAR) == INT
        assert integer_promote(SHORT) == INT
        assert integer_promote(INT) == INT
        assert integer_promote(LONG) == LONG

    def test_usual_arithmetic_conversions(self):
        assert usual_arithmetic_conversions(INT, FLOAT) == FLOAT
        assert usual_arithmetic_conversions(CHAR, CHAR) == INT
        assert usual_arithmetic_conversions(INT, UINT) == UINT
        assert usual_arithmetic_conversions(UINT, LONG) == LONG
        assert usual_arithmetic_conversions(LONG, ULONG) == ULONG

    @given(
        a=st.sampled_from([CHAR, UCHAR, SHORT, INT, UINT, LONG, ULONG]),
        b=st.sampled_from([CHAR, UCHAR, SHORT, INT, UINT, LONG, ULONG]),
    )
    @settings(max_examples=60, deadline=None)
    def test_usual_conversions_commutative_and_wide(self, a, b):
        common = usual_arithmetic_conversions(a, b)
        assert common == usual_arithmetic_conversions(b, a)
        assert common.size >= min(integer_promote(a).size, integer_promote(b).size)
