"""Interpreter-specific behaviours and fault paths."""

import numpy as np
import pytest

from repro.kernelc import compile_source
from repro.kernelc.ctypes_ import FLOAT, INT
from repro.kernelc.interp import Machine, local_memory_bytes
from repro.kernelc.memory import KernelFault

from .helpers import run_kernel


def run(source, arrays, args, backend, n=1, local=None):
    return run_kernel(source, "k", arrays, args, n, local, backend=backend)


@pytest.fixture(params=["compiler", "interp"])
def backend(request):
    return request.param


class TestGlobals:
    def test_constant_scalar_global(self, backend):
        src = """
        __constant float SCALE = 2.5f;
        __kernel void k(__global float* o) { o[0] = SCALE * 2.0f; }
        """
        out, _ = run(src, {"o": np.zeros(1, np.float32)}, ["o"], backend)
        assert out["o"][0] == 5.0

    def test_constant_expression_global(self, backend):
        src = """
        __constant int N = 4 * 4 + 2;
        __kernel void k(__global int* o) { o[0] = N; }
        """
        out, _ = run(src, {"o": np.zeros(1, np.int32)}, ["o"], backend)
        assert out["o"][0] == 18

    def test_machine_materializes_global_arrays(self):
        program = compile_source(
            "__constant int W[4] = {1, 2, 3, 4};\nvoid unused() { }"
        )
        machine = Machine(program)
        ref = machine.globals["W"]
        assert [ref.pointer.load(i) for i in range(4)] == [1, 2, 3, 4]

    def test_negative_initializer_elements(self, backend):
        src = """
        __constant int W[2] = {-7, 3};
        __kernel void k(__global int* o) { o[0] = W[0] + W[1]; }
        """
        out, _ = run(src, {"o": np.zeros(1, np.int32)}, ["o"], backend)
        assert out["o"][0] == -4


class TestFaults:
    def test_uninitialized_pointer_faults(self, backend):
        src = """__kernel void k(__global int* o) {
            __global int* p;
            o[0] = p[0];
        }"""
        with pytest.raises(KernelFault):
            run(src, {"o": np.zeros(1, np.int32)}, ["o"], backend)

    def test_helper_without_return_faults(self, backend):
        src = """
        int helper(int x) { if (x > 0) return x; }
        __kernel void k(__global int* o) { o[0] = helper(-1); }
        """
        with pytest.raises(KernelFault):
            run(src, {"o": np.zeros(1, np.int32)}, ["o"], backend)

    def test_trap_builtin_faults(self, backend):
        src = "__kernel void k(__global int* o) { __scl_trap(3); o[0] = 1; }"
        with pytest.raises(KernelFault) as excinfo:
            run(src, {"o": np.zeros(1, np.int32)}, ["o"], backend)
        assert "code 3" in str(excinfo.value)

    def test_too_many_array_initializers_fault(self, backend):
        # Parse-time size vs initializer mismatch is a checker error;
        # this exercises the checker, not the runtime.
        from repro.kernelc.diagnostics import CompileError

        with pytest.raises(CompileError):
            compile_source("void f() { int a[2] = {1, 2, 3}; }")


class TestSwitchDefaults:
    def test_default_in_middle_falls_through(self, backend):
        src = """__kernel void k(__global int* o, int x) {
            int r = 0;
            switch (x) {
                case 1: r += 1; break;
                default: r += 10;
                case 2: r += 2; break;
                case 3: r += 3;
            }
            o[0] = r;
        }"""
        cases = {1: 1, 2: 2, 3: 3, 9: 12}  # default falls into case 2
        for x, expected in cases.items():
            out, _ = run(src, {"o": np.zeros(1, np.int32)}, ["o", x], backend)
            assert out["o"][0] == expected, x


class TestVectorDetails:
    def test_vector_param_value_semantics(self, backend):
        src = """
        float mangle(float2 v) { v.x = 99.0f; return v.x; }
        __kernel void k(__global float* o) {
            float2 original = (float2)(1.0f, 2.0f);
            float inside = mangle(original);
            o[0] = original.x;
            o[1] = inside;
        }"""
        out, _ = run(src, {"o": np.zeros(2, np.float32)}, ["o"], backend)
        assert list(out["o"]) == [1.0, 99.0]

    def test_component_store_through_memory(self, backend):
        src = """__kernel void k(__global float4* v) {
            v[0].y = 42.0f;
        }"""
        arrays = {"v": np.array([1, 2, 3, 4], np.float32)}
        out, _ = run(src, arrays, ["v"], backend)
        assert list(out["v"]) == [1.0, 42.0, 3.0, 4.0]

    def test_swizzle_store_through_memory(self, backend):
        src = """__kernel void k(__global float4* v) {
            v[0].xw = (float2)(9.0f, 8.0f);
        }"""
        arrays = {"v": np.array([1, 2, 3, 4], np.float32)}
        out, _ = run(src, arrays, ["v"], backend)
        assert list(out["v"]) == [9.0, 2.0, 3.0, 8.0]


class TestLocalMemoryMetadata:
    def test_local_memory_bytes(self):
        program = compile_source("""
        __kernel void k(__global int* o) {
            __local float tile[16][18];
            __local int flags[32];
            tile[0][0] = 0.0f;
            flags[0] = 0;
            barrier(CLK_LOCAL_MEM_FENCE);
            o[0] = flags[0];
        }""")
        assert local_memory_bytes(program.function("k")) == 16 * 18 * 4 + 32 * 4
