"""Differential proof obligation for the vectorized backend.

Every test here runs the same compiled kernel through
``ocl.executor.execute_ndrange`` twice — once per backend (``interp`` =
per-work-item, ``vector`` = lockstep numpy) — and asserts **bit-exact**
output buffers plus **equal** ``ExecutionCounters`` on every field (ops,
warp_ops, barriers, and all memory-traffic counters).  Hypothesis
generates kernels over multiple dtypes, control flow shapes, local
memory and barrier phasing; a fixed seed corpus replays every kernel
string shipped in ``examples/`` and ``src/repro/baselines/``.

The generators deliberately stay inside defined behaviour (no signed
overflow feeding magnitude-sensitive ops, no data races, no barriers
under lane-divergent control flow): outside it, C imposes no agreement
obligation and the backends intentionally document their divergences
(see ``docs/kernelc.md``).  Faults are part of the contract too: when
one backend raises, the other must raise as well.
"""

import glob
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernelc import ExecutionCounters, compile_source
from repro.kernelc.__main__ import _extract_kernel_strings
from repro.kernelc.compiler import compile_program
from repro.kernelc.ctypes_ import ctype_from_numpy
from repro.kernelc.execmodel import convert_value
from repro.kernelc.memory import KernelFault, Pointer
from repro.kernelc import vectorize
from repro.ocl.executor import execute_ndrange
from repro.ocl.ndrange import NDRange

_REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

# Exceptions that count as a kernel fault for agreement purposes: the
# two backends may detect a multi-fault run at different lanes, so only
# the *fact* of faulting must agree, not the message.
_FAULTS = (KernelFault, ValueError, OverflowError)


def _run_one(compiled, arrays, scalars, global_size, local_size, backend):
    counters = ExecutionCounters()
    pointers = {}
    for name, array in arrays.items():
        flat = np.ascontiguousarray(array).reshape(-1).copy()
        pointers[name] = Pointer(flat, ctype_from_numpy(flat.dtype), "global", 0,
                                 counters.memory)
    args = [pointers[a] if isinstance(a, str) else a for a in scalars]
    args = [
        convert_value(value, param.declared_type)
        for value, param in zip(args, compiled.definition.params)
    ]
    ndrange = NDRange.create(global_size, local_size)
    try:
        execute_ndrange(compiled, ndrange, args, counters=counters, backend=backend)
    except _FAULTS as exc:
        return ("fault", type(exc).__name__), None, None
    buffers = {name: pointer.array for name, pointer in pointers.items()}
    return "ok", buffers, counters


def assert_backends_agree(source, kernel_name, arrays, scalars, global_size,
                          local_size=None, require_vectorizable=True):
    """The core oracle: run both backends, demand bit-exact agreement."""
    program = compile_source(source)
    compiled = compile_program(program).kernel(kernel_name)
    if require_vectorizable:
        assert vectorize.plan_for(compiled) is not None, (
            f"kernel unexpectedly fell back: {vectorize.reject_reason(compiled)}"
        )
    i_status, i_bufs, i_cnt = _run_one(compiled, arrays, scalars, global_size,
                                       local_size, "interp")
    v_status, v_bufs, v_cnt = _run_one(compiled, arrays, scalars, global_size,
                                       local_size, "vector")
    if i_status != "ok" or v_status != "ok":
        assert i_status != "ok" and v_status != "ok", (
            f"fault disagreement: interp={i_status} vector={v_status}"
        )
        return None
    for name in arrays:
        assert i_bufs[name].tobytes() == v_bufs[name].tobytes(), (
            f"buffer {name!r} differs:\ninterp: {i_bufs[name]!r}\n"
            f"vector: {v_bufs[name]!r}"
        )
    assert i_cnt.ops == v_cnt.ops, f"ops: interp={i_cnt.ops} vector={v_cnt.ops}"
    assert i_cnt.warp_ops == v_cnt.warp_ops, (
        f"warp_ops: interp={i_cnt.warp_ops} vector={v_cnt.warp_ops}"
    )
    assert i_cnt.barriers == v_cnt.barriers
    assert i_cnt.memory == v_cnt.memory, (
        f"memory: interp={i_cnt.memory} vector={v_cnt.memory}"
    )
    return i_bufs


# ---------------------------------------------------------------------------
# Generated kernels: integer dtypes and control flow.
# ---------------------------------------------------------------------------

_INT_TYPES = [
    ("char", np.int8), ("uchar", np.uint8), ("short", np.int16),
    ("ushort", np.uint16), ("int", np.int32), ("uint", np.uint32),
    ("long", np.int64), ("ulong", np.uint64),
]
_FLOAT_TYPES = [("float", np.float32), ("double", np.float64)]

_LAUNCHES = [((32,), (8,)), ((32,), (32,)), ((64,), (16,)),
             ((48,), (4,)), ((16, 4), (4, 2)), ((8, 8), (8, 4))]


def _int_exprs(depth):
    leaves = st.sampled_from(["x", "y", "s1", "(gid % 13)", "3", "7", "(-2)", "1", "0"])
    if depth == 0:
        return leaves
    sub = _int_exprs(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(st.sampled_from(["+", "-", "*", "&", "|", "^"]), sub, sub).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"
        ),
        sub.map(lambda e: f"(~{e})"),
        sub.map(lambda e: f"(-{e})"),
        # Division/remainder with nonzero literal divisors only.
        st.tuples(sub, st.sampled_from(["3", "7", "5"])).map(
            lambda t: f"({t[0]} / {t[1]})"
        ),
        st.tuples(sub, st.sampled_from(["3", "9"])).map(lambda t: f"({t[0]} % {t[1]})"),
        # Shifts bounded so signed intermediates never exceed 64 bits.
        st.tuples(sub, st.integers(0, 3)).map(lambda t: f"(({t[0]} & 15) << {t[1]})"),
        st.tuples(sub, st.integers(0, 5)).map(lambda t: f"({t[0]} >> {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"(min({t[0]}, {t[1]}))"),
        st.tuples(sub, sub).map(lambda t: f"(max({t[0]}, {t[1]}))"),
    )


_CONDS = st.sampled_from([
    "x > y", "x < 3", "gid % 2 == 0", "x == y", "y != 0", "x >= s1",
    "(x & 1) == (y & 1)", "gid < 7", "x * y < 10",
])


@st.composite
def _int_kernels(draw):
    cname, dtype = draw(st.sampled_from(_INT_TYPES))
    (global_size, local_size) = draw(st.sampled_from(_LAUNCHES))
    n = int(np.prod(global_size))
    stmts = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["assign", "if", "for", "while", "ternary",
                                     "private", "do"]))
        if kind == "assign":
            stmts.append(f"acc = acc + ({draw(_int_exprs(2))});")
        elif kind == "if":
            cond = draw(_CONDS)
            then = draw(_int_exprs(2))
            if draw(st.booleans()):
                stmts.append(f"if ({cond}) {{ acc = acc ^ ({then}); }} "
                             f"else {{ acc = acc - ({draw(_int_exprs(1))}); }}")
            else:
                stmts.append(f"if ({cond}) {{ acc = acc + ({then}); }}")
        elif kind == "for":
            bound = draw(st.integers(1, 6))
            body = draw(_int_exprs(1))
            extra = draw(st.sampled_from([
                "", "if (i == 2) continue; ", "if (acc > 90) break; ",
            ]))
            stmts.append(f"for (int i = 0; i < {bound}; ++i) {{ {extra}"
                         f"acc = acc + ({body}) + i; }}")
        elif kind == "while":
            bound = draw(st.integers(1, 5))
            stmts.append(f"{{ int w = 0; while (w < {bound}) {{ "
                         f"acc = acc ^ (w + ({draw(_int_exprs(1))})); ++w; }} }}")
        elif kind == "do":
            bound = draw(st.integers(1, 4))
            stmts.append(f"{{ int w = 0; do {{ acc = acc + w; ++w; }} "
                         f"while (w < {bound}); }}")
        elif kind == "ternary":
            stmts.append(f"acc = ({draw(_CONDS)}) ? ({draw(_int_exprs(1))}) "
                         f": (acc + 1);")
        else:  # private array
            stmts.append(
                "{ int tmp[4]; tmp[gid % 4] = (int)x; "
                "acc = acc + tmp[(gid + 1) % 4] + tmp[gid % 4]; }"
            )
    body = "\n    ".join(stmts)
    source = f"""
    __kernel void k(__global {cname}* out, __global const {cname}* in,
                    {cname} s1, int n) {{
        int gid = get_global_id(0) + get_global_id(1) * get_global_size(0);
        {cname} x = in[gid];
        {cname} y = in[(gid * 7 + 3) % n];
        {cname} acc = x;
        {body}
        out[gid] = acc;
    }}
    """
    rng = np.random.RandomState(draw(st.integers(0, 2**31 - 1)))
    arrays = {
        "out": np.zeros(n, dtype),
        "in": rng.randint(-9, 10, size=n).astype(dtype),
    }
    s1 = int(rng.randint(-5, 6))
    return source, arrays, ["out", "in", s1, n], global_size, local_size


class TestGeneratedIntKernels:
    @given(case=_int_kernels())
    @settings(max_examples=150, deadline=None)
    def test_bitexact_with_equal_counters(self, case):
        source, arrays, scalars, global_size, local_size = case
        assert_backends_agree(source, "k", arrays, scalars, global_size, local_size)


# ---------------------------------------------------------------------------
# Generated kernels: float dtypes and builtins.
# ---------------------------------------------------------------------------


def _float_exprs(depth):
    leaves = st.sampled_from(["x", "y", "s1", "0.5f", "2.0f", "(-1.25f)",
                              "(float)gid", "0.0f"])
    if depth == 0:
        return leaves
    sub = _float_exprs(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(st.sampled_from(["+", "-", "*", "/"]), sub, sub).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"
        ),
        sub.map(lambda e: f"sqrt(fabs({e}))"),
        sub.map(lambda e: f"(-{e})"),
        st.tuples(sub, sub).map(lambda t: f"fmin({t[0]}, {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"fmax({t[0]}, {t[1]})"),
        st.tuples(sub, sub, sub).map(lambda t: f"fma({t[0]}, {t[1]}, {t[2]})"),
        st.tuples(sub, sub).map(lambda t: f"copysign({t[0]}, {t[1]})"),
        sub.map(lambda e: f"floor({e})"),
        sub.map(lambda e: f"exp({e} * 0.125f)"),
        sub.map(lambda e: f"clamp({e}, -8.0f, 8.0f)"),
        st.tuples(sub, sub).map(lambda t: f"step({t[0]}, {t[1]})"),
    )


_FCONDS = st.sampled_from([
    "x > y", "x < 0.5f", "gid % 3 == 1", "fabs(x) > fabs(y)", "isnan(x / y)",
    "x * y >= 0.0f",
])


@st.composite
def _float_kernels(draw):
    cname, dtype = draw(st.sampled_from(_FLOAT_TYPES))
    (global_size, local_size) = draw(st.sampled_from(_LAUNCHES))
    n = int(np.prod(global_size))
    stmts = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["assign", "if", "for", "cast", "ternary"]))
        if kind == "assign":
            stmts.append(f"acc = acc + ({draw(_float_exprs(2))});")
        elif kind == "if":
            stmts.append(f"if ({draw(_FCONDS)}) {{ acc = acc * 0.5f + "
                         f"({draw(_float_exprs(1))}); }} else {{ acc = -acc; }}")
        elif kind == "for":
            bound = draw(st.integers(1, 5))
            stmts.append(f"for (int i = 0; i < {bound}; ++i) "
                         f"{{ acc = acc * 0.75f + ({draw(_float_exprs(1))}); }}")
        elif kind == "cast":
            # NaN/inf-free by construction: the clamp bounds the value.
            stmts.append(f"{{ int c = (int)clamp({draw(_float_exprs(1))}, "
                         f"-100.0f, 100.0f); acc = acc + (float)c; }}")
        else:
            stmts.append(f"acc = ({draw(_FCONDS)}) ? ({draw(_float_exprs(1))}) "
                         f": (acc - 1.0f);")
    body = "\n    ".join(stmts)
    source = f"""
    __kernel void k(__global {cname}* out, __global const {cname}* in,
                    {cname} s1, int n) {{
        int gid = get_global_id(0) + get_global_id(1) * get_global_size(0);
        {cname} x = in[gid];
        {cname} y = in[(gid * 5 + 1) % n];
        {cname} acc = x;
        {body}
        out[gid] = acc;
    }}
    """
    rng = np.random.RandomState(draw(st.integers(0, 2**31 - 1)))
    arrays = {
        "out": np.zeros(n, dtype),
        "in": (rng.uniform(-4, 4, size=n)).astype(dtype),
    }
    s1 = float(np.float32(rng.uniform(-2, 2)))
    return source, arrays, ["out", "in", s1, n], global_size, local_size


class TestGeneratedFloatKernels:
    @given(case=_float_kernels())
    @settings(max_examples=150, deadline=None)
    def test_bitexact_with_equal_counters(self, case):
        source, arrays, scalars, global_size, local_size = case
        assert_backends_agree(source, "k", arrays, scalars, global_size, local_size)


# ---------------------------------------------------------------------------
# Generated kernels: local memory and barrier phases.
# ---------------------------------------------------------------------------


@st.composite
def _barrier_kernels(draw):
    wg = draw(st.sampled_from([4, 8, 16, 32]))
    groups = draw(st.integers(1, 3))
    phases = draw(st.integers(1, 4))
    stride = draw(st.integers(1, 3))
    op = draw(st.sampled_from(["+", "^", "-"]))
    writers = draw(st.sampled_from(["lid % 2 == 0", "lid < {half}", "1"]))
    writers = writers.format(half=wg // 2)
    n = wg * groups
    # Race-free by construction: every phase reads any slot, then a
    # barrier, then each lane writes at most its own slot, then another
    # barrier — so no two lanes ever write one slot, and every
    # read/write pair is barrier-ordered.
    source = f"""
    __kernel void k(__global const int* in, __global int* out) {{
        __local int buf[{wg}];
        int lid = get_local_id(0);
        int gid = get_global_id(0);
        buf[lid] = in[gid];
        barrier(CLK_LOCAL_MEM_FENCE);
        int acc = 0;
        for (int p = 0; p < {phases}; ++p) {{
            int t = buf[(lid + p * {stride}) % {wg}];
            acc = acc {op} (t + p);
            barrier(CLK_LOCAL_MEM_FENCE);
            if ({writers}) {{ buf[lid] = acc; }}
            barrier(CLK_LOCAL_MEM_FENCE);
        }}
        out[gid] = acc + buf[({wg} - 1) - lid];
    }}
    """
    rng = np.random.RandomState(draw(st.integers(0, 2**31 - 1)))
    arrays = {
        "in": rng.randint(-50, 50, size=n).astype(np.int32),
        "out": np.zeros(n, np.int32),
    }
    return source, arrays, ["in", "out"], (n,), (wg,)


class TestGeneratedBarrierKernels:
    @given(case=_barrier_kernels())
    @settings(max_examples=80, deadline=None)
    def test_bitexact_with_equal_counters(self, case):
        source, arrays, scalars, global_size, local_size = case
        assert_backends_agree(source, "k", arrays, scalars, global_size, local_size)


# ---------------------------------------------------------------------------
# Generated kernels: gather patterns, mixed dtypes, helper functions.
# ---------------------------------------------------------------------------


@st.composite
def _gather_kernels(draw):
    src_t, src_dtype = draw(st.sampled_from(_INT_TYPES[2:] + _FLOAT_TYPES))
    dst_t, dst_dtype = draw(st.sampled_from(_INT_TYPES[2:] + _FLOAT_TYPES))
    (global_size, local_size) = draw(st.sampled_from(_LAUNCHES[:4]))
    n = int(np.prod(global_size))
    a, b = draw(st.integers(1, 9)), draw(st.integers(0, 9))
    use_helper = draw(st.booleans())
    helper = f"""
    {dst_t} combine({src_t} u, {src_t} v) {{
        if (u > v) {{ return ({dst_t})(u); }}
        return ({dst_t})(v) + ({dst_t})1;
    }}
    """ if use_helper else ""
    combine = ("combine(x, y)" if use_helper
               else f"({dst_t})(x) + ({dst_t})(y)")
    source = f"""
    {helper}
    __kernel void k(__global {dst_t}* out, __global const {src_t}* in, int n) {{
        int gid = get_global_id(0);
        {src_t} x = in[(gid * {a} + {b}) % n];
        {src_t} y = in[(n - 1) - gid];
        out[gid] = {combine};
    }}
    """
    rng = np.random.RandomState(draw(st.integers(0, 2**31 - 1)))
    if np.issubdtype(src_dtype, np.floating):
        data = rng.uniform(-9, 9, size=n).astype(src_dtype)
    else:
        data = rng.randint(0, 50, size=n).astype(src_dtype)
    arrays = {"out": np.zeros(n, dst_dtype), "in": data}
    return source, arrays, ["out", "in", n], global_size, local_size


class TestGeneratedGatherKernels:
    @given(case=_gather_kernels())
    @settings(max_examples=120, deadline=None)
    def test_bitexact_with_equal_counters(self, case):
        source, arrays, scalars, global_size, local_size = case
        assert_backends_agree(source, "k", arrays, scalars, global_size, local_size)


# ---------------------------------------------------------------------------
# Seed corpus: every kernel string shipped in examples/ and baselines/.
# ---------------------------------------------------------------------------


def _corpus_cases():
    cases = []
    for pattern in ("examples/*.py", "src/repro/baselines/*.py"):
        for path in sorted(glob.glob(os.path.join(_REPO_ROOT, pattern))):
            for lineno, source in _extract_kernel_strings(path):
                label = f"{os.path.basename(path)}:{lineno}"
                cases.append(pytest.param(source, id=label))
    assert cases, "seed corpus is empty — extraction broke"
    return cases


# Launch configurations for the shipped kernels, keyed by kernel name.
# Unknown (future) kernels get the generic fallback configuration; a
# fault under it still exercises fault agreement.
_CORPUS_CONFIGS = {
    "dot_product": dict(global_size=(512,), local_size=(256,),
                        buffers={"a": 512, "b": 512, "partial": 2}, scalar_int=512),
    "sobel_kernel": dict(global_size=(32, 32), local_size=(16, 16),
                         buffers={"input_image": 1024, "output_image": 1024,
                                  "img": 1024, "out_img": 1024},
                         scalar_int=32),
    "sobel_tiled": dict(global_size=(32, 32), local_size=(16, 16),
                        buffers={"img": 1024, "out_img": 1024}, scalar_int=32),
    "mandelbrot": dict(global_size=(16, 16), local_size=(8, 8),
                       buffers={"out": 256}, scalar_int=16, scalar_float=0.125),
}
_GENERIC_CONFIG = dict(global_size=(8, 8), local_size=(4, 4), buffers={},
                       scalar_int=8, scalar_float=0.25)


def _synthesize_args(definition, config):
    """Deterministic buffers/scalars matching the kernel's parameters."""
    from repro.kernelc.ctypes_ import PointerType, numpy_dtype

    rng = np.random.RandomState(1234)
    arrays = {}
    scalars = []
    default_len = 4 * int(np.prod(config["global_size"]))
    for param in definition.params:
        ctype = param.declared_type
        if isinstance(ctype, PointerType):
            length = config["buffers"].get(param.name, default_len)
            dtype = numpy_dtype(ctype.pointee)
            if np.issubdtype(dtype, np.floating):
                data = rng.uniform(-2, 2, size=length).astype(dtype)
            else:
                data = rng.randint(0, 100, size=length).astype(dtype)
            arrays[param.name] = data
            scalars.append(param.name)
        elif ctype.is_float():
            scalars.append(config.get("scalar_float", 0.25))
        else:
            scalars.append(config.get("scalar_int", 8))
    return arrays, scalars


class TestSeedCorpus:
    @pytest.mark.parametrize("source", _corpus_cases())
    def test_shipped_kernels_bitexact(self, source):
        program = compile_source(source)
        for definition in program.kernels():
            config = _CORPUS_CONFIGS.get(definition.name, _GENERIC_CONFIG)
            arrays, scalars = _synthesize_args(definition, config)
            # The corpus is about agreement, not vectorizability: a
            # kernel the classifier rejects still runs both legs (the
            # vector leg falls back) and must agree.
            assert_backends_agree(
                source, definition.name, arrays, scalars,
                config["global_size"], config["local_size"],
                require_vectorizable=False,
            )

    def test_corpus_kernels_vectorize(self):
        """Every shipped kernel actually takes the vectorized path."""
        for param in _corpus_cases():
            source = param.values[0]
            program = compile_source(source)
            compiled_program = compile_program(program)
            for definition in program.kernels():
                compiled = compiled_program.kernel(definition.name)
                assert vectorize.plan_for(compiled) is not None, (
                    f"{definition.name}: {vectorize.reject_reason(compiled)}"
                )


# ---------------------------------------------------------------------------
# Fault agreement and fallback behaviour.
# ---------------------------------------------------------------------------


class TestFaultAgreement:
    def test_out_of_bounds_faults_on_both(self):
        source = """__kernel void k(__global int* out, int n) {
            out[get_global_id(0) + n] = 1;
        }"""
        arrays = {"out": np.zeros(8, np.int32)}
        result = assert_backends_agree(source, "k", arrays, ["out", 1000], (8,), (8,))
        assert result is None  # both legs faulted

    def test_division_by_zero_faults_on_both(self):
        source = """__kernel void k(__global int* out, __global const int* in) {
            int gid = get_global_id(0);
            out[gid] = 100 / in[gid];
        }"""
        arrays = {"out": np.zeros(4, np.int32),
                  "in": np.array([1, 2, 0, 4], np.int32)}
        result = assert_backends_agree(source, "k", arrays, ["out", "in"], (4,), (4,))
        assert result is None

    def test_barrier_divergence_faults_on_both(self):
        source = """__kernel void k(__global int* out) {
            int lid = get_local_id(0);
            if (lid < 2) { barrier(CLK_LOCAL_MEM_FENCE); }
            out[get_global_id(0)] = lid;
        }"""
        arrays = {"out": np.zeros(8, np.int32)}
        result = assert_backends_agree(source, "k", arrays, ["out"], (8,), (4,))
        assert result is None


class TestFallback:
    def test_switch_kernel_vectorizes_and_agrees(self):
        # switch used to be a fallback condition; it is now lowered to
        # masked case dispatch (see tests/kernelc/test_vectorize_switch.py
        # for the full differential coverage).
        source = """__kernel void k(__global int* out, __global const int* in) {
            int gid = get_global_id(0);
            int r;
            switch (in[gid] % 3) {
                case 0: r = 10; break;
                case 1: r = 20; break;
                default: r = 30; break;
            }
            out[gid] = r;
        }"""
        program = compile_source(source)
        compiled = compile_program(program).kernel("k")
        assert vectorize.reject_reason(compiled) is None
        arrays = {"out": np.zeros(16, np.int32),
                  "in": np.arange(16, dtype=np.int32)}
        bufs = assert_backends_agree(source, "k", arrays, ["out", "in"], (16,), (8,))
        expected = np.array([10, 20, 30] * 6, np.int32)[:16]
        np.testing.assert_array_equal(bufs["out"], expected)

    def test_vector_type_kernel_falls_back(self):
        source = """__kernel void k(__global float4* out) {
            out[get_global_id(0)] = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
        }"""
        program = compile_source(source)
        compiled = compile_program(program).kernel("k")
        assert vectorize.plan_for(compiled) is None


class TestRegressions:
    def test_store_whose_index_shares_a_load_with_the_value(self):
        # The compiled backend CSEs the two b[0] loads; the shared temp
        # must be defined by the *first* executing side (the lvalue).
        source = """__kernel void k(__global int* a, __global const int* b) {
            a[b[0]] = b[0] + 1;
        }"""
        arrays = {"a": np.zeros(8, np.int32), "b": np.array([3], np.int32)}
        bufs = assert_backends_agree(source, "k", arrays, ["a", "b"], (1,), (1,))
        assert bufs["a"][3] == 4

    def test_compound_assignment_through_gather(self):
        source = """__kernel void k(__global int* out, __global const int* idx) {
            int gid = get_global_id(0);
            out[idx[gid]] += gid * 10;
            out[idx[gid]] <<= 1;
        }"""
        # idx is a permutation: no two lanes write one slot.
        arrays = {"out": np.arange(8, dtype=np.int32),
                  "idx": np.array([3, 1, 7, 0, 6, 2, 5, 4], np.int32)}
        assert_backends_agree(source, "k", arrays, ["out", "idx"], (8,), (4,))

    def test_constant_global_array(self):
        source = """
        __constant int weights[4] = {1, -2, 3, -4};
        __kernel void k(__global int* out, __global const int* in) {
            int gid = get_global_id(0);
            int acc = 0;
            for (int i = 0; i < 4; ++i) { acc += in[(gid + i) % 8] * weights[i]; }
            out[gid] = acc;
        }"""
        arrays = {"out": np.zeros(8, np.int32),
                  "in": np.arange(8, dtype=np.int32)}
        assert_backends_agree(source, "k", arrays, ["out", "in"], (8,), (8,))

    def test_multidimensional_private_and_local_arrays(self):
        source = """__kernel void k(__global const int* in, __global int* out) {
            __local int tile[4][4];
            int lid = get_local_id(0);
            int gid = get_global_id(0);
            int priv[2][2];
            priv[lid % 2][(lid + 1) % 2] = in[gid];
            tile[lid / 4][lid % 4] = in[gid] * 2;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[gid] = tile[(lid + 5) / 4 % 4][(lid + 5) % 4]
                     + priv[lid % 2][(lid + 1) % 2] + priv[0][0];
        }"""
        arrays = {"in": np.arange(16, dtype=np.int32), "out": np.zeros(16, np.int32)}
        assert_backends_agree(source, "k", arrays, ["in", "out"], (16,), (16,))

    def test_pointer_arithmetic_and_comparison(self):
        source = """__kernel void k(__global int* out, __global int* in) {
            int gid = get_global_id(0);
            __global int* p = in + gid;
            __global int* q = in + 4;
            int same = (p == q) ? 100 : 1;
            out[gid] = *p + same + (int)(p - in);
        }"""
        arrays = {"out": np.zeros(8, np.int32),
                  "in": np.arange(8, dtype=np.int32) * 3}
        assert_backends_agree(source, "k", arrays, ["out", "in"], (8,), (4,))

    def test_unsigned_long_wraparound_and_division(self):
        source = """__kernel void k(__global ulong* out, __global const ulong* in) {
            int gid = get_global_id(0);
            ulong x = in[gid];
            ulong big = x * 0x123456789UL + 0xFFFFFFFFFFFFFFF0UL;
            out[gid] = big / 7 + (big % 13) + (big >> 3) + (ulong)(big > x);
        }"""
        arrays = {"out": np.zeros(8, np.uint64),
                  "in": (np.arange(8, dtype=np.uint64) * 0x1000000007)}
        assert_backends_agree(source, "k", arrays, ["out", "in"], (8,), (8,))
