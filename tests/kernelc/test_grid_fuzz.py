"""Whole-grid differential fuzzing: multi-work-item kernels with
gid-dependent control flow and memory writes, compared across backends
and against a Python oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from .helpers import run_both


class TestGridKernels:
    @given(
        n=st.sampled_from([8, 16, 32]),
        local=st.sampled_from([4, 8]),
        a=st.integers(-5, 5),
        b=st.integers(-5, 5),
        threshold=st.integers(0, 31),
    )
    @settings(max_examples=30, deadline=None)
    def test_branchy_elementwise(self, n, local, a, b, threshold):
        src = f"""__kernel void k(__global const int* in, __global int* out, int n) {{
            int gid = get_global_id(0);
            if (gid >= n) return;
            int x = in[gid];
            int y;
            if (gid < {threshold}) {{
                y = x * {a};
            }} else {{
                y = x + {b};
            }}
            out[gid] = y;
        }}"""
        data = np.arange(n, dtype=np.int32) - n // 2
        arrays = {"in": data, "out": np.zeros(n, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["in", "out", n], n, local)
        np.testing.assert_array_equal(c_res["out"], i_res["out"])
        expected = np.where(np.arange(n) < threshold, data * a, data + b)
        np.testing.assert_array_equal(c_res["out"], expected)

    @given(
        n=st.sampled_from([8, 16]),
        shift=st.integers(1, 7),
    )
    @settings(max_examples=20, deadline=None)
    def test_neighbour_reads(self, n, shift):
        # Each item reads a shifted neighbour (mod n) — no data races,
        # all reads from the input buffer.
        src = f"""__kernel void k(__global const int* in, __global int* out, int n) {{
            int gid = get_global_id(0);
            if (gid < n) {{
                out[gid] = in[(gid + {shift}) % n] - in[gid];
            }}
        }}"""
        data = (np.arange(n, dtype=np.int32) ** 2) % 17
        arrays = {"in": data, "out": np.zeros(n, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["in", "out", n], n, min(n, 8))
        np.testing.assert_array_equal(c_res["out"], i_res["out"])
        expected = np.roll(data, -shift) - data
        np.testing.assert_array_equal(c_res["out"], expected)

    @given(values=st.lists(st.integers(0, 50), min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_group_histogram_via_local_memory(self, values):
        # Each group builds a 4-bin histogram of its 8 items in local
        # memory using one writer lane per bin (race-free by construction).
        src = """__kernel void k(__global const int* in, __global int* out) {
            __local int bins[4];
            int lid = get_local_id(0);
            if (lid < 4) { bins[lid] = 0; }
            barrier(CLK_LOCAL_MEM_FENCE);
            if (lid < 4) {
                int count = 0;
                for (int i = 0; i < 8; ++i) {
                    int value = in[get_group_id(0) * 8 + i];
                    if (value % 4 == lid) { ++count; }
                }
                bins[lid] = count;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            if (lid < 4) {
                out[get_group_id(0) * 4 + lid] = bins[lid];
            }
        }"""
        data = np.array(values, np.int32)
        arrays = {"in": data, "out": np.zeros(8, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["in", "out"], 16, 8)
        np.testing.assert_array_equal(c_res["out"], i_res["out"])
        for group in range(2):
            chunk = data[group * 8 : group * 8 + 8]
            for bin_index in range(4):
                assert c_res["out"][group * 4 + bin_index] == np.count_nonzero(chunk % 4 == bin_index)

    @given(
        rounds=st.integers(1, 4),
        seedval=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_iterated_local_shuffle(self, rounds, seedval):
        # Repeated barrier phases: rotate values through local memory.
        src = f"""__kernel void k(__global const int* in, __global int* out) {{
            __local int buf[8];
            int lid = get_local_id(0);
            buf[lid] = in[lid];
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int r = 0; r < {rounds}; ++r) {{
                int next = buf[(lid + 1) % 8];
                barrier(CLK_LOCAL_MEM_FENCE);
                buf[lid] = next;
                barrier(CLK_LOCAL_MEM_FENCE);
            }}
            out[lid] = buf[lid];
        }}"""
        rng = np.random.RandomState(seedval)
        data = rng.randint(-100, 100, 8).astype(np.int32)
        arrays = {"in": data, "out": np.zeros(8, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["in", "out"], 8, 8)
        np.testing.assert_array_equal(c_res["out"], i_res["out"])
        np.testing.assert_array_equal(c_res["out"], np.roll(data, -rounds))
