"""Lexer unit tests."""

import pytest

from repro.kernelc.diagnostics import CompileError
from repro.kernelc.lexer import tokenize
from repro.kernelc.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("my_var123")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "my_var123"

    def test_keywords_are_not_identifiers(self):
        (tok,) = tokenize("while")[:-1]
        assert tok.kind is TokenKind.KEYWORD

    def test_address_space_keywords(self):
        assert kinds("__global __local __constant __private") == [TokenKind.KEYWORD] * 4

    def test_unprefixed_address_space_keywords(self):
        assert kinds("global local constant") == [TokenKind.KEYWORD] * 3

    def test_vector_type_name_lexes_as_identifier(self):
        (tok,) = tokenize("float4")[:-1]
        assert tok.kind is TokenKind.IDENT

    def test_whitespace_and_newlines_skipped(self):
        assert texts("a \t\n b\r\n c") == ["a", "b", "c"]


class TestNumbers:
    def test_decimal_int(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind is TokenKind.INT_LITERAL
        assert tok.value == 42

    def test_hex_int(self):
        (tok,) = tokenize("0xFF")[:-1]
        assert tok.value == 255

    def test_octal_int(self):
        (tok,) = tokenize("0755")[:-1]
        assert tok.value == 0o755

    def test_zero_is_not_octal_error(self):
        (tok,) = tokenize("0")[:-1]
        assert tok.value == 0

    def test_unsigned_suffix(self):
        (tok,) = tokenize("42u")[:-1]
        assert tok.suffix == "u"
        assert tok.value == 42

    def test_long_suffixes(self):
        (tok,) = tokenize("42UL")[:-1]
        assert tok.suffix == "ul"

    def test_simple_float(self):
        (tok,) = tokenize("3.25")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 3.25

    def test_float_f_suffix(self):
        (tok,) = tokenize("1.5f")[:-1]
        assert tok.suffix == "f"

    def test_float_exponent(self):
        (tok,) = tokenize("1e3")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 1000.0

    def test_float_negative_exponent(self):
        (tok,) = tokenize("2.5e-2")[:-1]
        assert tok.value == pytest.approx(0.025)

    def test_leading_dot_float(self):
        (tok,) = tokenize(".5")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 0.5

    def test_int_then_member_not_float(self):
        # `4.x` would be nonsense; but `a.x` after int: "4 . x"? We only
        # check that `1..2` doesn't crash the float path via '..'.
        toks = texts("a.x")
        assert toks == ["a", ".", "x"]

    def test_hex_without_digits_is_error(self):
        with pytest.raises(CompileError):
            tokenize("0x")


class TestCharAndString:
    def test_char_literal(self):
        (tok,) = tokenize("'A'")[:-1]
        assert tok.kind is TokenKind.CHAR_LITERAL
        assert tok.value == 65

    def test_char_escape(self):
        (tok,) = tokenize(r"'\n'")[:-1]
        assert tok.value == 10

    def test_hex_escape(self):
        (tok,) = tokenize(r"'\x41'")[:-1]
        assert tok.value == 0x41

    def test_unterminated_char_is_error(self):
        with pytest.raises(CompileError):
            tokenize("'a")

    def test_string_literal(self):
        (tok,) = tokenize('"hello"')[:-1]
        assert tok.kind is TokenKind.STRING_LITERAL
        assert tok.value == "hello"

    def test_string_with_escapes(self):
        (tok,) = tokenize(r'"a\tb"')[:-1]
        assert tok.value == "a\tb"

    def test_unterminated_string_is_error(self):
        with pytest.raises(CompileError):
            tokenize('"abc')


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_is_error(self):
        with pytest.raises(CompileError):
            tokenize("a /* never ends")

    def test_comment_containing_string_quote(self):
        assert texts("a // it's fine\nb") == ["a", "b"]


class TestPunctuators:
    def test_maximal_munch_shift_assign(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]

    def test_maximal_munch_increment(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_arrow_and_minus(self):
        assert texts("a->b - c") == ["a", "->", "b", "-", "c"]

    def test_all_compound_assignments(self):
        ops = ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]
        for op in ops:
            assert texts(f"a {op} b")[1] == op

    def test_comparison_operators(self):
        assert texts("a <= b >= c == d != e") == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]

    def test_unknown_character_is_error(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")


class TestSpans:
    def test_token_spans_point_into_source(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].span.start.column == 1
        assert tokens[1].span.start.column == 4
        assert tokens[2].span.start.column == 6

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.span.start.line for t in tokens[:-1]] == [1, 2, 3]

    def test_true_false_become_int_literals(self):
        toks = tokenize("true false")[:-1]
        assert [t.value for t in toks] == [1, 0]
        assert all(t.kind is TokenKind.INT_LITERAL for t in toks)
