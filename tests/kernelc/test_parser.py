"""Parser unit tests: AST shape and error recovery."""

import pytest

from repro.kernelc import ast
from repro.kernelc.ctypes_ import ArrayType, FLOAT, INT, PointerType, UINT, VectorType
from repro.kernelc.diagnostics import CompileError
from repro.kernelc.parser import parse


def first_fn(source: str) -> ast.FunctionDef:
    return parse(source).functions[0]


def body_stmts(source: str):
    return first_fn(source).body.statements


class TestFunctions:
    def test_simple_function(self):
        fn = first_fn("int f(int x) { return x; }")
        assert fn.name == "f"
        assert fn.return_type == INT
        assert len(fn.params) == 1
        assert fn.params[0].name == "x"
        assert not fn.is_kernel

    def test_kernel_qualifier(self):
        fn = first_fn("__kernel void k() { }")
        assert fn.is_kernel
        assert fn.return_type.is_void()

    def test_unprefixed_kernel_qualifier(self):
        assert first_fn("kernel void k() { }").is_kernel

    def test_void_parameter_list(self):
        fn = first_fn("int f(void) { return 1; }")
        assert fn.params == []

    def test_global_pointer_param(self):
        fn = first_fn("void f(__global const float* p) { }")
        ctype = fn.params[0].declared_type
        assert isinstance(ctype, PointerType)
        assert ctype.pointee == FLOAT
        assert ctype.address_space == "global"
        assert ctype.is_const

    def test_unsigned_int_spelling(self):
        fn = first_fn("void f(unsigned int n) { }")
        assert fn.params[0].declared_type == UINT

    def test_plain_unsigned_is_uint(self):
        fn = first_fn("void f(unsigned n) { }")
        assert fn.params[0].declared_type == UINT

    def test_vector_type_param(self):
        fn = first_fn("void f(float4 v) { }")
        assert fn.params[0].declared_type == VectorType(FLOAT, 4)

    def test_array_param_decays_to_pointer(self):
        fn = first_fn("void f(float a[10]) { }")
        assert isinstance(fn.params[0].declared_type, PointerType)

    def test_prototype_collected_separately(self):
        program = parse("int f(int x);\nint f(int x) { return x; }")
        assert len(program.functions) == 1
        assert len(program.prototypes) == 1

    def test_multiple_functions(self):
        program = parse("int f() { return 1; } int g() { return f(); }")
        assert [fn.name for fn in program.functions] == ["f", "g"]

    def test_attribute_parsed_and_recorded(self):
        fn = first_fn('__kernel __attribute__((reqd_work_group_size(16, 16, 1))) void k() { }')
        assert fn.is_kernel
        assert fn.attributes

    def test_constant_global_declaration(self):
        program = parse("__constant float PI = 3.14f;\nvoid f() { }")
        assert len(program.globals) == 1
        assert program.globals[0].decl.name == "PI"

    def test_constant_global_array(self):
        program = parse("__constant int W[3] = {1, 2, 3};\nvoid f() { }")
        decl = program.globals[0].decl
        assert isinstance(decl.declared_type, ArrayType)
        assert decl.declared_type.length == 3

    def test_file_scope_non_constant_rejected(self):
        with pytest.raises(CompileError):
            parse("float x = 1.0f;")

    def test_struct_rejected(self):
        with pytest.raises(CompileError):
            parse("struct S { int x; };")


class TestStatements:
    def test_declaration_with_init(self):
        (stmt,) = body_stmts("void f() { int x = 3; }")
        assert isinstance(stmt, ast.DeclStmt)
        assert stmt.decls[0].name == "x"
        assert isinstance(stmt.decls[0].init, ast.IntLiteral)

    def test_multi_declarator(self):
        (stmt,) = body_stmts("void f() { int x = 1, y = 2, z; }")
        assert [d.name for d in stmt.decls] == ["x", "y", "z"]
        assert stmt.decls[2].init is None

    def test_pointer_and_value_in_one_declaration(self):
        (stmt,) = body_stmts("void f(__global int* q) { int *p = q, n = 0; }")
        assert isinstance(stmt.decls[0].declared_type, PointerType)
        assert stmt.decls[1].declared_type == INT

    def test_local_array_declaration(self):
        src = "__kernel void k() { __local float tile[16][17]; }"
        (stmt,) = body_stmts(src)
        decl = stmt.decls[0]
        assert decl.address_space == "local"
        outer = decl.declared_type
        assert isinstance(outer, ArrayType) and outer.length == 16
        assert isinstance(outer.element, ArrayType) and outer.element.length == 17

    def test_array_size_constant_folded(self):
        (stmt,) = body_stmts("void f() { int a[4 * 4 + 2]; }")
        assert stmt.decls[0].declared_type.length == 18

    def test_array_size_must_be_constant(self):
        with pytest.raises(CompileError):
            parse("void f(int n) { int a[n]; }")

    def test_if_else(self):
        (stmt,) = body_stmts("void f(int x) { if (x) x = 1; else x = 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_branch is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = body_stmts("void f(int x) { if (x) if (x > 1) x = 1; else x = 2; }")
        assert stmt.else_branch is None
        assert isinstance(stmt.then_branch, ast.IfStmt)
        assert stmt.then_branch.else_branch is not None

    def test_for_loop_parts(self):
        (stmt,) = body_stmts("void f() { for (int i = 0; i < 10; ++i) { } }")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.DeclStmt)
        assert stmt.condition is not None
        assert stmt.increment is not None

    def test_for_loop_empty_parts(self):
        (stmt,) = body_stmts("void f() { for (;;) break; }")
        assert stmt.init is None and stmt.condition is None and stmt.increment is None

    def test_while(self):
        (stmt,) = body_stmts("void f(int x) { while (x) --x; }")
        assert isinstance(stmt, ast.WhileStmt)

    def test_do_while(self):
        (stmt,) = body_stmts("void f(int x) { do { --x; } while (x); }")
        assert isinstance(stmt, ast.DoStmt)

    def test_switch_cases(self):
        src = "void f(int x) { switch (x) { case 1: x = 2; break; default: x = 0; } }"
        (stmt,) = body_stmts(src)
        assert isinstance(stmt, ast.SwitchStmt)
        assert len(stmt.cases) == 2
        assert stmt.cases[1].value is None

    def test_empty_statement(self):
        (stmt,) = body_stmts("void f() { ; }")
        assert isinstance(stmt, ast.ExprStmt) and stmt.expr is None

    def test_goto_rejected(self):
        with pytest.raises(CompileError):
            parse("void f() { goto end; }")


class TestExpressions:
    def expr(self, text, params="int x, int y, float f"):
        (stmt,) = body_stmts(f"void fn({params}) {{ {text}; }}")
        return stmt.expr

    def test_precedence_mul_over_add(self):
        e = self.expr("x = 1 + 2 * 3")
        assert isinstance(e.value, ast.BinaryOp)
        assert e.value.op == "+"
        assert e.value.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self.expr("x = 1 << 2 < 3")
        # '<' binds looser than '<<'
        assert e.value.op == "<"
        assert e.value.left.op == "<<"

    def test_logical_precedence(self):
        e = self.expr("x = 1 || 2 && 3")
        assert e.value.op == "||"
        assert e.value.right.op == "&&"

    def test_right_associative_assignment(self):
        e = self.expr("x = y = 3")
        assert isinstance(e.value, ast.Assignment)

    def test_ternary(self):
        e = self.expr("x = x ? 1 : 2")
        assert isinstance(e.value, ast.Conditional)

    def test_nested_ternary_right_assoc(self):
        e = self.expr("x = x ? 1 : y ? 2 : 3")
        assert isinstance(e.value.else_expr, ast.Conditional)

    def test_unary_chain(self):
        e = self.expr("x = -~!x")
        assert e.value.op == "-"
        assert e.value.operand.op == "~"
        assert e.value.operand.operand.op == "!"

    def test_prefix_and_postfix_incdec(self):
        pre = self.expr("++x")
        post = self.expr("x++")
        assert isinstance(pre, ast.UnaryOp)
        assert isinstance(post, ast.PostfixOp)

    def test_cast_vs_paren(self):
        cast = self.expr("f = (float)x")
        paren = self.expr("x = (y)")
        assert isinstance(cast, ast.Assignment) and isinstance(cast.value, ast.Cast)
        assert isinstance(paren.value, ast.Identifier)

    def test_vector_literal(self):
        (stmt,) = body_stmts("void fn() { float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f); }")
        init = stmt.decls[0].init
        assert isinstance(init, ast.VectorLiteral)
        assert len(init.elements) == 4

    def test_member_swizzle(self):
        (stmt,) = body_stmts("void fn(float4 v) { float2 w = v.xy; }")
        assert isinstance(stmt.decls[0].init, ast.Member)
        assert stmt.decls[0].init.member == "xy"

    def test_index_chain(self):
        e = self.expr("x = y", params="int x, int y")
        (stmt,) = body_stmts("void fn(__global int* p) { int v = p[1 + 2]; }")
        assert isinstance(stmt.decls[0].init, ast.Index)

    def test_call_with_args(self):
        program = parse("int g(int a, int b) { return a; } void f() { g(1, 2); }")
        call = program.functions[1].body.statements[0].expr
        assert isinstance(call, ast.Call)
        assert call.callee == "g" and len(call.args) == 2

    def test_sizeof_type_and_expr(self):
        (s1,) = body_stmts("void fn() { int a = sizeof(float); }")
        (s2,) = body_stmts("void fn(int x) { int a = sizeof x; }")
        assert isinstance(s1.decls[0].init, ast.SizeofExpr)
        assert s1.decls[0].init.queried_type == FLOAT
        assert s2.decls[0].init.operand is not None

    def test_comma_expression(self):
        (stmt,) = body_stmts("void fn(int x) { for (x = 0; x < 4; x = x + 1, x = x + 1) { } }")
        assert isinstance(stmt.increment, ast.CommaExpr)

    def test_arrow_rejected(self):
        with pytest.raises(CompileError):
            parse("void f(__global int* p) { p->x = 1; }")

    def test_missing_semicolon_is_error(self):
        with pytest.raises(CompileError):
            parse("void f() { int x = 1 }")

    def test_unbalanced_paren_is_error(self):
        with pytest.raises(CompileError):
            parse("void f() { int x = (1 + 2; }")


class TestWalkers:
    def test_walk_covers_all_nodes(self):
        program = parse("int f(int x) { for (int i = 0; i < x; ++i) x += i; return x; }")
        nodes = list(ast.walk(program))
        kinds = {type(n).__name__ for n in nodes}
        assert "ForStmt" in kinds and "Assignment" in kinds and "ReturnStmt" in kinds

    def test_program_function_lookup(self):
        program = parse("int f() { return 1; }")
        assert program.function("f").name == "f"
        with pytest.raises(KeyError):
            program.function("missing")
