"""Property-based differential testing: the compiling backend must agree
with the reference interpreter on randomly generated programs, and both
must agree with numpy on vectorizable arithmetic.

Programs are generated as source strings: random integer expression
trees (division-safe), random float expressions (compared with
tolerance, since the compiled backend evaluates float32 chains in double
precision by design), and random loop bounds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from .helpers import run_both, run_kernel

# -- expression generators ----------------------------------------------------

_INT_LEAVES = st.sampled_from(["x", "y", "2", "3", "7", "(-5)", "1"])
_INT_OPS = st.sampled_from(["+", "-", "*", "&", "|", "^"])


def int_expr(depth: int = 3):
    if depth == 0:
        return _INT_LEAVES
    return st.one_of(
        _INT_LEAVES,
        st.tuples(_INT_OPS, int_expr(depth - 1), int_expr(depth - 1)).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"
        ),
        int_expr(depth - 1).map(lambda e: f"(- {e})"),
        int_expr(depth - 1).map(lambda e: f"(~{e})"),
        # Division guarded against zero and INT_MIN/-1 by construction.
        st.tuples(int_expr(depth - 1), st.sampled_from(["3", "7", "-2"])).map(
            lambda t: f"({t[0]} / {t[1]})"
        ),
        st.tuples(int_expr(depth - 1), st.sampled_from(["3", "5"])).map(
            lambda t: f"({t[0]} % {t[1]})"
        ),
    )


_FLOAT_LEAVES = st.sampled_from(["x", "y", "2.0f", "0.5f", "1.25f", "-3.0f"])
_FLOAT_OPS = st.sampled_from(["+", "-", "*"])


def float_expr(depth: int = 3):
    if depth == 0:
        return _FLOAT_LEAVES
    return st.one_of(
        _FLOAT_LEAVES,
        st.tuples(_FLOAT_OPS, float_expr(depth - 1), float_expr(depth - 1)).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"
        ),
        float_expr(depth - 1).map(lambda e: f"fabs({e})"),
        float_expr(depth - 1).map(lambda e: f"fmin({e}, 8.0f)"),
        float_expr(depth - 1).map(lambda e: f"fmax({e}, -8.0f)"),
    )


class TestIntegerExpressions:
    @given(expr=int_expr(), x=st.integers(-50, 50), y=st.integers(-50, 50))
    @settings(max_examples=60, deadline=None)
    def test_backends_agree(self, expr, x, y):
        src = f"""__kernel void k(__global long* o, int x, int y) {{
            o[0] = (long)({expr});
        }}"""
        arrays = {"o": np.zeros(1, np.int64)}
        (c_res, c_cnt), (i_res, i_cnt) = run_both(src, "k", arrays, ["o", x, y], 1)
        assert c_res["o"][0] == i_res["o"][0]
        # Memory traffic must match exactly between backends.
        assert c_cnt.memory.global_stores == i_cnt.memory.global_stores

    @given(expr=int_expr(depth=2), x=st.integers(-10, 10), y=st.integers(-10, 10))
    @settings(max_examples=30, deadline=None)
    def test_matches_python_semantics(self, expr, x, y):
        src = f"""__kernel void k(__global long* o, int x, int y) {{
            o[0] = (long)({expr});
        }}"""
        arrays = {"o": np.zeros(1, np.int64)}
        result, _ = run_kernel(src, "k", arrays, ["o", x, y], 1)

        import re

        literal_wrapped = re.sub(r"(?<![\w.])(\d+)", r"_C(\1)", expr)
        env = {"x": _C(x), "y": _C(y), "_C": _C}
        value = eval(literal_wrapped, {"_C": _C}, env)  # noqa: S307 - test oracle
        value = value.v if isinstance(value, _C) else value
        wrapped = ((value + 2**63) % 2**64) - 2**63  # wrap to int64
        assert result["o"][0] == wrapped


class _C:
    """Oracle integer with C semantics (truncating / and %)."""

    def __init__(self, v):
        self.v = v.v if isinstance(v, _C) else int(v)

    @staticmethod
    def _of(x):
        return x.v if isinstance(x, _C) else int(x)

    def __add__(self, o):
        return _C(self.v + self._of(o))

    __radd__ = __add__

    def __sub__(self, o):
        return _C(self.v - self._of(o))

    def __rsub__(self, o):
        return _C(self._of(o) - self.v)

    def __mul__(self, o):
        return _C(self.v * self._of(o))

    __rmul__ = __mul__

    def __and__(self, o):
        return _C(self.v & self._of(o))

    __rand__ = __and__

    def __or__(self, o):
        return _C(self.v | self._of(o))

    __ror__ = __or__

    def __xor__(self, o):
        return _C(self.v ^ self._of(o))

    __rxor__ = __xor__

    def __neg__(self):
        return _C(-self.v)

    def __invert__(self):
        return _C(~self.v)

    def _cdiv(self, a, b):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q

    def __truediv__(self, o):
        return _C(self._cdiv(self.v, self._of(o)))

    def __rtruediv__(self, o):
        return _C(self._cdiv(self._of(o), self.v))

    def __mod__(self, o):
        b = self._of(o)
        return _C(self.v - self._cdiv(self.v, b) * b)

    def __rmod__(self, o):
        a = self._of(o)
        return _C(a - self._cdiv(a, self.v) * self.v)


class TestFloatExpressions:
    @given(expr=float_expr(), x=st.floats(-4, 4, width=32), y=st.floats(-4, 4, width=32))
    @settings(max_examples=60, deadline=None)
    def test_backends_agree_with_tolerance(self, expr, x, y):
        src = f"""__kernel void k(__global float* o, float x, float y) {{
            o[0] = {expr};
        }}"""
        arrays = {"o": np.zeros(1, np.float32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["o", float(x), float(y)], 1)
        np.testing.assert_allclose(c_res["o"], i_res["o"], rtol=1e-5, atol=1e-5)


class TestLoops:
    @given(
        n=st.integers(0, 30),
        step=st.integers(1, 4),
        limit=st.integers(0, 25),
    )
    @settings(max_examples=40, deadline=None)
    def test_loop_with_break_agrees(self, n, step, limit):
        src = """__kernel void k(__global int* o, int n, int step, int limit) {
            int s = 0;
            for (int i = 0; i < n; i += step) {
                if (i > limit) break;
                if (i % 3 == 0) continue;
                s += i;
            }
            o[0] = s;
        }"""
        arrays = {"o": np.zeros(1, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["o", n, step, limit], 1)
        assert c_res["o"][0] == i_res["o"][0]
        # numpy oracle
        expected = sum(
            i for i in range(0, n, step) if i <= limit and i % 3 != 0
        )
        assert c_res["o"][0] == expected

    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_accumulation_kernel_agrees_with_numpy(self, values):
        src = """__kernel void k(__global const int* in, __global int* o, int n) {
            int best = in[0];
            for (int i = 1; i < n; ++i) {
                if (in[i] > best) best = in[i];
            }
            o[0] = best;
        }"""
        arrays = {"in": np.array(values, np.int32), "o": np.zeros(1, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["in", "o", len(values)], 1)
        assert c_res["o"][0] == i_res["o"][0] == max(values)


class TestMemoryCountersAgreement:
    @given(n=st.integers(1, 16), local=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_elementwise_traffic_identical(self, n, local):
        if n % local != 0:
            n = (n // local + 1) * local
        src = """__kernel void k(__global const float* a, __global float* o, int n) {
            int gid = get_global_id(0);
            if (gid < n) { o[gid] = a[gid] * 2.0f + 1.0f; }
        }"""
        arrays = {"a": np.ones(n, np.float32), "o": np.zeros(n, np.float32)}
        (c_res, c_cnt), (i_res, i_cnt) = run_both(src, "k", arrays, ["a", "o", n], n, local)
        assert c_cnt.memory.global_loads == i_cnt.memory.global_loads == n
        assert c_cnt.memory.global_stores == i_cnt.memory.global_stores == n
        assert c_cnt.memory.global_bytes == i_cnt.memory.global_bytes
        np.testing.assert_array_equal(c_res["o"], i_res["o"])


class TestBarrierPrograms:
    @given(values=st.lists(st.integers(-50, 50), min_size=8, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_local_scan_agrees(self, values):
        src = """__kernel void k(__global const int* in, __global int* out) {
            __local int buf[8];
            int lid = get_local_id(0);
            buf[lid] = in[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int d = 1; d < 8; d *= 2) {
                int t = buf[lid];
                if (lid >= d) { t = buf[lid - d] + t; }
                barrier(CLK_LOCAL_MEM_FENCE);
                buf[lid] = t;
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            out[get_global_id(0)] = buf[lid];
        }"""
        arrays = {"in": np.array(values, np.int32), "out": np.zeros(8, np.int32)}
        (c_res, c_cnt), (i_res, i_cnt) = run_both(src, "k", arrays, ["in", "out"], 8, 8)
        np.testing.assert_array_equal(c_res["out"], i_res["out"])
        np.testing.assert_array_equal(c_res["out"], np.cumsum(values))
        assert c_cnt.barriers == i_cnt.barriers


# -- three-way agreement: compiler, interpreter, and vectorizer ---------------
#
# ``run_kernel``'s "compiler" and "interp" paths drive work-items
# directly (no executor warp loop), so warp_ops is compared end-to-end
# in test_vectorize_differential.py instead; here the three backends
# must agree on buffers, scalar ops, barriers, and memory traffic.

_ALL_BACKENDS = ("compiler", "interp", "vector")


def run_three(source, kernel_name, arrays, args, global_size, local_size=None):
    """Run all three backends on fresh copies; returns {backend: (bufs, cnt)}."""
    return {
        backend: run_kernel(
            source, kernel_name, {k: v.copy() for k, v in arrays.items()},
            args, global_size, local_size, backend=backend,
        )
        for backend in _ALL_BACKENDS
    }


def assert_three_way(source, kernel_name, arrays, args, global_size, local_size=None):
    """Three-way agreement with the two distinct contracts.

    vector ↔ compiler: bit-exact buffers and equal ops/barriers/memory
    (the vectorizer replays the compiler's charges and its relaxed
    double-precision float evaluation exactly).

    interp ↔ compiler: the looser pre-existing contract — the
    interpreter evaluates float32 strictly per-op (so float buffers
    compare with tolerance) and charges ops dynamically (so only
    memory traffic and barriers must match, not ops).
    """
    results = run_three(source, kernel_name, arrays, args, global_size, local_size)
    ref_bufs, ref_cnt = results["compiler"]

    v_bufs, v_cnt = results["vector"]
    for name in arrays:
        assert v_bufs[name].tobytes() == ref_bufs[name].tobytes(), (
            f"vector buffer {name!r} differs from compiler:\n"
            f"compiler: {ref_bufs[name]!r}\nvector: {v_bufs[name]!r}"
        )
    assert v_cnt.ops == ref_cnt.ops, f"vector ops {v_cnt.ops} != {ref_cnt.ops}"
    assert v_cnt.barriers == ref_cnt.barriers
    assert v_cnt.memory == ref_cnt.memory, (
        f"vector memory {v_cnt.memory} != {ref_cnt.memory}"
    )

    i_bufs, i_cnt = results["interp"]
    for name in arrays:
        if np.issubdtype(ref_bufs[name].dtype, np.floating):
            np.testing.assert_allclose(i_bufs[name], ref_bufs[name],
                                       rtol=1e-5, atol=1e-6)
        else:
            assert i_bufs[name].tobytes() == ref_bufs[name].tobytes(), (
                f"interp buffer {name!r} differs from compiler:\n"
                f"compiler: {ref_bufs[name]!r}\ninterp: {i_bufs[name]!r}"
            )
    assert i_cnt.barriers == ref_cnt.barriers
    assert i_cnt.memory == ref_cnt.memory, (
        f"interp memory {i_cnt.memory} != {ref_cnt.memory}"
    )
    return ref_bufs


_THREEWAY_DTYPES = st.sampled_from([
    ("char", np.int8), ("uchar", np.uint8), ("short", np.int16),
    ("ushort", np.uint16), ("int", np.int32), ("uint", np.uint32),
    ("long", np.int64), ("ulong", np.uint64),
    ("float", np.float32), ("double", np.float64),
])


class TestThreeWayDtypes:
    @given(dtype=_THREEWAY_DTYPES, seed=st.integers(0, 2**31 - 1),
           scale=st.integers(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_elementwise_over_every_dtype(self, dtype, seed, scale):
        cname, np_dtype = dtype
        rng = np.random.RandomState(seed)
        n = 16
        if np.issubdtype(np_dtype, np.floating):
            data = rng.uniform(-8, 8, size=n).astype(np_dtype)
            expr = f"x * ({scale}.0f / 2.0f) + y"
        else:
            data = rng.randint(0, 40, size=n).astype(np_dtype)
            expr = f"x * {scale} + (y >> 1)"
        src = f"""__kernel void k(__global {cname}* out,
                                  __global const {cname}* in, int n) {{
            int gid = get_global_id(0);
            {cname} x = in[gid];
            {cname} y = in[(gid + 3) % n];
            out[gid] = ({cname})({expr});
        }}"""
        arrays = {"out": np.zeros(n, np_dtype), "in": data}
        assert_three_way(src, "k", arrays, ["out", "in", n], n, 8)


class TestThreeWayControlFlow:
    @given(expr=int_expr(2), cond=st.sampled_from(
               ["x > y", "gid % 2 == 0", "x < 0", "(x ^ y) > 5"]),
           bound=st.integers(1, 5), x=st.integers(-20, 20),
           y=st.integers(-20, 20))
    @settings(max_examples=60, deadline=None)
    def test_divergent_branch_and_loop(self, expr, cond, bound, x, y):
        src = f"""__kernel void k(__global long* out, int x, int y) {{
            int gid = get_global_id(0);
            long acc = x + gid;
            if ({cond}) {{
                for (int i = 0; i < {bound}; ++i) {{ acc += (long)({expr}) + i; }}
            }} else {{
                acc = acc * 3 - y;
            }}
            out[gid] = acc;
        }}"""
        arrays = {"out": np.zeros(8, np.int64)}
        assert_three_way(src, "k", arrays, ["out", x, y], 8, 4)


class TestThreeWayLocalMemory:
    @given(values=st.lists(st.integers(-30, 30), min_size=16, max_size=16),
           rot=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_rotated_tile_exchange(self, values, rot):
        src = f"""__kernel void k(__global const int* in, __global int* out) {{
            __local int tile[8];
            int lid = get_local_id(0);
            int gid = get_global_id(0);
            tile[lid] = in[gid] * 2;
            barrier(CLK_LOCAL_MEM_FENCE);
            int partner = (lid + {rot}) % 8;
            out[gid] = tile[partner] - in[gid];
        }}"""
        arrays = {"in": np.array(values, np.int32), "out": np.zeros(16, np.int32)}
        bufs = assert_three_way(src, "k", arrays, ["in", "out"], 16, 8)
        a = np.array(values, np.int32)
        expected = np.empty(16, np.int32)
        for g in range(2):
            for lid in range(8):
                gid = g * 8 + lid
                expected[gid] = a[g * 8 + (lid + rot) % 8] * 2 - a[gid]
        np.testing.assert_array_equal(bufs["out"], expected)
