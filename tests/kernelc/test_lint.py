"""Kernel-source lint rules (``repro.kernelc.lint``).

Each rule gets a crafted negative that must fire and a near-miss that
must stay silent; the shipped skeleton/baseline kernels are checked to
lint clean elsewhere (the CI sanitize job and tests/skelcl).
"""

import pytest

from repro.kernelc import compile_source, lint_program
from repro.kernelc.diagnostics import Severity


def lint(source):
    return lint_program(compile_source(source))


def messages(source):
    return [d.message for d in lint(source)]


def tagged(source, tag):
    return [d for d in lint(source) if tag in d.message]


class TestBarrierDivergence:
    def test_barrier_under_global_id_condition_fires(self):
        found = tagged(
            """
            __kernel void k(__global float* a, __local float* t) {
                if (get_global_id(0) < 4) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[0] = t[0];
            }""",
            "[barrier-divergence]",
        )
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_taint_flows_through_locals(self):
        assert tagged(
            """
            __kernel void k(__global float* a, __local float* t) {
                int g = (int)get_global_id(0);
                int h = g * 2;
                while (h > 0) { barrier(CLK_LOCAL_MEM_FENCE); h = h - 1; }
                a[0] = t[0];
            }""",
            "[barrier-divergence]",
        )

    def test_uniform_condition_is_silent(self):
        assert not tagged(
            """
            __kernel void k(__global float* a, __local float* t) {
                for (int i = 0; i < (int)get_global_size(0); ++i) {
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (get_group_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[get_global_id(0)] = t[0];
            }""",
            "[barrier-divergence]",
        )

    def test_top_level_barrier_is_silent(self):
        assert not tagged(
            """
            __kernel void k(__global float* a, __local float* t) {
                t[get_local_id(0)] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = t[0];
            }""",
            "[barrier-divergence]",
        )


class TestConstantIndexOob:
    def test_definite_oob_is_an_error(self):
        found = tagged(
            """
            __kernel void k(__global float* out) {
                float w[4];
                w[0] = 1.0f; w[1] = 2.0f; w[2] = 3.0f; w[3] = 4.0f;
                out[get_global_id(0)] = w[7];
            }""",
            "[constant-index-oob]",
        )
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "length 4" in found[0].message

    def test_negative_index_is_an_error(self):
        assert tagged(
            """
            __kernel void k(__global float* out) {
                float w[4];
                w[-1] = 0.0f;
                out[0] = w[0];
            }""",
            "[constant-index-oob]",
        )

    def test_in_bounds_loop_is_silent(self):
        assert not tagged(
            """
            __kernel void k(__global float* out) {
                float w[4];
                float s = 0.0f;
                for (int i = 0; i < 4; ++i) { w[i] = (float)i; }
                for (int i = 0; i < 4; ++i) { s = s + w[i]; }
                out[0] = s;
            }""",
            "[constant-index-oob]",
        )

    def test_unknown_index_is_silent(self):
        # Possibly-OOB is not definitely-OOB: the rule only reports
        # accesses that are wrong on every execution.
        assert not tagged(
            """
            __kernel void k(__global float* out, int i) {
                float w[4];
                w[0] = 1.0f;
                out[0] = w[i];
            }""",
            "[constant-index-oob]",
        )


class TestUnusedBinding:
    def test_unused_parameter_and_local_warn(self):
        found = tagged(
            """
            float helper(float x, float spare) {
                float dead;
                return x;
            }
            __kernel void k(__global float* a) { a[0] = helper(a[0], 2.0f); }
            """,
            "[unused-binding]",
        )
        assert sorted("spare" in d.message or "dead" in d.message for d in found) == [True, True]

    def test_used_bindings_are_silent(self):
        assert not tagged(
            """
            __kernel void k(__global float* a, int n) {
                int gid = get_global_id(0);
                if (gid < n) { a[gid] = a[gid] + 1.0f; }
            }""",
            "[unused-binding]",
        )


class TestWriteToConstant:
    def test_store_through_constant_pointer_is_an_error(self):
        found = tagged(
            """
            __kernel void k(__constant float* c, __global float* a) {
                c[0] = 1.0f;
                a[0] = c[1];
            }""",
            "[write-to-constant]",
        )
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_reads_from_constant_are_silent(self):
        assert not tagged(
            """
            __kernel void k(__constant float* c, __global float* a) {
                a[get_global_id(0)] = c[0] + c[1];
            }""",
            "[write-to-constant]",
        )


class TestMissingReturn:
    def test_fallthrough_branch_warns(self):
        found = tagged(
            """
            float f(float x) {
                if (x > 0.0f) { return x; }
            }
            __kernel void k(__global float* a) { a[0] = f(a[0]); }
            """,
            "[missing-return]",
        )
        assert len(found) == 1
        assert "f()" in found[0].message

    def test_both_branches_returning_is_silent(self):
        assert not tagged(
            """
            float f(float x) {
                if (x > 0.0f) { return x; } else { return -x; }
            }
            __kernel void k(__global float* a) { a[0] = f(a[0]); }
            """,
            "[missing-return]",
        )

    def test_void_and_kernel_functions_exempt(self):
        assert not tagged(
            """
            void side(__global float* a) { a[0] = 1.0f; }
            __kernel void k(__global float* a) {
                if (get_global_id(0) == 0) { side(a); }
            }""",
            "[missing-return]",
        )


class TestIntegration:
    def test_clean_kernel_has_no_findings(self):
        assert messages(
            """
            __kernel void scale(__global const float* a, __global float* out, int n) {
                int gid = get_global_id(0);
                if (gid < n) { out[gid] = 2.0f * a[gid]; }
            }"""
        ) == []

    def test_program_build_collects_lint(self):
        from repro import ocl

        program = ocl.Program(
            """
            float f(float x) {
                if (x > 0.0f) { return x; }
            }
            __kernel void k(__global float* a) { a[0] = f(a[0]); }
            """,
        ).build()
        assert any("[missing-return]" in d.message for d in program.lint_diagnostics)
        assert "missing-return" in program.build_log

    def test_strict_mode_promotes_lint_errors_to_build_failure(self, monkeypatch):
        from repro import ocl

        monkeypatch.setenv("SKELCL_SANITIZE", "strict")
        ocl.clear_build_cache()
        with pytest.raises(ocl.BuildError, match="write-to-constant"):
            ocl.Program(
                """
                __kernel void k(__constant float* c, __global float* a) {
                    c[0] = 1.0f;
                    a[0] = c[0];
                }"""
            ).build()
        ocl.clear_build_cache()

    def test_lint_warnings_do_not_fail_strict_builds(self, monkeypatch):
        from repro import ocl

        monkeypatch.setenv("SKELCL_SANITIZE", "strict")
        ocl.clear_build_cache()
        program = ocl.Program(
            """
            __kernel void k(__global float* a, int unused) {
                a[0] = 1.0f;
            }"""
        ).build()
        assert any("[unused-binding]" in d.message for d in program.lint_diagnostics)
        ocl.clear_build_cache()

    def test_shipped_baseline_kernels_lint_clean(self):
        from repro.baselines import dotproduct_cl, mandelbrot_cl

        for module in (dotproduct_cl, mandelbrot_cl):
            for value in vars(module).values():
                if isinstance(value, str) and "__kernel" in value and "{" in value:
                    assert lint(value) == [], f"lint findings in {module.__name__}"
