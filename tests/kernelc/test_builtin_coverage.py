"""Systematic builtin-function coverage: every supported math/common/
integer builtin executed on both backends against a Python oracle."""

import math

import numpy as np
import pytest

from .helpers import run_kernel

BACKENDS = ["compiler", "interp"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def eval_float(expr: str, backend: str, x: float = 0.0, y: float = 0.0) -> float:
    src = f"""__kernel void k(__global float* o, float x, float y) {{
        o[0] = {expr};
    }}"""
    out, _ = run_kernel(src, "k", {"o": np.zeros(1, np.float32)}, ["o", x, y], 1,
                        backend=backend)
    return float(out["o"][0])


def eval_int(expr: str, backend: str, x: int = 0, y: int = 0) -> int:
    src = f"""__kernel void k(__global long* o, int x, int y) {{
        o[0] = (long)({expr});
    }}"""
    out, _ = run_kernel(src, "k", {"o": np.zeros(1, np.int64)}, ["o", x, y], 1,
                        backend=backend)
    return int(out["o"][0])


FLOAT_UNARY_CASES = [
    ("sqrt(x)", 6.25, math.sqrt(6.25)),
    ("rsqrt(x)", 4.0, 0.5),
    ("cbrt(x)", 27.0, 3.0),
    ("sin(x)", 0.5, math.sin(0.5)),
    ("cos(x)", 0.5, math.cos(0.5)),
    ("tan(x)", 0.4, math.tan(0.4)),
    ("asin(x)", 0.3, math.asin(0.3)),
    ("acos(x)", 0.3, math.acos(0.3)),
    ("atan(x)", 1.5, math.atan(1.5)),
    ("sinh(x)", 0.7, math.sinh(0.7)),
    ("cosh(x)", 0.7, math.cosh(0.7)),
    ("tanh(x)", 0.7, math.tanh(0.7)),
    ("exp(x)", 1.2, math.exp(1.2)),
    ("exp2(x)", 3.0, 8.0),
    ("exp10(x)", 2.0, 100.0),
    ("log(x)", 5.0, math.log(5.0)),
    ("log2(x)", 8.0, 3.0),
    ("log10(x)", 1000.0, 3.0),
    ("fabs(x)", -2.5, 2.5),
    ("floor(x)", 2.7, 2.0),
    ("floor(x)", -2.7, -3.0),
    ("ceil(x)", 2.2, 3.0),
    ("trunc(x)", -2.7, -2.0),
    ("round(x)", 2.5, 3.0),
    ("round(x)", -2.5, -3.0),
    ("rint(x)", 2.5, 2.0),  # round half to even
    ("rint(x)", 3.5, 4.0),
    ("degrees(x)", math.pi, 180.0),
    ("radians(x)", 180.0, math.pi),
    ("erf(x)", 0.5, math.erf(0.5)),
    ("tgamma(x)", 5.0, 24.0),
    ("fract(x)", 2.25, 0.25),
    ("sign(x)", -3.0, -1.0),
    ("sign(x)", 0.0, 0.0),
]


class TestFloatUnary:
    @pytest.mark.parametrize("expr,x,expected", FLOAT_UNARY_CASES)
    def test_builtin(self, backend, expr, x, expected):
        assert eval_float(expr, backend, x=x) == pytest.approx(expected, rel=1e-5, abs=1e-6)

    def test_native_and_half_prefixes(self, backend):
        for prefix in ("native_", "half_"):
            assert eval_float(f"{prefix}sqrt(x)", backend, x=9.0) == pytest.approx(3.0)


FLOAT_BINARY_CASES = [
    ("pow(x, y)", 2.0, 10.0, 1024.0),
    ("fmod(x, y)", 7.5, 2.0, 1.5),
    ("fmod(x, y)", -7.5, 2.0, -1.5),
    ("fmin(x, y)", 3.0, -1.0, -1.0),
    ("fmax(x, y)", 3.0, -1.0, 3.0),
    ("atan2(x, y)", 1.0, 1.0, math.pi / 4),
    ("hypot(x, y)", 3.0, 4.0, 5.0),
    ("copysign(x, y)", 3.0, -0.5, -3.0),
    ("fdim(x, y)", 5.0, 3.0, 2.0),
    ("fdim(x, y)", 3.0, 5.0, 0.0),
    ("step(x, y)", 2.0, 1.0, 0.0),
    ("step(x, y)", 2.0, 3.0, 1.0),
    ("ldexp(x, (int)y)", 1.5, 3.0, 12.0),
    ("pown(x, (int)y)", 2.0, 5.0, 32.0),
    ("maxmag(x, y)", -5.0, 3.0, -5.0),
    ("minmag(x, y)", -5.0, 3.0, 3.0),
]


class TestFloatBinary:
    @pytest.mark.parametrize("expr,x,y,expected", FLOAT_BINARY_CASES)
    def test_builtin(self, backend, expr, x, y, expected):
        assert eval_float(expr, backend, x=x, y=y) == pytest.approx(expected, rel=1e-5, abs=1e-6)

    def test_fmin_fmax_nan_handling(self, backend):
        # fmin/fmax return the non-NaN operand.
        assert eval_float("fmin(x / y, 2.0f)", backend, x=0.0, y=0.0) == 2.0
        assert eval_float("fmax(x / y, 2.0f)", backend, x=0.0, y=0.0) == 2.0


class TestFloatTernary:
    def test_fma_and_mad(self, backend):
        assert eval_float("fma(x, y, 1.0f)", backend, x=3.0, y=4.0) == 13.0
        assert eval_float("mad(x, y, 1.0f)", backend, x=3.0, y=4.0) == 13.0

    def test_mix(self, backend):
        assert eval_float("mix(x, y, 0.25f)", backend, x=0.0, y=8.0) == 2.0

    def test_smoothstep(self, backend):
        assert eval_float("smoothstep(x, y, 0.5f)", backend, x=0.0, y=1.0) == 0.5
        assert eval_float("smoothstep(x, y, -1.0f)", backend, x=0.0, y=1.0) == 0.0
        assert eval_float("smoothstep(x, y, 2.0f)", backend, x=0.0, y=1.0) == 1.0

    def test_clamp_float(self, backend):
        assert eval_float("clamp(x, 0.0f, 1.0f)", backend, x=1.7) == 1.0
        assert eval_float("clamp(x, 0.0f, 1.0f)", backend, x=-0.5) == 0.0


INT_CASES = [
    ("abs(x)", -7, 0, 7),
    ("abs_diff(x, y)", 3, 10, 7),
    ("min(x, y)", 3, -4, -4),
    ("max(x, y)", 3, -4, 3),
    ("clamp(x, 0, 10)", 42, 0, 10),
    ("mul24(x, y)", 1000, 1000, 1000000),
    ("mad24(x, y, 7)", 10, 10, 107),
    ("hadd(x, y)", 7, 4, 5),
    ("rhadd(x, y)", 7, 4, 6),
    ("popcount(x)", 0b1011011, 0, 5),
    ("clz(x)", 1, 0, 31),
    ("clz(x)", 0x40000000, 0, 1),
    ("rotate(x, y)", 1, 1, 2),
    ("rotate(x, y)", 0x80000000 - 0x100000000, 1, 1),  # high bit rotates around
    ("add_sat(x, y)", 2147483647, 10, 2147483647),
    ("sub_sat(x, y)", -2147483648, 10, -2147483648),
    ("mul_hi(x, y)", 1 << 16, 1 << 16, 1),
]


class TestIntegerBuiltins:
    @pytest.mark.parametrize("expr,x,y,expected", INT_CASES)
    def test_builtin(self, backend, expr, x, y, expected):
        assert eval_int(expr, backend, x=x, y=y) == expected


class TestClassification:
    def test_isnan_isinf_isfinite(self, backend):
        assert eval_int("isnan(0.0f / y)", backend, y=0) == 1
        assert eval_int("isinf(1.0f / y)", backend, y=0) == 1
        assert eval_int("isfinite(3.0f)", backend) == 1
        assert eval_int("isfinite(1.0f / y)", backend, y=0) == 0
