"""Type checker unit tests: accepted programs, rejected programs, and
the annotations the backends rely on."""

import pytest

from repro.kernelc import ast, compile_source
from repro.kernelc.ctypes_ import DOUBLE, FLOAT, INT, LONG, UINT, VectorType
from repro.kernelc.diagnostics import CompileError


def check_ok(source: str):
    return compile_source(source)


def check_fails(source: str, fragment: str = ""):
    with pytest.raises(CompileError) as excinfo:
        compile_source(source)
    if fragment:
        assert fragment in str(excinfo.value)
    return excinfo.value


class TestDeclarations:
    def test_undeclared_identifier(self):
        check_fails("void f() { x = 1; }", "undeclared identifier")

    def test_redeclaration_in_same_scope(self):
        check_fails("void f() { int x; int x; }", "redeclaration")

    def test_shadowing_in_inner_scope_ok(self):
        check_ok("void f() { int x = 1; { float x = 2.0f; } }")

    def test_void_variable_rejected(self):
        check_fails("void f() { void x; }", "void")

    def test_use_before_declaration_rejected(self):
        check_fails("void f() { x = 1; int x; }")

    def test_const_assignment_rejected(self):
        check_fails("void f() { const int x = 1; x = 2; }", "const")

    def test_for_scope_variable_not_visible_outside(self):
        check_fails("void f() { for (int i = 0; i < 3; ++i) { } i = 1; }")

    def test_local_outside_kernel_rejected(self):
        check_fails("void f() { __local float t[4]; }", "__local")

    def test_local_with_initializer_rejected(self):
        check_fails("__kernel void k() { __local float t = 1.0f; }")


class TestFunctions:
    def test_kernel_must_return_void(self):
        check_fails("__kernel int k() { return 1; }", "must return void")

    def test_kernel_private_pointer_param_rejected(self):
        check_fails("__kernel void k(float* p) { }", "must be __global")

    def test_redefinition_rejected(self):
        check_fails("int f() { return 1; } int f() { return 2; }", "redefinition")

    def test_call_arity_mismatch(self):
        check_fails("int g(int a) { return a; } void f() { g(1, 2); }", "expects 1")

    def test_calling_kernel_rejected(self):
        check_fails("__kernel void k() { } __kernel void j() { k(); }")

    def test_missing_return_value(self):
        check_fails("int f() { return; }", "must return a value")

    def test_void_returning_value_rejected(self):
        check_fails("void f() { return 1; }", "cannot return a value")

    def test_shadowing_builtin_rejected(self):
        check_fails("float sqrt(float x) { return x; }", "shadows")

    def test_undeclared_function_call(self):
        check_fails("void f() { frobnicate(1); }", "undeclared function")

    def test_return_conversion_allowed(self):
        check_ok("float f() { return 1; }")

    def test_duplicate_parameter_names(self):
        check_fails("void f(int a, int a) { }", "duplicate parameter")


class TestOperators:
    def test_arithmetic_result_types(self):
        program = check_ok("void f(int i, float x) { float y = i + x; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.op_type == FLOAT

    def test_integer_promotion_in_char_addition(self):
        program = check_ok("void f(char a, char b) { int r = a + b; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.op_type == INT

    def test_float_int_division_is_float(self):
        program = check_ok("void f(float x) { float y = x / 2; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.op_type == FLOAT

    def test_modulo_on_floats_rejected(self):
        check_fails("void f(float x) { x = x % 2.0f; }")

    def test_shift_on_float_rejected(self):
        check_fails("void f(float x) { x = x << 1; }")

    def test_bitand_on_float_rejected(self):
        check_fails("void f(float x) { int y = x & 1; }")

    def test_comparison_yields_int(self):
        program = check_ok("void f(float x) { int b = x < 1.0f; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.ctype == INT

    def test_logical_ops_require_scalars(self):
        check_ok("void f(int x, __global int* p) { int b = x && p; }")

    def test_assignment_to_rvalue_rejected(self):
        check_fails("void f(int x) { (x + 1) = 2; }", "not an lvalue")

    def test_incdec_requires_lvalue(self):
        check_fails("void f(int x) { ++(x + 1); }")

    def test_conditional_common_type(self):
        program = check_ok("void f(int c, int i, float x) { float y = c ? i : x; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.ctype == FLOAT

    def test_int_literal_types(self):
        program = check_ok("void f() { int a = 1; long b = 3000000000; uint c = 2u; }")
        decls = [d for s in program.functions[0].body.statements for d in s.decls]
        assert decls[0].init.ctype == INT
        assert decls[1].init.ctype == LONG
        assert decls[2].init.ctype == UINT

    def test_float_literal_types(self):
        program = check_ok("void f() { float a = 1.0f; double b = 1.0; }")
        decls = [d for s in program.functions[0].body.statements for d in s.decls]
        assert decls[0].init.ctype == FLOAT
        assert decls[1].init.ctype == DOUBLE


class TestPointers:
    def test_pointer_arithmetic(self):
        check_ok("void f(__global float* p) { p = p + 1; float x = *(p + 2); }")

    def test_pointer_difference_is_long(self):
        program = check_ok("void f(__global float* p, __global float* q) { long d = p - q; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.ctype == LONG

    def test_pointer_plus_pointer_rejected(self):
        check_fails("void f(__global float* p, __global float* q) { p = p + q; }")

    def test_pointer_times_int_rejected(self):
        check_fails("void f(__global float* p) { p = p * 2; }")

    def test_indexing_non_pointer_rejected(self):
        check_fails("void f(int x) { int y = x[0]; }", "cannot index")

    def test_deref_non_pointer_rejected(self):
        check_fails("void f(int x) { int y = *x; }", "dereference")

    def test_address_space_mismatch_rejected(self):
        check_fails(
            "void g(__local float* p) { } "
            "__kernel void k(__global float* p) { g(p); }"
        )

    def test_generic_private_param_accepts_global(self):
        check_ok(
            "float g(const float* p) { return p[0]; } "
            "__kernel void k(__global float* p, __global float* o) { o[0] = g(p); }"
        )

    def test_float_index_rejected(self):
        check_fails("void f(__global float* p) { float x = p[1.5f]; }", "integer")


class TestVectors:
    def test_component_access(self):
        program = check_ok("void f(float4 v) { float x = v.x; float2 lo = v.lo; }")
        stmts = program.functions[0].body.statements
        assert stmts[0].decls[0].init.ctype == FLOAT
        assert stmts[1].decls[0].init.ctype == VectorType(FLOAT, 2)

    def test_swizzle(self):
        program = check_ok("void f(float4 v) { float3 w = v.xyz; }")
        assert program.functions[0].body.statements[0].decls[0].init.ctype == VectorType(FLOAT, 3)

    def test_out_of_range_component_rejected(self):
        check_fails("void f(float2 v) { float x = v.z; }", "out of range")

    def test_invalid_selector_rejected(self):
        check_fails("void f(float4 v) { float x = v.q; }")

    def test_duplicate_swizzle_not_assignable(self):
        check_fails("void f(float4 v) { v.xx = (float2)(1.0f, 2.0f); }")

    def test_vector_arithmetic(self):
        check_ok("void f(float4 a, float4 b) { float4 c = a * b + 1.0f; }")

    def test_vector_width_mismatch_rejected(self):
        check_fails("void f(float4 a, float2 b) { a = a + b; }")

    def test_vector_literal_wrong_count_rejected(self):
        check_fails("void f() { float4 v = (float4)(1.0f, 2.0f); }", "component")

    def test_vector_literal_broadcast(self):
        check_ok("void f() { float4 v = (float4)(0.0f); }")

    def test_member_on_scalar_rejected(self):
        check_fails("void f(float x) { float y = x.x; }", "non-vector")

    def test_vector_comparison_yields_int_vector(self):
        program = check_ok("void f(float4 a, float4 b) { int4 m = a < b; }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.ctype == VectorType(INT, 4)


class TestBuiltins:
    def test_workitem_functions(self):
        check_ok("__kernel void k(__global float* o) { o[get_global_id(0)] = get_local_size(0); }")

    def test_math_functions(self):
        check_ok("void f(float x) { float y = sqrt(x) + sin(x) * pow(x, 2.0f); }")

    def test_min_max_integer_and_float(self):
        check_ok("void f(int i, float x) { int a = min(i, 3); float b = max(x, 0.0f); }")

    def test_clamp(self):
        check_ok("void f(float x) { float y = clamp(x, 0.0f, 1.0f); }")

    def test_geometric_on_vectors(self):
        check_ok("void f(float4 a, float4 b) { float d = dot(a, b); float l = length(a); }")

    def test_convert_function(self):
        program = check_ok("void f(float x) { int i = convert_int(x); }")
        decl = program.functions[0].body.statements[0].decls[0]
        assert decl.init.ctype == INT

    def test_as_type_reinterpret(self):
        check_ok("void f(float x) { uint u = as_uint(x); }")

    def test_as_type_size_mismatch_rejected(self):
        check_fails("void f(float x) { ulong u = as_ulong(x); }")

    def test_wrong_builtin_arity_rejected(self):
        check_fails("void f(float x) { float y = sqrt(x, x); }")

    def test_barrier_in_kernel_statement_ok(self):
        program = check_ok("__kernel void k() { barrier(CLK_LOCAL_MEM_FENCE); }")
        assert program.uses_barrier
        assert program.functions[0].uses_barrier

    def test_barrier_in_helper_rejected(self):
        check_fails("void f() { barrier(CLK_LOCAL_MEM_FENCE); }", "__kernel")

    def test_barrier_in_expression_rejected(self):
        check_fails("__kernel void k() { int x = (barrier(CLK_LOCAL_MEM_FENCE), 1); }")

    def test_builtin_constants(self):
        check_ok("void f() { float pi = M_PI_F; int m = INT_MAX; }")


class TestControlFlow:
    def test_break_outside_loop_rejected(self):
        check_fails("void f() { break; }", "break")

    def test_continue_outside_loop_rejected(self):
        check_fails("void f() { continue; }", "continue")

    def test_break_in_switch_ok(self):
        check_ok("void f(int x) { switch (x) { case 1: break; } }")

    def test_continue_in_switch_without_loop_rejected(self):
        check_fails("void f(int x) { switch (x) { case 1: continue; } }")

    def test_switch_on_float_rejected(self):
        check_fails("void f(float x) { switch (x) { } }", "integer")

    def test_duplicate_default_rejected(self):
        check_fails("void f(int x) { switch (x) { default: break; default: break; } }")

    def test_condition_must_be_scalar(self):
        check_fails("void f(float4 v) { if (v) { } }", "scalar")


class TestAnnotations:
    def test_expressions_get_types(self):
        program = check_ok("__kernel void k(__global float* p, int n) { p[0] = n * 2.0f; }")
        for node in ast.walk(program.functions[0].body):
            if isinstance(node, ast.Expr):
                assert node.ctype is not None, f"{type(node).__name__} missing ctype"

    def test_call_resolution_annotations(self):
        program = check_ok(
            "float g(float x) { return x; } void f(float x) { float a = g(x); float b = sqrt(x); }"
        )
        stmts = program.functions[1].body.statements
        user_call = stmts[0].decls[0].init
        builtin_call = stmts[1].decls[0].init
        assert user_call.kind == "user" and user_call.callee_def.name == "g"
        assert builtin_call.kind == "builtin" and builtin_call.resolved.name == "sqrt"
