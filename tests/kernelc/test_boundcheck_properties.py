"""Property tests for the boundcheck interval lattice (hypothesis).

The lint pass and the MapOverlap bounds proof both lean on this engine,
so its algebra gets adversarial coverage: lattice laws for ``join``,
soundness of interval arithmetic against concrete values, and soundness
of the for-loop pattern matcher against actual loop iteration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernelc.boundcheck import Interval, analyze_get_bounds
from repro.kernelc.parser import parse

BOUND = 64

values = st.integers(min_value=-BOUND, max_value=BOUND)


@st.composite
def intervals(draw):
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return Interval.top()
    a = draw(values)
    b = draw(values)
    return Interval(min(a, b), max(a, b))


def contains(interval, value):
    return interval.lo <= value <= interval.hi


def subsumes(wider, narrower):
    """wider ⊒ narrower in the interval lattice."""
    return wider.lo <= narrower.lo and narrower.hi <= wider.hi


class TestJoinLattice:
    @given(intervals())
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(intervals(), intervals())
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(intervals(), intervals(), intervals())
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(intervals(), intervals())
    def test_join_is_an_upper_bound(self, a, b):
        joined = a.join(b)
        assert subsumes(joined, a) and subsumes(joined, b)

    @given(intervals(), intervals(), intervals())
    def test_join_monotone(self, a, b, c):
        # a ⊑ a⊔c, so (a⊔c)⊔b must subsume a⊔b (monotonicity in the
        # left argument; commutativity gives the right one).
        widened = a.join(c)
        assert subsumes(widened.join(b), a.join(b))

    @given(intervals())
    def test_top_absorbs(self, a):
        assert a.join(Interval.top()).is_top


class TestArithmeticSoundness:
    """γ-soundness: x ∈ a and y ∈ b imply x∘y ∈ a∘b."""

    @given(intervals(), intervals(), st.data())
    def test_add_sub_mul_sound(self, a, b, data):
        x = data.draw(st.integers(int(max(a.lo, -BOUND)), int(min(a.hi, BOUND))))
        y = data.draw(st.integers(int(max(b.lo, -BOUND)), int(min(b.hi, BOUND))))
        assert contains(a + b, x + y)
        assert contains(a - b, x - y)
        assert contains(a * b, x * y)

    @given(intervals(), st.data())
    def test_neg_sound(self, a, data):
        x = data.draw(st.integers(int(max(a.lo, -BOUND)), int(min(a.hi, BOUND))))
        assert contains(-a, -x)

    @given(intervals(), intervals(), st.data())
    def test_operations_monotone(self, a, b, data):
        # Widening an operand may only widen the result.
        wider = a.join(data.draw(intervals()))
        assert subsumes(wider + b, a + b)
        assert subsumes(wider - b, a - b)
        assert subsumes(wider * b, a * b)

    @given(intervals())
    def test_within_respects_top(self, a):
        if a.is_top:
            assert not a.within(-BOUND, BOUND)


class TestForLoopBoundSoundness:
    """The counting-loop matcher must never assign the induction
    variable an interval missing a value it actually takes."""

    @settings(max_examples=60)
    @given(
        st.integers(min_value=-8, max_value=8),
        st.integers(min_value=-8, max_value=12),
        st.sampled_from(["<", "<="]),
        st.integers(min_value=1, max_value=3),
    )
    def test_loop_offsets_covered(self, start, bound, op, step):
        increment = "++i" if step == 1 else f"i += {step}"
        source = f"""
        float f(float* m) {{
            float s = 0.0f;
            for (int i = {start}; i {op} {bound}; {increment}) s += get(m, i, 0);
            return s;
        }}"""
        program = parse(source)

        # Concrete iteration values of the loop.
        concrete = []
        i = start
        while (i < bound) if op == "<" else (i <= bound):
            concrete.append(i)
            i += step

        proof = analyze_get_bounds(program.functions[-1], BOUND)
        if not concrete:
            # Zero-trip loop: any interval is vacuously sound; the
            # proof must still not crash and stays conservative.
            assert proof.accesses is not None
            return
        # Soundness: every concretely-taken offset lies inside the
        # claimed interval for every collected access.
        assert proof.accesses, "loop body access was not collected"
        for offsets in proof.accesses:
            row = offsets[0]
            for value in concrete:
                assert contains(row, value), (
                    f"offset {value} escapes claimed interval "
                    f"[{row.lo}, {row.hi}] for {source}"
                )
        # And the proof agrees with a brute-force overlap check.
        widest = max(max(abs(v) for v in concrete), 0)
        assert proof.proven == all(
            contains(Interval(-BOUND, BOUND), v) for v in concrete
        ) or not proof.proven  # conservative rejection is always allowed
        if proof.proven:
            assert widest <= BOUND
