"""Differential coverage for masked ``switch`` dispatch on the vector
backend (each kernel used to fall back to the per-item interpreter).

Same oracle as ``test_vectorize_differential``: bit-exact buffers and
equal ExecutionCounters across backends, faults included.
"""

import numpy as np

from repro.kernelc import compile_source
from repro.kernelc.compiler import compile_program
from repro.kernelc import vectorize

from .test_vectorize_differential import assert_backends_agree


def _ints(n, lo, hi, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(lo, hi, size=n, dtype=np.int32)


def test_switch_no_longer_rejected():
    source = """
    __kernel void k(__global int* out) {
        int v = 0;
        switch ((int)get_global_id(0) % 2) {
            case 0: v = 1; break;
            default: v = 2; break;
        }
        out[get_global_id(0)] = v;
    }
    """
    compiled = compile_program(compile_source(source)).kernel("k")
    assert vectorize.reject_reason(compiled) is None
    assert vectorize.plan_for(compiled) is not None


def test_switch_basic_dispatch():
    source = """
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        int v;
        switch (in[gid]) {
            case 0: v = 10; break;
            case 1: v = 20; break;
            case 2: v = 30; break;
            default: v = -1; break;
        }
        out[gid] = v;
    }
    """
    arrays = {"in": _ints(64, 0, 5, 1), "out": np.zeros(64, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (64,), (16,))


def test_switch_fallthrough_accumulates():
    source = """
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        int v = 0;
        switch (in[gid]) {
            case 0: v += 1;
            case 1: v += 10;
            case 2: v += 100; break;
            case 3: v += 1000;
            default: v += 10000;
        }
        out[gid] = v;
    }
    """
    arrays = {"in": _ints(96, 0, 6, 2), "out": np.zeros(96, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (96,), (32,))


def test_switch_default_in_middle():
    source = """
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        int v = 0;
        switch (in[gid]) {
            case 7: v = 1; break;
            default: v = 50;
            case 8: v += 2; break;
            case 9: v = 3; break;
        }
        out[gid] = v;
    }
    """
    arrays = {"in": _ints(64, 5, 12, 3), "out": np.zeros(64, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (64,), (8,))


def test_switch_without_default_passes_through():
    source = """
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        int v = -5;
        switch (in[gid]) {
            case 1: v = 100; break;
            case 3: v = 300;
        }
        out[gid] = v + 1;
    }
    """
    arrays = {"in": _ints(80, 0, 6, 4), "out": np.zeros(80, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (80,), (16,))


def test_switch_inside_loop_with_continue_and_break():
    source = """
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        int acc = 0;
        for (int i = 0; i < 8; ++i) {
            switch ((in[gid] + i) % 4) {
                case 0: acc += 1; break;
                case 1: continue;
                case 2: acc += 7;
                default: acc -= 2; break;
            }
            acc += 100;
        }
        out[gid] = acc;
    }
    """
    arrays = {"in": _ints(64, 0, 9, 5), "out": np.zeros(64, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (64,), (16,))


def test_switch_nested_in_switch():
    source = """
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        int v = 0;
        switch (in[gid] / 3) {
            case 0:
                switch (in[gid] % 3) {
                    case 0: v = 1; break;
                    case 1: v = 2;
                    default: v += 4; break;
                }
                break;
            case 1: v = 10; break;
            default: v = 99; break;
        }
        out[gid] = v;
    }
    """
    arrays = {"in": _ints(128, 0, 9, 6), "out": np.zeros(128, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (128,), (32,))


def test_switch_on_long_subject_and_negative_cases():
    source = """
    __kernel void k(__global const long* in, __global long* out) {
        size_t gid = get_global_id(0);
        long v = 0;
        switch (in[gid]) {
            case -2: v = 111; break;
            case 0: v = 222; break;
            case 4611686018427387904: v = 333; break;
            default: v = -1; break;
        }
        out[gid] = v;
    }
    """
    values = np.array([-2, 0, 4611686018427387904, 5, -2, 7, 0, 1] * 8,
                      dtype=np.int64)
    arrays = {"in": values, "out": np.zeros(values.size, dtype=np.int64)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (values.size,), (8,))


def test_switch_in_helper_function():
    source = """
    int classify(int x) {
        switch (x % 3) {
            case 0: return 7;
            case 1: return 8;
        }
        return 9;
    }
    __kernel void k(__global const int* in, __global int* out) {
        size_t gid = get_global_id(0);
        out[gid] = classify(in[gid]);
    }
    """
    arrays = {"in": _ints(64, 0, 30, 7), "out": np.zeros(64, dtype=np.int32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (64,), (16,))


def test_switch_divergent_subject_expression():
    source = """
    __kernel void k(__global const int* in, __global float* out) {
        size_t gid = get_global_id(0);
        float v = 0.0f;
        int sel = (in[gid] * 13 + (int)gid) % 5;
        switch (sel) {
            case 0: v = 1.5f; break;
            case 1: v = 2.5f;
            case 2: v += 0.25f; break;
            case 3: v = -7.0f; break;
            default: v = 42.0f; break;
        }
        out[gid] = v;
    }
    """
    arrays = {"in": _ints(100, 0, 50, 8),
              "out": np.zeros(100, dtype=np.float32)}
    assert_backends_agree(source, "k", arrays, ["in", "out"], (100,), (4,))
