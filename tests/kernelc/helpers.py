"""Test helpers: run a kernel through either backend without the full
OpenCL runtime plumbing."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernelc import ExecutionCounters, WorkItemContext, compile_source
from repro.kernelc.compiler import compile_program
from repro.kernelc.ctypes_ import ctype_from_numpy
from repro.kernelc.interp import Interpreter, Machine, allocate_local_memory
from repro.kernelc.memory import Pointer


def make_buffers(arrays: Dict[str, np.ndarray], counters: ExecutionCounters) -> Dict[str, Pointer]:
    pointers = {}
    for name, array in arrays.items():
        flat = np.ascontiguousarray(array).reshape(-1).copy()
        pointers[name] = Pointer(flat, ctype_from_numpy(flat.dtype), "global", 0, counters.memory)
    return pointers


def _contexts(global_size: Tuple[int, ...], local_size: Tuple[int, ...]):
    """All (group, [work-item contexts]) for a small NDRange."""
    dims = len(global_size)
    num_groups = tuple(g // l for g, l in zip(global_size, local_size))

    def iterate(shape):
        if len(shape) == 1:
            for i in range(shape[0]):
                yield (i,)
        elif len(shape) == 2:
            for j in range(shape[1]):
                for i in range(shape[0]):
                    yield (i, j)
        else:
            for k in range(shape[2]):
                for j in range(shape[1]):
                    for i in range(shape[0]):
                        yield (i, j, k)

    for group in iterate(num_groups):
        contexts = []
        for local in iterate(local_size):
            gid = tuple(g * l + x for g, l, x in zip(group, local_size, local))
            contexts.append(WorkItemContext(gid, local, group, global_size, local_size))
        yield group, contexts


def run_kernel(
    source: str,
    kernel_name: str,
    arrays: Dict[str, np.ndarray],
    args: Sequence,  # names (str, resolved to buffers) or scalar values
    global_size,
    local_size=None,
    backend: str = "compiler",
) -> Tuple[Dict[str, np.ndarray], ExecutionCounters]:
    """Execute a kernel over a small NDRange; returns final arrays + stats.

    ``args`` entries that are strings refer to entries of ``arrays``
    (passed as global buffers); anything else is a scalar argument.
    """
    if isinstance(global_size, int):
        global_size = (global_size,)
    if local_size is None:
        local_size = global_size
    elif isinstance(local_size, int):
        local_size = (local_size,)

    program = compile_source(source)
    counters = ExecutionCounters()
    pointers = make_buffers(arrays, counters)
    runtime_args = [pointers[a] if isinstance(a, str) else a for a in args]
    definition = program.function(kernel_name)
    # Marshal to the kernel's parameter types (as the runtime does).
    from repro.kernelc.execmodel import convert_value

    runtime_args = [
        convert_value(value, param.declared_type)
        for value, param in zip(runtime_args, definition.params)
    ]

    if backend == "compiler":
        compiled = compile_program(program).kernel(kernel_name)
        for group, contexts in _contexts(tuple(global_size), tuple(local_size)):
            storage = allocate_local_memory(definition, counters)
            lmem = [storage[id(d)] for d in compiled.local_decls]
            if compiled.uses_barrier:
                generators = [compiled.func(counters, ctx, lmem, *runtime_args) for ctx in contexts]
                alive = generators
                while alive:
                    next_alive = []
                    for gen in alive:
                        try:
                            next(gen)
                            next_alive.append(gen)
                        except StopIteration:
                            pass
                    alive = next_alive
            else:
                for ctx in contexts:
                    compiled.func(counters, ctx, lmem, *runtime_args)
    elif backend == "vector":
        from repro.kernelc import vectorize
        from repro.ocl.ndrange import NDRange

        compiled = compile_program(program).kernel(kernel_name)
        plan = vectorize.plan_for(compiled)
        if plan is None:
            raise ValueError(
                f"kernel {kernel_name!r} is not vectorizable: "
                f"{vectorize.reject_reason(compiled)}"
            )
        ndrange = NDRange.create(tuple(global_size), tuple(local_size))
        groups = list(ndrange.group_ids())
        vectorize.execute(compiled, plan, ndrange, groups,
                          list(ndrange.local_ids()), runtime_args, counters)
    elif backend == "interp":
        machine = Machine(program, counters)
        for group, contexts in _contexts(tuple(global_size), tuple(local_size)):
            storage = allocate_local_memory(definition, counters)
            generators = [
                Interpreter(machine, ctx, storage).run_kernel(definition, runtime_args)
                for ctx in contexts
            ]
            alive = generators
            while alive:
                next_alive = []
                for gen in alive:
                    try:
                        next(gen)
                        next_alive.append(gen)
                    except StopIteration:
                        pass
                alive = next_alive
    else:
        raise ValueError(f"unknown backend {backend!r}")

    results = {name: pointer.array for name, pointer in pointers.items()}
    return results, counters


def run_both(source, kernel_name, arrays, args, global_size, local_size=None):
    """Run on both backends (fresh input copies); returns both results."""
    compiled_result, compiled_counters = run_kernel(
        source, kernel_name, {k: v.copy() for k, v in arrays.items()}, args,
        global_size, local_size, backend="compiler",
    )
    interp_result, interp_counters = run_kernel(
        source, kernel_name, {k: v.copy() for k, v in arrays.items()}, args,
        global_size, local_size, backend="interp",
    )
    return (compiled_result, compiled_counters), (interp_result, interp_counters)
