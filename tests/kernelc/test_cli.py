"""Tests for the ``python -m repro.kernelc`` command-line driver."""

import io
import sys

import pytest

from repro.kernelc.__main__ import main

VALID = """
__kernel void add_one(__global int* data, int n) {
    int gid = get_global_id(0);
    if (gid < n) data[gid] += 1;
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.cl"
    path.write_text(VALID)
    return str(path)


class TestCli:
    def test_reports_kernels(self, kernel_file, capsys):
        assert main([kernel_file]) == 0
        out = capsys.readouterr().out
        assert "add_one" in out and "OK" in out

    def test_compile_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.cl"
        bad.write_text("__kernel void k() { undeclared(); }")
        assert main([str(bad)]) == 1
        assert "undeclared" in capsys.readouterr().err

    def test_pretty_print_roundtrips(self, kernel_file, capsys):
        assert main([kernel_file, "--print"]) == 0
        printed = capsys.readouterr().out
        from repro.kernelc import compile_source

        assert [k.name for k in compile_source(printed).kernels()] == ["add_one"]

    def test_ast_dump(self, kernel_file, capsys):
        assert main([kernel_file, "--ast"]) == 0
        out = capsys.readouterr().out
        assert "FunctionDef" in out and "BinaryOp" in out

    def test_python_output(self, kernel_file, capsys):
        assert main([kernel_file, "--python"]) == 0
        out = capsys.readouterr().out
        assert "def _fn_add_one" in out

    def test_defines(self, tmp_path, capsys):
        path = tmp_path / "k.cl"
        path.write_text("#ifdef FAST\n__kernel void fast(__global int* o) { o[0] = 1; }\n#endif\n"
                        "__kernel void base(__global int* o) { o[0] = 0; }")
        assert main([str(path), "-D", "FAST"]) == 0
        assert "fast" in capsys.readouterr().out

    def test_stdin(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", io.StringIO(VALID))
        assert main(["-"]) == 0
        assert "add_one" in capsys.readouterr().out

    def test_barrier_flag_reported(self, tmp_path, capsys):
        path = tmp_path / "b.cl"
        path.write_text("""__kernel void k(__global int* o) {
            __local int t[4];
            t[get_local_id(0)] = 1;
            barrier(CLK_LOCAL_MEM_FENCE);
            o[0] = t[0];
        }""")
        assert main([str(path)]) == 0
        assert "uses barriers" in capsys.readouterr().out


class TestCliLint:
    def test_lint_clean_kernel(self, kernel_file, capsys):
        assert main([kernel_file, "--lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_error_sets_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.cl"
        bad.write_text(
            "__kernel void k(__constant float* c, __global float* a)"
            " { c[0] = 1.0f; a[0] = c[0]; }"
        )
        assert main([str(bad), "--lint"]) == 1
        assert "[write-to-constant]" in capsys.readouterr().err

    def test_lint_warning_does_not_fail(self, tmp_path, capsys):
        warn = tmp_path / "warn.cl"
        warn.write_text("__kernel void k(__global float* a, int unused) { a[0] = 1.0f; }")
        assert main([str(warn), "--lint"]) == 0
        assert "[unused-binding]" in capsys.readouterr().err

    def test_lint_python_module_extracts_kernel_strings(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text(
            'K = """\n'
            "__kernel void k(__global float* a, int n) {\n"
            "    int gid = get_global_id(0);\n"
            "    if (gid < n) a[gid] = 0.0f;\n"
            "}\n"
            '"""\n'
            'NOT_A_KERNEL = "just a string"\n'
            'TEMPLATED = f"""\n'
            "__kernel void t(__global {t}* a) {{ a[0] = 1; }}\n"
            '"""\n'
        )
        assert main([str(module), "--lint"]) == 0
        out = capsys.readouterr().out
        assert "1 kernel string(s)" in out  # the f-string fragment is skipped

    def test_lint_python_module_reports_errors(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text(
            'K = """\n'
            "__kernel void k(__constant float* c, __global float* a)"
            " { c[0] = 1.0f; a[0] = c[0]; }\n"
            '"""\n'
        )
        assert main([str(module), "--lint"]) == 1
        captured = capsys.readouterr()
        assert "[write-to-constant]" in captured.err
        assert "with errors" in captured.out

    def test_lint_shipped_baselines_clean(self, capsys):
        import os

        import repro.baselines as baselines

        root = os.path.dirname(baselines.__file__)
        for name in sorted(os.listdir(root)):
            if name.endswith(".py"):
                assert main([os.path.join(root, name), "--lint"]) == 0
