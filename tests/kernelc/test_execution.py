"""Execution semantics tests, run against BOTH backends.

Each test exercises one language feature end-to-end through a kernel and
asserts the numeric result, parametrized over the interpreter and the
compiling backend so the two stay in lockstep.
"""

import numpy as np
import pytest

from repro.kernelc.memory import KernelFault

from .helpers import run_kernel

BACKENDS = ["compiler", "interp"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def run1(source, arrays, args, n=1, backend="compiler", kernel="k", local=None):
    results, _counters = run_kernel(source, kernel, arrays, args, n, local, backend=backend)
    return results


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self, backend):
        src = """__kernel void k(__global int* o) {
            o[0] = 7 / 2; o[1] = -7 / 2; o[2] = 7 / -2; o[3] = -7 / -2;
        }"""
        out = run1(src, {"o": np.zeros(4, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [3, -3, -3, 3]

    def test_integer_remainder_sign(self, backend):
        src = """__kernel void k(__global int* o) {
            o[0] = 7 % 3; o[1] = -7 % 3; o[2] = 7 % -3;
        }"""
        out = run1(src, {"o": np.zeros(3, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [1, -1, 1]

    def test_integer_division_by_zero_faults(self, backend):
        src = "__kernel void k(__global int* o, int z) { o[0] = 1 / z; }"
        with pytest.raises(KernelFault):
            run1(src, {"o": np.zeros(1, np.int32)}, ["o", 0], backend=backend)

    def test_float_division_by_zero_gives_inf(self, backend):
        src = "__kernel void k(__global float* o, float z) { o[0] = 1.0f / z; }"
        out = run1(src, {"o": np.zeros(1, np.float32)}, ["o", 0.0], backend=backend)["o"]
        assert np.isinf(out[0])

    def test_unsigned_wraparound(self, backend):
        src = "__kernel void k(__global uint* o) { uint x = 0u; o[0] = x - 1u; }"
        out = run1(src, {"o": np.zeros(1, np.uint32)}, ["o"], backend=backend)["o"]
        assert out[0] == 4294967295

    def test_uchar_store_wraps(self, backend):
        src = "__kernel void k(__global uchar* o) { o[0] = 300; o[1] = (uchar)(256 + 7); }"
        out = run1(src, {"o": np.zeros(2, np.uint8)}, ["o"], backend=backend)["o"]
        assert list(out) == [44, 7]

    def test_shift_count_masked_by_width(self, backend):
        src = "__kernel void k(__global int* o, int s) { o[0] = 1 << s; }"
        out = run1(src, {"o": np.zeros(1, np.int32)}, ["o", 33], backend=backend)["o"]
        assert out[0] == 2  # 33 % 32 == 1

    def test_float_to_int_cast_truncates(self, backend):
        src = """__kernel void k(__global int* o) {
            o[0] = (int)2.9f; o[1] = (int)-2.9f;
        }"""
        out = run1(src, {"o": np.zeros(2, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [2, -2]

    def test_char_literal_arithmetic(self, backend):
        src = "__kernel void k(__global int* o) { o[0] = 'A' + 1; }"
        out = run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"]
        assert out[0] == 66

    def test_ternary(self, backend):
        src = "__kernel void k(__global int* o, int x) { o[0] = x > 0 ? 10 : 20; }"
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 5], backend=backend)["o"][0] == 10
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", -5], backend=backend)["o"][0] == 20

    def test_logical_short_circuit_protects_division(self, backend):
        src = """__kernel void k(__global int* o, int z) {
            o[0] = (z != 0 && 10 / z > 1) ? 1 : 0;
        }"""
        out = run1(src, {"o": np.zeros(1, np.int32)}, ["o", 0], backend=backend)["o"]
        assert out[0] == 0

    def test_compound_assignment_ops(self, backend):
        src = """__kernel void k(__global int* o) {
            int x = 10; x += 5; x -= 3; x *= 2; x /= 3; x %= 5; x <<= 2; x >>= 1; x |= 8; x &= 12; x ^= 5;
            o[0] = x;
        }"""
        x = 10
        x += 5; x -= 3; x *= 2; x //= 3; x %= 5; x <<= 2; x >>= 1; x |= 8; x &= 12; x ^= 5
        out = run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"]
        assert out[0] == x

    def test_pre_and_post_increment(self, backend):
        src = """__kernel void k(__global int* o) {
            int x = 5;
            o[0] = x++; o[1] = x; o[2] = ++x; o[3] = x--; o[4] = --x;
        }"""
        out = run1(src, {"o": np.zeros(5, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [5, 6, 7, 7, 5]

    def test_comma_operator(self, backend):
        src = "__kernel void k(__global int* o) { int x; int y = (x = 3, x + 1); o[0] = y; }"
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 4

    def test_sizeof(self, backend):
        src = """__kernel void k(__global int* o, float f) {
            o[0] = sizeof(float); o[1] = sizeof(double); o[2] = sizeof f; o[3] = sizeof(float4);
        }"""
        out = run1(src, {"o": np.zeros(4, np.int32)}, ["o", 0.0], backend=backend)["o"]
        assert list(out) == [4, 8, 4, 16]


class TestControlFlow:
    def test_for_loop_sum(self, backend):
        src = """__kernel void k(__global int* o, int n) {
            int s = 0;
            for (int i = 0; i < n; ++i) s += i;
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 10], backend=backend)["o"][0] == 45

    def test_while_loop(self, backend):
        src = """__kernel void k(__global int* o, int n) {
            int c = 0;
            while (n > 1) { n = (n % 2 == 0) ? n / 2 : 3 * n + 1; ++c; }
            o[0] = c;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 6], backend=backend)["o"][0] == 8

    def test_do_while_runs_once(self, backend):
        src = """__kernel void k(__global int* o) {
            int c = 0;
            do { ++c; } while (0);
            o[0] = c;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 1

    def test_break_in_for(self, backend):
        src = """__kernel void k(__global int* o) {
            int s = 0;
            for (int i = 0; i < 100; ++i) { if (i == 5) break; s += i; }
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 10

    def test_continue_in_for_runs_increment(self, backend):
        src = """__kernel void k(__global int* o) {
            int s = 0;
            for (int i = 0; i < 10; ++i) { if (i % 2 == 0) continue; s += i; }
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 25

    def test_continue_in_while(self, backend):
        src = """__kernel void k(__global int* o) {
            int s = 0; int i = 0;
            while (i < 10) { ++i; if (i % 2 == 0) continue; s += i; }
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 25

    def test_continue_in_do_while_checks_condition(self, backend):
        src = """__kernel void k(__global int* o) {
            int i = 0; int s = 0;
            do { ++i; if (i > 3) continue; s += i; } while (i < 6);
            o[0] = s; o[1] = i;
        }"""
        out = run1(src, {"o": np.zeros(2, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [6, 6]

    def test_nested_loops_with_break(self, backend):
        src = """__kernel void k(__global int* o) {
            int c = 0;
            for (int i = 0; i < 4; ++i)
                for (int j = 0; j < 4; ++j) {
                    if (j > i) break;
                    ++c;
                }
            o[0] = c;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 10

    def test_switch_with_fallthrough(self, backend):
        src = """__kernel void k(__global int* o, int x) {
            int r = 0;
            switch (x) {
                case 1: r += 1;
                case 2: r += 2; break;
                case 3: r += 3; break;
                default: r = 99;
            }
            o[0] = r;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 1], backend=backend)["o"][0] == 3
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 2], backend=backend)["o"][0] == 2
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 3], backend=backend)["o"][0] == 3
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 7], backend=backend)["o"][0] == 99

    def test_switch_break_inside_loop(self, backend):
        src = """__kernel void k(__global int* o) {
            int s = 0;
            for (int i = 0; i < 5; ++i) {
                switch (i) {
                    case 2: s += 100; break;
                    default: s += 1;
                }
            }
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 104

    def test_continue_inside_switch_inside_loop(self, backend):
        src = """__kernel void k(__global int* o) {
            int s = 0;
            for (int i = 0; i < 5; ++i) {
                switch (i % 2) {
                    case 0: continue;
                    default: ;
                }
                s += i;
            }
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 4

    def test_early_return(self, backend):
        src = """__kernel void k(__global int* o, int x) {
            if (x < 0) { o[0] = -1; return; }
            o[0] = 1;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", -3], backend=backend)["o"][0] == -1


class TestFunctionsAndMemory:
    def test_helper_function_call(self, backend):
        src = """
        int fib(int n) {
            if (n < 2) return n;
            int a = 0; int b = 1;
            for (int i = 2; i <= n; ++i) { int t = a + b; a = b; b = t; }
            return b;
        }
        __kernel void k(__global int* o) { o[0] = fib(10); }
        """
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 55

    def test_recursive_function(self, backend):
        src = """
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        __kernel void k(__global int* o) { o[0] = fact(6); }
        """
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 720

    def test_pointer_walk(self, backend):
        src = """__kernel void k(__global const int* in, __global int* o, int n) {
            __global const int* p = in;
            int s = 0;
            for (int i = 0; i < n; ++i) { s += *p; ++p; }
            o[0] = s;
        }"""
        arrays = {"in": np.arange(8, dtype=np.int32), "o": np.zeros(1, np.int32)}
        assert run1(src, arrays, ["in", "o", 8], backend=backend)["o"][0] == 28

    def test_pointer_difference(self, backend):
        src = """__kernel void k(__global const int* in, __global int* o) {
            __global const int* p = in + 5;
            o[0] = p - in;
        }"""
        arrays = {"in": np.zeros(8, np.int32), "o": np.zeros(1, np.int32)}
        assert run1(src, arrays, ["in", "o"], backend=backend)["o"][0] == 5

    def test_out_of_bounds_load_faults(self, backend):
        src = "__kernel void k(__global const int* in, __global int* o) { o[0] = in[100]; }"
        arrays = {"in": np.zeros(8, np.int32), "o": np.zeros(1, np.int32)}
        with pytest.raises(KernelFault):
            run1(src, arrays, ["in", "o"], backend=backend)

    def test_out_of_bounds_store_faults(self, backend):
        src = "__kernel void k(__global int* o) { o[-1] = 3; }"
        with pytest.raises(KernelFault):
            run1(src, {"o": np.zeros(4, np.int32)}, ["o"], backend=backend)

    def test_private_array(self, backend):
        src = """__kernel void k(__global int* o) {
            int a[5];
            for (int i = 0; i < 5; ++i) a[i] = i * i;
            int s = 0;
            for (int i = 0; i < 5; ++i) s += a[i];
            o[0] = s;
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 30

    def test_private_array_initializer(self, backend):
        src = """__kernel void k(__global int* o) {
            int w[4] = {1, -2, 3, -4};
            o[0] = w[0] + w[1] + w[2] + w[3];
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == -2

    def test_two_dimensional_private_array(self, backend):
        src = """__kernel void k(__global int* o) {
            int m[2][3];
            for (int i = 0; i < 2; ++i)
                for (int j = 0; j < 3; ++j)
                    m[i][j] = i * 3 + j;
            o[0] = m[1][2];
        }"""
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 5

    def test_constant_global_array(self, backend):
        src = """
        __constant int WEIGHTS[3] = {2, 5, 11};
        __kernel void k(__global int* o) { o[0] = WEIGHTS[0] + WEIGHTS[1] + WEIGHTS[2]; }
        """
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o"], backend=backend)["o"][0] == 18

    def test_pointer_cast_reinterpret(self, backend):
        src = """__kernel void k(__global uchar* bytes, __global int* o) {
            __global int* words = (__global int*)bytes;
            o[0] = words[0];
        }"""
        raw = np.array([1, 0, 0, 0], dtype=np.uint8)  # little-endian 1
        arrays = {"bytes": raw, "o": np.zeros(1, np.int32)}
        assert run1(src, arrays, ["bytes", "o"], backend=backend)["o"][0] == 1


class TestBuiltinsExecution:
    def test_math_builtins(self, backend):
        src = """__kernel void k(__global float* o, float x) {
            o[0] = sqrt(x); o[1] = fabs(-x); o[2] = floor(x); o[3] = ceil(x);
            o[4] = fmin(x, 1.0f); o[5] = fmax(x, 10.0f); o[6] = pow(x, 2.0f);
        }"""
        out = run1(src, {"o": np.zeros(7, np.float32)}, ["o", 6.25], backend=backend)["o"]
        assert out[0] == pytest.approx(2.5)
        assert out[1] == pytest.approx(6.25)
        assert out[2] == 6.0 and out[3] == 7.0
        assert out[4] == 1.0 and out[5] == 10.0
        assert out[6] == pytest.approx(39.0625)

    def test_min_max_clamp_int(self, backend):
        src = """__kernel void k(__global int* o) {
            o[0] = min(3, 5); o[1] = max(-3, -5); o[2] = clamp(17, 0, 10); o[3] = abs(-9);
        }"""
        out = run1(src, {"o": np.zeros(4, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [3, -3, 10, 9]

    def test_mad_and_fma(self, backend):
        src = "__kernel void k(__global float* o) { o[0] = mad(2.0f, 3.0f, 4.0f); o[1] = fma(2.0f, 3.0f, 4.0f); }"
        out = run1(src, {"o": np.zeros(2, np.float32)}, ["o"], backend=backend)["o"]
        assert list(out) == [10.0, 10.0]

    def test_native_prefix_behaves_like_plain(self, backend):
        src = "__kernel void k(__global float* o, float x) { o[0] = native_sin(x) - sin(x); }"
        out = run1(src, {"o": np.zeros(1, np.float32)}, ["o", 0.7], backend=backend)["o"]
        assert out[0] == pytest.approx(0.0, abs=1e-6)

    def test_workitem_ids(self, backend):
        src = """__kernel void k(__global int* gids, __global int* lids, __global int* grps) {
            size_t g = get_global_id(0);
            gids[g] = g;
            lids[g] = get_local_id(0);
            grps[g] = get_group_id(0);
        }"""
        arrays = {
            "gids": np.zeros(8, np.int32),
            "lids": np.zeros(8, np.int32),
            "grps": np.zeros(8, np.int32),
        }
        out = run1(src, arrays, ["gids", "lids", "grps"], n=8, local=4, backend=backend)
        assert list(out["gids"]) == list(range(8))
        assert list(out["lids"]) == [0, 1, 2, 3, 0, 1, 2, 3]
        assert list(out["grps"]) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_get_global_size_and_num_groups(self, backend):
        src = """__kernel void k(__global int* o) {
            o[0] = get_global_size(0); o[1] = get_local_size(0);
            o[2] = get_num_groups(0); o[3] = get_work_dim();
            o[4] = get_global_size(1); o[5] = get_global_id(2);
        }"""
        out = run1(src, {"o": np.zeros(6, np.int32)}, ["o"], n=4, local=2, backend=backend)["o"]
        assert list(out) == [4, 2, 2, 1, 1, 0]

    def test_dot_and_length(self, backend):
        src = """__kernel void k(__global float* o) {
            float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float4 b = (float4)(4.0f, 3.0f, 2.0f, 1.0f);
            o[0] = dot(a, b);
            o[1] = length((float4)(3.0f, 4.0f, 0.0f, 0.0f));
        }"""
        out = run1(src, {"o": np.zeros(2, np.float32)}, ["o"], backend=backend)["o"]
        assert out[0] == pytest.approx(20.0)
        assert out[1] == pytest.approx(5.0)

    def test_select(self, backend):
        src = "__kernel void k(__global int* o, int c) { o[0] = select(10, 20, c); }"
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 1], backend=backend)["o"][0] == 20
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 0], backend=backend)["o"][0] == 10

    def test_popcount_and_clz(self, backend):
        src = "__kernel void k(__global int* o) { o[0] = popcount(0xF0F0); o[1] = clz(1); }"
        out = run1(src, {"o": np.zeros(2, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [8, 31]

    def test_convert_sat_like_conversion(self, backend):
        src = "__kernel void k(__global int* o, float x) { o[0] = convert_int(x); }"
        assert run1(src, {"o": np.zeros(1, np.int32)}, ["o", 7.9], backend=backend)["o"][0] == 7

    def test_as_uint_bit_pattern(self, backend):
        src = "__kernel void k(__global uint* o) { o[0] = as_uint(1.0f); }"
        out = run1(src, {"o": np.zeros(1, np.uint32)}, ["o"], backend=backend)["o"]
        assert out[0] == 0x3F800000


class TestVectorsExecution:
    def test_vector_arithmetic_and_store(self, backend):
        src = """__kernel void k(__global float* o) {
            float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float4 b = a * 2.0f + (float4)(1.0f);
            o[0] = b.x; o[1] = b.y; o[2] = b.z; o[3] = b.w;
        }"""
        out = run1(src, {"o": np.zeros(4, np.float32)}, ["o"], backend=backend)["o"]
        assert list(out) == [3.0, 5.0, 7.0, 9.0]

    def test_component_write(self, backend):
        src = """__kernel void k(__global float* o) {
            float4 v = (float4)(0.0f);
            v.x = 1.0f; v.w = 4.0f;
            o[0] = v.x + v.y + v.z + v.w;
        }"""
        assert run1(src, {"o": np.zeros(1, np.float32)}, ["o"], backend=backend)["o"][0] == 5.0

    def test_swizzle_read_and_write(self, backend):
        src = """__kernel void k(__global float* o) {
            float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            float2 w = v.wx;
            v.xy = (float2)(9.0f, 8.0f);
            o[0] = w.x; o[1] = w.y; o[2] = v.x; o[3] = v.y;
        }"""
        out = run1(src, {"o": np.zeros(4, np.float32)}, ["o"], backend=backend)["o"]
        assert list(out) == [4.0, 1.0, 9.0, 8.0]

    def test_vector_value_semantics_on_assignment(self, backend):
        src = """__kernel void k(__global float* o) {
            float2 a = (float2)(1.0f, 2.0f);
            float2 b = a;
            b.x = 99.0f;
            o[0] = a.x;
        }"""
        assert run1(src, {"o": np.zeros(1, np.float32)}, ["o"], backend=backend)["o"][0] == 1.0

    def test_vector_load_store_through_pointer(self, backend):
        src = """__kernel void k(__global float4* v, __global float* o) {
            float4 x = v[0];
            v[1] = x * x;
            o[0] = x.y;
        }"""
        arrays = {"v": np.array([1, 2, 3, 4, 0, 0, 0, 0], np.float32), "o": np.zeros(1, np.float32)}
        out = run1(src, arrays, ["v", "o"], backend=backend)
        assert out["o"][0] == 2.0
        assert list(out["v"][4:]) == [1.0, 4.0, 9.0, 16.0]

    def test_vector_compare_and_select(self, backend):
        src = """__kernel void k(__global int* o) {
            int4 a = (int4)(1, 5, 3, 7);
            int4 b = (int4)(4, 2, 3, 9);
            int4 m = a < b;
            o[0] = m.x; o[1] = m.y; o[2] = m.z; o[3] = m.w;
        }"""
        out = run1(src, {"o": np.zeros(4, np.int32)}, ["o"], backend=backend)["o"]
        assert list(out) == [-1, 0, 0, -1]


class TestBarriers:
    def test_local_memory_reverse(self, backend):
        src = """__kernel void k(__global const int* in, __global int* out) {
            __local int tile[8];
            int lid = get_local_id(0);
            tile[lid] = in[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tile[7 - lid];
        }"""
        arrays = {"in": np.arange(8, dtype=np.int32), "out": np.zeros(8, np.int32)}
        out = run1(src, arrays, ["in", "out"], n=8, local=8, backend=backend)["out"]
        assert list(out) == list(range(7, -1, -1))

    def test_barrier_per_group_isolation(self, backend):
        src = """__kernel void k(__global const int* in, __global int* out) {
            __local int tile[4];
            int lid = get_local_id(0);
            tile[lid] = in[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tile[3 - lid];
        }"""
        arrays = {"in": np.arange(8, dtype=np.int32), "out": np.zeros(8, np.int32)}
        out = run1(src, arrays, ["in", "out"], n=8, local=4, backend=backend)["out"]
        assert list(out) == [3, 2, 1, 0, 7, 6, 5, 4]

    def test_barrier_divergence_detected(self, backend):
        pytest.importorskip("repro.ocl")
        from repro.ocl import Context, Program, TEST_DEVICE

        src = """__kernel void k(__global int* o) {
            if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
            o[get_global_id(0)] = 1;
        }"""
        ctx = Context.create(TEST_DEVICE)
        buf = ctx.create_buffer(8 * 4)
        program = Program(src).build()
        kernel = program.create_kernel("k").set_args(buf)
        with pytest.raises(KernelFault):
            ctx.queues[0].enqueue_nd_range_kernel(kernel, (8,), (8,))


class TestVloadVstore:
    def test_vload4_reads_consecutive(self, backend):
        src = """__kernel void k(__global const float* in, __global float* o) {
            float4 v = vload4(1, in);
            o[0] = v.x; o[1] = v.y; o[2] = v.z; o[3] = v.w;
        }"""
        arrays = {"in": np.arange(8, dtype=np.float32), "o": np.zeros(4, np.float32)}
        out = run1(src, arrays, ["in", "o"], backend=backend)["o"]
        assert list(out) == [4.0, 5.0, 6.0, 7.0]

    def test_vstore2_writes_consecutive(self, backend):
        src = """__kernel void k(__global float* o) {
            float2 v = (float2)(9.0f, 8.0f);
            vstore2(v, 1, o);
        }"""
        out = run1(src, {"o": np.zeros(4, np.float32)}, ["o"], backend=backend)["o"]
        assert list(out) == [0.0, 0.0, 9.0, 8.0]

    def test_vload_counts_memory_traffic(self, backend):
        src = """__kernel void k(__global const float* in, __global float* o) {
            float4 v = vload4(0, in);
            o[0] = v.x;
        }"""
        arrays = {"in": np.zeros(4, np.float32), "o": np.zeros(1, np.float32)}
        _, counters = run_kernel(src, "k", arrays, ["in", "o"], 1, backend=backend)
        assert counters.memory.global_loads == 4

    def test_vload_out_of_bounds_faults(self, backend):
        src = """__kernel void k(__global const float* in, __global float* o) {
            float4 v = vload4(1, in);
            o[0] = v.x;
        }"""
        arrays = {"in": np.zeros(4, np.float32), "o": np.zeros(1, np.float32)}
        with pytest.raises(KernelFault):
            run1(src, arrays, ["in", "o"], backend=backend)
