"""Hypothesis property tests over OpenCL vector-type semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from .helpers import run_both

_FLOATS = st.floats(-8, 8, width=32)


class TestVectorArithmetic:
    @given(
        a=st.lists(_FLOATS, min_size=4, max_size=4),
        b=st.lists(_FLOATS, min_size=4, max_size=4),
        op=st.sampled_from(["+", "-", "*"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_elementwise_ops_agree_with_numpy(self, a, b, op):
        src = f"""__kernel void k(__global const float* pa, __global const float* pb,
                                  __global float* o) {{
            float4 va = vload4(0, pa);
            float4 vb = vload4(0, pb);
            float4 vc = va {op} vb;
            vstore4(vc, 0, o);
        }}"""
        arrays = {
            "pa": np.array(a, np.float32),
            "pb": np.array(b, np.float32),
            "o": np.zeros(4, np.float32),
        }
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["pa", "pb", "o"], 1)
        np.testing.assert_allclose(c_res["o"], i_res["o"], rtol=1e-5, atol=1e-5)
        expected = {
            "+": np.array(a, np.float32) + np.array(b, np.float32),
            "-": np.array(a, np.float32) - np.array(b, np.float32),
            "*": np.array(a, np.float32) * np.array(b, np.float32),
        }[op]
        np.testing.assert_allclose(c_res["o"], expected, rtol=1e-5, atol=1e-5)

    @given(values=st.lists(_FLOATS, min_size=4, max_size=4), scalar=_FLOATS)
    @settings(max_examples=30, deadline=None)
    def test_scalar_broadcast(self, values, scalar):
        src = """__kernel void k(__global const float* p, __global float* o, float s) {
            float4 v = vload4(0, p);
            vstore4(v * s + 1.0f, 0, o);
        }"""
        arrays = {"p": np.array(values, np.float32), "o": np.zeros(4, np.float32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["p", "o", float(scalar)], 1)
        np.testing.assert_allclose(c_res["o"], i_res["o"], rtol=1e-5, atol=1e-5)
        expected = np.array(values, np.float32) * np.float32(scalar) + 1.0
        np.testing.assert_allclose(c_res["o"], expected, rtol=1e-4, atol=1e-4)

    @given(values=st.lists(_FLOATS, min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_swizzle_identities(self, values):
        src = """__kernel void k(__global const float* p, __global float* o) {
            float4 v = vload4(0, p);
            float4 w = v.wzyx;
            float4 u = w.wzyx;      // double reverse == identity
            vstore4(u, 0, o);
            o[4] = v.lo.x + v.hi.y; // v.x + v.w
        }"""
        arrays = {"p": np.array(values, np.float32), "o": np.zeros(5, np.float32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["p", "o"], 1)
        np.testing.assert_allclose(c_res["o"], i_res["o"], rtol=1e-6)
        np.testing.assert_allclose(c_res["o"][:4], np.array(values, np.float32), rtol=1e-6)
        assert c_res["o"][4] == pytest.approx(
            np.float32(values[0]) + np.float32(values[3]), rel=1e-5
        )

    @given(
        a=st.lists(_FLOATS, min_size=4, max_size=4),
        b=st.lists(_FLOATS, min_size=4, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_dot_matches_numpy(self, a, b):
        src = """__kernel void k(__global const float* pa, __global const float* pb,
                                 __global float* o) {
            o[0] = dot(vload4(0, pa), vload4(0, pb));
        }"""
        arrays = {
            "pa": np.array(a, np.float32),
            "pb": np.array(b, np.float32),
            "o": np.zeros(1, np.float32),
        }
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["pa", "pb", "o"], 1)
        expected = float(np.dot(np.array(a, np.float64), np.array(b, np.float64)))
        assert c_res["o"][0] == pytest.approx(expected, rel=1e-4, abs=1e-4)
        assert i_res["o"][0] == pytest.approx(expected, rel=1e-3, abs=1e-3)

    @given(
        ints=st.lists(st.integers(-100, 100), min_size=4, max_size=4),
        shift=st.integers(0, 7),
    )
    @settings(max_examples=30, deadline=None)
    def test_integer_vector_ops(self, ints, shift):
        src = f"""__kernel void k(__global const int* p, __global int* o) {{
            int4 v = vload4(0, p);
            int4 w = (v << {shift}) ^ v;
            vstore4(w, 0, o);
        }}"""
        arrays = {"p": np.array(ints, np.int32), "o": np.zeros(4, np.int32)}
        (c_res, _), (i_res, _) = run_both(src, "k", arrays, ["p", "o"], 1)
        np.testing.assert_array_equal(c_res["o"], i_res["o"])
        expected = ((np.array(ints, np.int32) << shift) ^ np.array(ints, np.int32))
        np.testing.assert_array_equal(c_res["o"], expected)
