"""Pretty-printer tests: structural round-trips and hypothesis-generated
expression trees.

The key property: ``parse(print(parse(src)))`` produces the same tree
as ``parse(src)`` (up to spans), and printed programs still compile and
run identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernelc import ast, compile_source
from repro.kernelc.parser import parse
from repro.kernelc.printer import print_expr, print_program

from .helpers import run_kernel


def structurally_equal(a: ast.Node, b: ast.Node) -> bool:
    if type(a) is not type(b):
        return False
    skip = {"span", "ctype", "is_lvalue"}
    for name in vars(a):
        if name in skip:
            continue
        va, vb = getattr(a, name), getattr(b, name, None)
        if isinstance(va, ast.Node):
            if not structurally_equal(va, vb):
                return False
        elif isinstance(va, (list, tuple)):
            if len(va) != len(vb):
                return False
            for xa, xb in zip(va, vb):
                if isinstance(xa, ast.Node):
                    if not structurally_equal(xa, xb):
                        return False
                elif xa != xb:
                    return False
        elif va != vb:
            return False
    return True


def roundtrip(source: str) -> None:
    first = parse(source)
    printed = print_program(first)
    second = parse(printed)
    assert structurally_equal(first, second), printed


class TestRoundTrips:
    def test_simple_kernel(self):
        roundtrip("""
        __kernel void k(__global const float* a, __global float* o, int n) {
            int gid = get_global_id(0);
            if (gid < n) { o[gid] = a[gid] * 2.0f; }
        }""")

    def test_control_flow(self):
        roundtrip("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; ++i) {
                if (i % 2 == 0) continue;
                s += i;
                if (s > 100) break;
            }
            while (s > 0) { --s; }
            do { ++s; } while (s < 3);
            return s;
        }""")

    def test_switch(self):
        roundtrip("""
        int f(int x) {
            switch (x) {
                case 1: return 10;
                case 2: x += 1;
                default: return x;
            }
            return 0;
        }""")

    def test_operator_precedence_preserved(self):
        roundtrip("int f(int a, int b, int c) { return a + b * c - (a + b) * c; }")

    def test_nested_ternary(self):
        roundtrip("int f(int a, int b) { return a ? b ? 1 : 2 : 3; }")

    def test_assignment_chains(self):
        roundtrip("void f(int a, int b) { a = b = 3; a += b -= 1; }")

    def test_unary_mix(self):
        roundtrip("int f(int x) { return -~!x + +x - -x; }")

    def test_pointer_operations(self):
        roundtrip("""
        float f(__global float* p, int i) {
            __global float* q = p + i;
            return *q + q[1] + (q - p);
        }""")

    def test_vector_code(self):
        roundtrip("""
        float f(float4 v) {
            float4 w = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
            w.x = v.y;
            return dot(v, w) + w.lo.x;
        }""")

    def test_local_arrays_and_barrier(self):
        roundtrip("""
        __kernel void k(__global int* o) {
            __local int tile[4][5];
            tile[get_local_id(1)][get_local_id(0)] = 1;
            barrier(CLK_LOCAL_MEM_FENCE);
            o[0] = tile[0][0];
        }""")

    def test_array_initializers(self):
        roundtrip("""
        int f() {
            int w[4] = { 1, -2, 3, 4 };
            return w[0];
        }""")

    def test_constant_globals(self):
        roundtrip("""
        __constant float SCALE = 2.5f;
        __constant int W[3] = { 1, 2, 1 };
        float f(float x) { return x * SCALE + W[1]; }
        """)

    def test_sizeof_forms(self):
        roundtrip("int f(float x) { return sizeof(float4) + sizeof x; }")

    def test_casts(self):
        roundtrip("int f(float x) { return (int)x + (int)(uchar)x; }")

    def test_comma_in_for(self):
        roundtrip("void f(int n) { for (int i = 0; i < n; ++i, --n) { } }")

    def test_double_negation_spacing(self):
        # "-(-x)" must not print as "--x" (predecrement).
        roundtrip("int f(int x) { return -(-x) + (- -x); }")

    def test_printed_sobel_kernel_compiles_and_runs(self, rng):
        from repro.apps.sobel import SOBEL_FUNC
        import repro.skelcl as skelcl
        from repro import ocl

        skelcl.init(1, ocl.TEST_DEVICE)
        try:
            app_source = __import__("repro.apps.sobel", fromlist=["SobelEdgeDetection"])
            stencil = app_source.SobelEdgeDetection().map_overlap
            source = stencil.matrix_source()
        finally:
            skelcl.terminate()
        program = parse(__import__("repro.kernelc.preprocessor", fromlist=["preprocess"]).preprocess(source))
        printed = print_program(program)
        recompiled = compile_source(printed)
        assert any(k.name == "skelcl_mapoverlap_m" for k in recompiled.kernels())


# -- hypothesis: generated expressions survive the round trip ---------------

_LEAF = st.sampled_from(["x", "y", "1", "2", "7"])
_BINOPS = st.sampled_from(list("+-*&|^") + ["<<", ">>", "<", ">", "==", "!=", "&&", "||"])


def expr_strategy(depth=3):
    if depth == 0:
        return _LEAF
    return st.one_of(
        _LEAF,
        st.tuples(_BINOPS, expr_strategy(depth - 1), expr_strategy(depth - 1)).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"
        ),
        expr_strategy(depth - 1).map(lambda e: f"(- {e})"),
        expr_strategy(depth - 1).map(lambda e: f"(~{e})"),
        expr_strategy(depth - 1).map(lambda e: f"(!{e})"),
        st.tuples(expr_strategy(depth - 1), expr_strategy(depth - 1), expr_strategy(depth - 1)).map(
            lambda t: f"({t[0]} ? {t[1]} : {t[2]})"
        ),
    )


class TestRoundTripProperties:
    @given(expr=expr_strategy())
    @settings(max_examples=80, deadline=None)
    def test_expression_roundtrip(self, expr):
        source = f"int f(int x, int y) {{ return {expr}; }}"
        roundtrip(source)

    @given(expr=expr_strategy(depth=2), x=st.integers(-9, 9), y=st.integers(-9, 9))
    @settings(max_examples=40, deadline=None)
    def test_printed_program_computes_identically(self, expr, x, y):
        source = f"__kernel void k(__global long* o, int x, int y) {{ o[0] = (long)({expr}); }}"
        printed = print_program(parse(source))
        arrays = {"o": np.zeros(1, np.int64)}
        original, _ = run_kernel(source, "k", {k: v.copy() for k, v in arrays.items()}, ["o", x, y], 1)
        reprinted, _ = run_kernel(printed, "k", {k: v.copy() for k, v in arrays.items()}, ["o", x, y], 1)
        assert original["o"][0] == reprinted["o"][0]
