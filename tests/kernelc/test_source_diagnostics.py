"""SourceFile/Span bookkeeping and diagnostic rendering tests."""

import pytest

from repro.kernelc import compile_source
from repro.kernelc.diagnostics import CompileError, Diagnostic, DiagnosticSink, Severity
from repro.kernelc.source import SourceFile


class TestSourceFile:
    def test_offset_to_location(self):
        source = SourceFile("abc\ndef\nghi")
        assert str(source.location(0)) == "1:1"
        assert str(source.location(4)) == "2:1"
        assert str(source.location(6)) == "2:3"
        assert str(source.location(10)) == "3:3"

    def test_offset_clamped(self):
        source = SourceFile("ab")
        assert source.location(100).offset == 2
        assert source.location(-5).offset == 0

    def test_line_text(self):
        source = SourceFile("first\nsecond\nthird")
        assert source.line_text(2) == "second"
        assert source.line_text(3) == "third"
        assert source.line_text(99) == ""

    def test_span_merge(self):
        source = SourceFile("hello world")
        a = source.span(0, 5)
        b = source.span(6, 11)
        merged = a.merge(b)
        assert merged.start.offset == 0 and merged.end.offset == 11

    def test_snippet_has_caret_under_span(self):
        source = SourceFile("int x = oops;")
        span = source.span(8, 12)
        snippet = source.snippet(span)
        lines = snippet.split("\n")
        assert lines[0] == "int x = oops;"
        assert lines[1] == "        ^^^^"

    def test_snippet_multiline_span_extends_to_eol(self):
        source = SourceFile("abcdef\nxyz")
        span = source.span(2, 9)
        caret_line = source.snippet(span).split("\n")[1]
        assert caret_line == "  ^^^^"


class TestDiagnostics:
    def test_error_rendering_contains_location_and_snippet(self):
        with pytest.raises(CompileError) as excinfo:
            compile_source("void f() { undeclared_thing = 1; }", name="myfile.cl")
        text = str(excinfo.value)
        assert "myfile.cl:1:" in text
        assert "undeclared identifier" in text
        assert "^" in text  # caret snippet present

    def test_multiple_errors_collected(self):
        with pytest.raises(CompileError) as excinfo:
            compile_source("void f() { a = 1; b = 2; }")
        assert len(excinfo.value.diagnostics) == 2

    def test_sink_severities(self):
        sink = DiagnosticSink()
        sink.note("fyi")
        sink.warning("hmm")
        assert not sink.has_errors
        sink.check()  # no error -> no raise
        sink.error("bad")
        assert sink.has_errors
        assert len(sink.errors) == 1
        assert len(sink.warnings) == 1
        with pytest.raises(CompileError):
            sink.check()

    def test_diagnostic_without_span_renders(self):
        diagnostic = Diagnostic(Severity.ERROR, "broken")
        assert diagnostic.render() == "error: broken"

    def test_parse_error_points_at_offending_token(self):
        with pytest.raises(CompileError) as excinfo:
            compile_source("void f() {\n    int x = ;\n}")
        assert ":2:" in str(excinfo.value)

    def test_synthetic_span_renders_like_spanless(self):
        # Regression: BUILTIN_SPAN points at line 0, which used to render
        # a bogus "<kernel>:0:0:" prefix plus an empty snippet.  Spans
        # without a real source line must render exactly like spanless
        # diagnostics, with or without a SourceFile at hand.
        from repro.kernelc.source import BUILTIN_SPAN

        diagnostic = Diagnostic(Severity.WARNING, "synthetic", BUILTIN_SPAN)
        source = SourceFile("int x;", "file.cl")
        assert diagnostic.render() == "warning: synthetic"
        assert diagnostic.render(source) == "warning: synthetic"
        spanless = Diagnostic(Severity.WARNING, "synthetic")
        assert diagnostic.render(source) == spanless.render(source)

    def test_located_span_still_renders_with_snippet(self):
        source = SourceFile("int x = 1;", "file.cl")
        diagnostic = Diagnostic(Severity.ERROR, "nope", source.span(4, 5))
        text = diagnostic.render(source)
        assert text.startswith("file.cl:1:5: error: nope")
        assert "^" in text
