"""The serving scheduler: weighted fairness, admission control, quotas,
launch batching, and the serve metrics surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import serve


DOUBLE = "float f(float x) { return 2.0f * x; }"
ADD = "float f(float x, float y) { return x + y; }"


@pytest.fixture(autouse=True)
def _teardown():
    yield
    skelcl.terminate()


def _flood(client, skeleton, n_jobs, size, rng, base=0.0):
    jobs = []
    for i in range(n_jobs):
        jobs.append(client.submit_map(
            skeleton, rng.rand(size).astype(np.float32) + base + i))
    return jobs


class TestWeightedFairness:
    def test_two_to_one_weights_give_two_to_one_device_ns(self, rng):
        """The headline DRR property: with both tenants backlogged the
        whole time, a 2:1 weight ratio yields ~2:1 device-ns."""
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], quantum_ns=12_000,
                          batching=False) as server:
            heavy = server.client("heavy", weight=2.0)
            light = server.client("light", weight=1.0)
            heavy_jobs, light_jobs = [], []
            # Identical offered load: same job count, same sizes.
            for i in range(60):
                heavy_jobs.append(heavy.submit_map(
                    double, rng.rand(4096).astype(np.float32)))
                light_jobs.append(light.submit_map(
                    double, rng.rand(4096).astype(np.float32)))
            server.drain()
        # Fairness is a property of the contended window: once the
        # favoured tenant's backlog empties, the other gets the whole
        # device and the *totals* converge.  Compare device-ns up to
        # the moment the heavy tenant finished.
        heavy_done = max(job.end_ns for job in heavy_jobs)
        heavy_ns = sum(job.cost_ns for job in heavy_jobs)
        light_ns = sum(job.cost_ns for job in light_jobs
                       if job.end_ns <= heavy_done)
        ratio = heavy_ns / light_ns
        assert 2.0 * 0.85 <= ratio <= 2.0 * 1.15

    def test_equal_weights_split_evenly(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], quantum_ns=50_000) as server:
            a = server.client("a")
            b = server.client("b")
            for i in range(30):
                a.submit_map(double, rng.rand(4096).astype(np.float32))
                b.submit_map(double, rng.rand(4096).astype(np.float32))
            server.drain()
            ratio = (server.tenants["a"].device_ns_total
                     / server.tenants["b"].device_ns_total)
        assert 0.85 <= ratio <= 1.15

    def test_fairness_gauge_near_one_for_proportional_shares(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], quantum_ns=50_000) as server:
            a = server.client("a", weight=2.0)
            b = server.client("b")
            # Offered load matching the weights: after a full drain the
            # realized shares are proportional, so Jain's index over
            # the weight-normalized shares sits at ~1.
            _flood(a, double, 40, 4096, rng)
            _flood(b, double, 20, 4096, rng)
            server.drain()
            jain = server.metrics.value("skelcl_serve_weighted_fairness")
        assert jain > 0.95

    def test_empty_queue_banks_no_credit(self, rng):
        """A tenant idle for the first drain must not burst past its
        weight in the second — DRR zeroes the deficit of empty queues."""
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], quantum_ns=50_000) as server:
            a = server.client("a")
            b = server.client("b")
            _flood(a, double, 20, 4096, rng)
            server.drain()  # b idle throughout
            assert server.tenants["b"].deficit == 0.0
            first_round_a = server.tenants["a"].device_ns_total
            _flood(a, double, 20, 4096, rng)
            _flood(b, double, 20, 4096, rng)
            server.drain()
            # Equal weights in round two: b (idle in round one) gets a
            # fair share of it, not a catch-up burst.
            second_a = server.tenants["a"].device_ns_total - first_round_a
            second_b = server.tenants["b"].device_ns_total
        assert second_b > 0
        assert 0.85 <= second_a / second_b <= 1.15


class TestFifoBaseline:
    def test_fifo_dispatches_in_admission_order(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], policy="fifo") as server:
            a = server.client("a")
            b = server.client("b")
            jobs = []
            for i in range(6):
                jobs.append((a if i % 2 == 0 else b).submit_map(
                    double, rng.rand(256).astype(np.float32)))
            server.drain()
            starts = [job.start_ns for job in jobs]
        assert starts == sorted(starts)

    def test_fifo_ignores_weights(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], policy="fifo") as server:
            heavy = server.client("heavy", weight=10.0)
            light = server.client("light")
            for i in range(10):
                heavy.submit_map(double, rng.rand(2048).astype(np.float32))
                light.submit_map(double, rng.rand(2048).astype(np.float32))
            server.drain()
            ratio = (server.tenants["heavy"].device_ns_total
                     / server.tenants["light"].device_ns_total)
        assert 0.8 <= ratio <= 1.25  # weight 10 had no effect

    def test_unknown_policy_is_an_error(self):
        with pytest.raises(serve.ServeError, match="drr, fifo"):
            serve.Server(devices=["test"], policy="magic")
        skelcl.terminate()


class TestAdmissionControl:
    def test_queue_depth_backpressure(self, rng):
        double = skelcl.Map(DOUBLE)
        quota = serve.TenantQuota(max_queue_depth=4)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t", quota=quota)
            _flood(client, double, 4, 64, rng)
            with pytest.raises(serve.Backpressure, match="queue is full"):
                client.submit_map(double, rng.rand(64).astype(np.float32))
            assert server.tenants["t"].jobs_rejected == 1
            assert server.metrics.value(
                "skelcl_serve_jobs_total", tenant="t", outcome="rejected") == 1
            # A drain empties the queue; submits are accepted again.
            server.drain()
            client.submit_map(double, rng.rand(64).astype(np.float32))
            server.drain()
            assert server.tenants["t"].jobs_completed == 5

    def test_inflight_bytes_quota(self, rng):
        double = skelcl.Map(DOUBLE)
        quota = serve.TenantQuota(max_inflight_bytes=4096)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t", quota=quota)
            client.submit_map(double, np.zeros(512, dtype=np.float32))  # 2048 B
            with pytest.raises(serve.QuotaExceeded, match="byte"):
                client.submit_map(double, np.zeros(1024, dtype=np.float32))
            # Bytes are released at completion: after a drain it fits.
            server.drain()
            client.submit_map(double, np.zeros(1024, dtype=np.float32))
            server.drain()
            assert server.tenants["t"].inflight_bytes == 0

    def test_rejected_graph_submit_discards_recorded_nodes(self, rng):
        """Graph input bytes are only known after recording, so the byte
        quota rejects *after* ``fn`` ran — the recorded nodes must be
        discarded, not left pending in the plan."""
        double = skelcl.Map(DOUBLE)
        quota = serve.TenantQuota(max_inflight_bytes=300)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t", quota=quota)
            v = skelcl.Vector(data=rng.rand(64).astype(np.float32))  # 256 B
            client.submit(lambda: double(v))
            with pytest.raises(serve.QuotaExceeded):
                client.submit(lambda: double(double(v)))
            # The rejected submit's nodes must not linger in the plan.
            assert len(server.planner.pending) == 1  # the accepted job
            assert server.metrics.value(
                "skelcl_plan_discarded_total", op="map") == 2
            server.drain()

    def test_window_quota_defers_and_fast_forwards(self, rng):
        """A tenant at its per-window device-ns cap stalls until its
        window rolls; with no other runnable tenant the serving clock
        fast-forwards instead of spinning."""
        double = skelcl.Map(DOUBLE)
        quota = serve.TenantQuota(max_device_ns_per_window=1,
                                  window_ns=1_000_000)
        with serve.Server(devices=["test"], batching=False) as server:
            client = server.client("t", quota=quota)
            jobs = _flood(client, double, 3, 1024, rng)
            server.drain()
            assert all(job.done for job in jobs)
            # Each window admits one dispatch (cap 1 ns < any job), so
            # later jobs completed in later windows — and the clock
            # fast-forwarded across the stalls.
            assert server.metrics.value("skelcl_serve_idle_ns_total") > 0
            ends = sorted(job.end_ns for job in jobs)
            assert ends[1] - ends[0] >= quota.window_ns // 2


class TestBatching:
    def test_small_compatible_maps_fuse_into_one_launch(self, rng):
        double = skelcl.Map(DOUBLE)
        arrays = [rng.rand(128).astype(np.float32) for _ in range(6)]
        with serve.Server(devices=["test"], batch_max_jobs=8) as server:
            client = server.client("t")
            jobs = [client.submit_map(double, a) for a in arrays]
            server.drain()
            launches = sum(
                1 for queue in server.session.queues
                for event in queue.events
                if event.command_type == "ndrange_kernel")
            for job, a in zip(jobs, arrays):
                assert np.allclose(job.result(), 2.0 * a)
            assert all(job.batched for job in jobs)
            assert launches < len(jobs)
            assert server.metrics.value(
                "skelcl_serve_batched_jobs_total", tenant="t") == 6

    def test_batching_respects_batch_key(self, rng):
        double = skelcl.Map(DOUBLE)
        inc = skelcl.Map("float f(float x) { return x + 1.0f; }")
        a1 = rng.rand(64).astype(np.float32)
        a2 = rng.rand(64).astype(np.float32)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t")
            j1 = client.submit_map(double, a1)
            j2 = client.submit_map(inc, a2)  # different skeleton: no fuse
            server.drain()
            assert not j1.batched and not j2.batched
            assert np.allclose(j1.result(), 2.0 * a1)
            assert np.allclose(j2.result(), a2 + 1.0)

    def test_large_jobs_are_not_batched(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], batch_max_elements=64) as server:
            client = server.client("t")
            jobs = [client.submit_map(double, rng.rand(256).astype(np.float32))
                    for _ in range(3)]
            server.drain()
            assert not any(job.batched for job in jobs)

    def test_fifo_never_batches(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"], policy="fifo") as server:
            client = server.client("t")
            jobs = _flood(client, double, 4, 64, rng)
            server.drain()
            assert not any(job.batched for job in jobs)

    def test_batched_results_bit_exact_vs_unbatched(self, rng):
        double = skelcl.Map(DOUBLE)
        arrays = [rng.rand(200).astype(np.float32) for _ in range(5)]
        with serve.Server(devices=["test"], batching=False) as server:
            client = server.client("t")
            solo = [client.submit_map(double, a) for a in arrays]
            server.drain()
            solo_results = [job.result() for job in solo]
        with serve.Server(devices=["test"], batching=True) as server:
            client = server.client("t")
            batched = [client.submit_map(double, a) for a in arrays]
            server.drain()
            for job, expect in zip(batched, solo_results):
                assert np.array_equal(job.result(), expect)


class TestJobsAndResults:
    def test_graph_job_defers_until_drain(self, rng):
        mult = skelcl.Zip("float f(float x, float y) { return x * y; }")
        total = skelcl.Reduce(ADD)
        with serve.Server(devices=["test", "test"]) as server:
            client = server.client("t")
            va = skelcl.Vector(data=np.arange(64, dtype=np.float32))
            vb = skelcl.Vector(data=np.full(64, 2.0, dtype=np.float32))
            job = client.submit(lambda: total(mult(va, vb)))
            # Nothing ran yet: no kernels on any queue.
            kernels = sum(
                1 for queue in server.session.queues
                for event in queue.events
                if event.command_type == "ndrange_kernel")
            assert kernels == 0
            with pytest.raises(serve.ServeError, match="drain"):
                job.result()
            server.drain()
            assert float(job.result().get_value()) == float(np.arange(64).sum() * 2)
            assert job.latency_ns is not None and job.latency_ns > 0

    def test_job_latency_includes_queueing_delay(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t")
            jobs = _flood(client, double, 8, 4096, rng)
            server.drain()
            # Later-dispatched jobs waited behind earlier ones.
            assert jobs[-1].latency_ns >= jobs[-1].cost_ns

    def test_advance_clock_shapes_arrivals(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t")
            j1 = client.submit_map(double, rng.rand(64).astype(np.float32))
            server.advance_clock(500_000)
            j2 = client.submit_map(double, rng.rand(64).astype(np.float32))
            assert j2.arrival_ns - j1.arrival_ns >= 500_000
            server.drain()

    def test_duplicate_tenant_name_is_an_error(self):
        with serve.Server(devices=["test"]) as server:
            server.client("t")
            with pytest.raises(serve.ServeError, match="already exists"):
                server.client("t")

    def test_closed_client_rejects_submits(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"]) as server:
            client = server.client("t")
            client.close()
            with pytest.raises(serve.ServeError, match="closed"):
                client.submit_map(double, rng.rand(8).astype(np.float32))

    def test_invalid_quota_values_rejected(self):
        with pytest.raises(ValueError):
            serve.TenantQuota(max_queue_depth=0)
        with pytest.raises(ValueError):
            serve.TenantQuota(window_ns=0)
        with pytest.raises(ValueError):
            serve.TenantQuota(max_inflight_bytes=-1)

    def test_invalid_weight_rejected(self):
        with serve.Server(devices=["test"]) as server:
            with pytest.raises(serve.ServeError, match="weight"):
                server.client("t", weight=0.0)


class TestServeMetrics:
    def test_metrics_surface(self, rng):
        double = skelcl.Map(DOUBLE)
        with serve.Server(devices=["test"]) as server:
            a = server.client("a")
            b = server.client("b")
            _flood(a, double, 4, 512, rng)
            _flood(b, double, 2, 512, rng)
            stats = server.drain()
            m = server.metrics
            assert m.value("skelcl_serve_jobs_total",
                           tenant="a", outcome="accepted") == 4
            assert m.value("skelcl_serve_jobs_total",
                           tenant="a", outcome="completed") == 4
            assert m.value("skelcl_serve_tenant_ns_total", tenant="a") > 0
            assert m.value("skelcl_serve_queue_depth", tenant="a") == 0
            hist = m.histogram("skelcl_serve_latency_ns", tenant="b")
            assert hist.count == 2 and hist.max >= hist.min > 0
            share_a = m.value("skelcl_serve_tenant_share", tenant="a")
            share_b = m.value("skelcl_serve_tenant_share", tenant="b")
            assert abs(share_a + share_b - 1.0) < 1e-6
            assert stats["a"]["completed"] == 4
            assert stats["b"]["mean_latency_ns"] > 0
