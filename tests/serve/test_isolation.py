"""Tenant isolation under strict SkelSan: N interleaved tenants running
all six skeletons on the shared pool must be race-free and bit-exact
against each tenant running solo."""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import scope, serve
from repro.analysis import RaceError


@pytest.fixture(autouse=True)
def _teardown():
    yield
    skelcl.terminate()


def _skeletons():
    return {
        "map": skelcl.Map("float f(float x) { return -x; }"),
        "zip": skelcl.Zip("float f(float x, float y) { return x * y; }"),
        "reduce": skelcl.Reduce("float f(float x, float y) { return x + y; }"),
        "scan": skelcl.Scan("float f(float x, float y) { return x + y; }"),
        "overlap": skelcl.MapOverlap(
            "float func(float* v) { return get(v, -1) + get(v, 1); }",
            1, skelcl.SCL_NEUTRAL, 0.0),
        "allpairs": skelcl.AllPairs(
            skelcl.Reduce("float f(float x, float y) { return x + y; }"),
            zip=skelcl.Zip("float f(float x, float y) { return x * y; }")),
    }


def _tenant_data(seed: int):
    rng = np.random.RandomState(seed)
    return {
        "vec_a": rng.rand(256).astype(np.float32),
        "vec_b": rng.rand(256).astype(np.float32),
        "mat": rng.rand(12, 8).astype(np.float32),
    }


def _run_workload(sk, data):
    """All six skeletons over one tenant's data; returns the output
    containers (forced to numpy by the caller, *after* drain)."""
    va = skelcl.Vector(data=data["vec_a"])
    vb = skelcl.Vector(data=data["vec_b"])
    m = skelcl.Matrix(data=data["mat"])
    return {
        "map": sk["map"](va),
        "zip": sk["zip"](va, vb),
        "reduce": sk["reduce"](va),
        "scan": sk["scan"](vb),
        "overlap": sk["overlap"](skelcl.Vector(data=data["vec_a"])),
        "allpairs": sk["allpairs"](m, m),
    }


def _to_numpy(results):
    out = {}
    for name, container in results.items():
        if hasattr(container, "get_value"):
            out[name] = np.float32(container.get_value())
        else:
            out[name] = container.to_numpy()
    return out


def _solo_results(n_tenants: int):
    """Each tenant's workload run alone on an eager private session —
    the isolation baseline."""
    solo = []
    for seed in range(n_tenants):
        with skelcl.init(num_devices=2, spec=None, detect_races="strict"):
            sk = _skeletons()
            solo.append(_to_numpy(_run_workload(sk, _tenant_data(seed))))
        skelcl.terminate()
    return solo


N_TENANTS = 3


class TestInterleavedTenants:
    def test_six_skeletons_interleaved_bit_exact_and_race_free(self):
        solo = _solo_results(N_TENANTS)
        with serve.Server(devices=["test", "test"],
                          detect_races="strict") as server:
            sk = _skeletons()
            clients = [server.client(f"tenant-{i}", weight=1.0 + i)
                       for i in range(N_TENANTS)]
            jobs = []
            # Interleave: every tenant submits its whole workload before
            # any of it runs, so the drained command graph mixes all
            # tenants on the shared queues.
            for i, client in enumerate(clients):
                data = _tenant_data(i)
                jobs.append(client.submit(
                    lambda sk=sk, data=data: _run_workload(sk, data)))
            server.drain()  # strict SkelSan: any cross-tenant race raises
            for i, job in enumerate(jobs):
                got = _to_numpy(job.result())
                for name, expect in solo[i].items():
                    assert np.array_equal(got[name], expect), \
                        f"tenant {i} skeleton {name} diverged from solo run"

    def test_interleaved_trace_validates_with_tenant_tracks(self):
        with serve.Server(devices=["test", "test"],
                          detect_races="strict") as server:
            sk = _skeletons()
            for i in range(N_TENANTS):
                data = _tenant_data(i)
                server.client(f"tenant-{i}").submit(
                    lambda sk=sk, data=data: _run_workload(sk, data))
            server.drain()
            trace = scope.chrome_trace(server.session.context)
            assert scope.validate_trace(trace) == []
            track_names = {
                event["args"]["name"]
                for event in trace["traceEvents"]
                if event.get("ph") == "M" and event.get("name") == "thread_name"
            }
            for i in range(N_TENANTS):
                assert f"compute [tenant-{i}]" in track_names

    def test_fairness_gauges_populate_after_drain(self):
        with serve.Server(devices=["test"]) as server:
            sk = {"map": skelcl.Map("float f(float x) { return -x; }")}
            for i in range(2):
                data = _tenant_data(i)
                server.client(f"t{i}").submit(
                    lambda sk=sk, data=data: {"map": sk["map"](
                        skelcl.Vector(data=data["vec_a"]))})
            server.drain()
            jain = server.metrics.value("skelcl_serve_weighted_fairness")
            assert 0.0 < jain <= 1.0
            shares = [server.metrics.value("skelcl_serve_tenant_share",
                                           tenant=f"t{i}") for i in range(2)]
            assert abs(sum(shares) - 1.0) < 1e-6

    def test_quota_paths_under_strict_sanitizer(self):
        """Admission-control rejections interact safely with strict
        mode: rejected work leaves no pending nodes, accepted work still
        verifies race-free."""
        with serve.Server(devices=["test"],
                          detect_races="strict") as server:
            quota = serve.TenantQuota(max_queue_depth=2)
            client = server.client("t", quota=quota)
            double = skelcl.Map("float f(float x) { return 2.0f * x; }")
            data = np.arange(32, dtype=np.float32)
            jobs = [client.submit_map(double, data) for _ in range(2)]
            with pytest.raises(serve.Backpressure):
                client.submit_map(double, data)
            server.drain()
            for job in jobs:
                assert np.array_equal(job.result(), 2.0 * data)

    def test_strict_mode_verifies_interleaved_graphs_race_free(self):
        """The interleaved multi-tenant command graph passes strict
        SkelSan with *zero* recorded races — the coherence protocol
        keeps even shared-container submissions ordered."""
        double = skelcl.Map("float f(float x) { return 2.0f * x; }")
        with serve.Server(devices=["test", "test"],
                          detect_races="strict") as server:
            a = server.client("a")
            b = server.client("b")
            shared = skelcl.Vector(data=np.arange(64, dtype=np.float32))
            ja = a.submit(lambda: double(shared))
            jb = b.submit(lambda: double(shared))
            server.drain()
            assert server.session.context.check_races() == []
            expect = 2.0 * np.arange(64, dtype=np.float32)
            assert np.array_equal(ja.result().to_numpy(), expect)
            assert np.array_equal(jb.result().to_numpy(), expect)

    def test_sanitizer_is_armed_on_the_serve_context(self):
        """Strict mode on the server really raises for a genuine race:
        unordered raw writes to one buffer on the shared context."""
        with serve.Server(devices=["test"],
                          detect_races="strict") as server:
            ctx = server.session.context
            queue = ctx.queues[0]
            buffer = ctx.create_buffer(256, queue.device)
            queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
            with pytest.raises(RaceError, match="data race"):
                queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                           event_wait_list=[])
