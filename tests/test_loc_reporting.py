"""Tests for the LoC accounting and report rendering utilities."""

import pytest

from repro.loc import LocCount, combined, count_loc, count_reference, reference_sources, strip_comments
from repro.reporting import format_speedups, render_bars, render_table


class TestStripComments:
    def test_line_comments_removed(self):
        assert strip_comments("int x; // note\nint y;") == "int x; \nint y;"

    def test_block_comments_removed_preserving_lines(self):
        source = "a /* one\ntwo */ b"
        stripped = strip_comments(source)
        assert stripped.count("\n") == source.count("\n")
        assert "one" not in stripped and "two" not in stripped

    def test_inline_block_comment(self):
        assert strip_comments("int /* hi */ x;") == "int  x;"


class TestCountLoc:
    def test_blank_and_comment_lines_not_counted(self):
        source = """
// a comment

int x;
/* block
   comment */
int y;
"""
        count = count_loc(source)
        assert count.total == 2
        assert count.kernel == 0 and count.host == 2

    def test_kernel_guards_split_counts(self):
        source = """
int host_line;
// LOC: kernel begin
int kernel_line_1;
int kernel_line_2;
// LOC: kernel end
int other_host_line;
"""
        count = count_loc(source)
        assert count.kernel == 2
        assert count.host == 2
        assert count.total == 4

    def test_guard_lines_never_counted(self):
        source = "// LOC: kernel begin\n// LOC: kernel end\n"
        assert count_loc(source).total == 0

    def test_trailing_comment_line_still_counted(self):
        assert count_loc("int x; // trailing").total == 1

    def test_combined(self):
        total = combined(LocCount(10, 4, 6), LocCount(5, 1, 4))
        assert total == LocCount(15, 5, 10)

    def test_str(self):
        assert str(LocCount(10, 4, 6)) == "10 LoC (kernel: 4, host: 6)"


class TestReferenceSources:
    def test_all_eight_sources_present(self):
        names = set(reference_sources())
        assert names == {
            "dotproduct_opencl.c",
            "dotproduct_skelcl.cpp",
            "mandelbrot_cuda.cu",
            "mandelbrot_opencl.c",
            "mandelbrot_skelcl.cpp",
            "sobel_amd.cl",
            "sobel_nvidia.cl",
            "sobel_skelcl.cpp",
        }

    def test_paper_counts_pinned(self):
        # These are the paper's numbers; changing a reference source must
        # not silently drift them.
        expected = {
            "mandelbrot_cuda.cu": (49, 28, 21),
            "mandelbrot_opencl.c": (118, 28, 90),
            "mandelbrot_skelcl.cpp": (57, 26, 31),
            "dotproduct_opencl.c": (68, 9, 59),
            "sobel_amd.cl": (37, 37, 0),
            "sobel_nvidia.cl": (208, 208, 0),
        }
        for name, (total, kernel, host) in expected.items():
            count = count_reference(name)
            assert (count.total, count.kernel, count.host) == (total, kernel, host), name

    def test_unknown_reference_raises(self):
        with pytest.raises(FileNotFoundError):
            count_reference("nonexistent.c")


class TestRenderers:
    def test_table_alignment(self):
        table = render_table(["name", "value"], [("a", 1), ("longer", 22)], title="T")
        lines = table.split("\n")
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "22" in lines[4]
        # Columns align: 'value' header starts where the values do.
        assert lines[1].index("value") == lines[3].index("1")

    def test_bars_scale_to_peak(self):
        chart = render_bars({"big": 100.0, "small": 10.0}, unit="ms", width=50)
        lines = chart.split("\n")
        big_hashes = lines[0].count("#")
        small_hashes = lines[1].count("#")
        assert big_hashes == 50
        assert 4 <= small_hashes <= 6

    def test_bars_include_reference(self):
        chart = render_bars({"x": 1.0}, unit="ms", reference={"x": 2.0})
        assert "paper: 2" in chart

    def test_bars_empty(self):
        assert "(no data)" in render_bars({}, title="empty")

    def test_speedups(self):
        table = format_speedups({1: 2e6, 2: 1e6, 4: 0.5e6})
        assert "1.00x" in table and "2.00x" in table and "4.00x" in table
        assert "2.000 ms" in table
