"""Every skeleton, halo exchange, and redistribution runs race-free
under the strict SkelSan sanitizer.

These tests initialize the runtime with ``detect_races="strict"``, so
any conflicting command pair the library enqueues without a wait-list
ordering raises :class:`RaceError` on the spot — the transparent
whole-library check the sanitizer is for (also exercised suite-wide by
the CI ``sanitize`` job via ``SKELCL_SANITIZE=strict``).
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import (
    AllPairs,
    Block,
    Copy,
    Map,
    MapOverlap,
    Matrix,
    Overlap,
    Reduce,
    Scan,
    Vector,
    Zip,
)


@pytest.fixture(params=[1, 2, 3])
def strict_runtime(request):
    runtime = skelcl.init(num_devices=request.param, spec=ocl.TEST_DEVICE,
                          detect_races="strict")
    yield runtime
    skelcl.terminate()


def assert_clean(runtime):
    runtime.finish_all()
    assert runtime.context.check_races() == []


class TestSkeletonsUnderStrictSanitizer:
    def test_map(self, strict_runtime):
        data = np.arange(512, dtype=np.float32)
        result = Map("float func(float x) { return -x; }")(Vector(data=data))
        np.testing.assert_array_equal(result.to_numpy(), -data)
        assert_clean(strict_runtime)

    def test_zip(self, strict_runtime):
        a = np.arange(512, dtype=np.float32)
        b = np.ones(512, dtype=np.float32)
        result = Zip("float func(float x, float y) { return x + y; }")(
            Vector(data=a), Vector(data=b)
        )
        np.testing.assert_array_equal(result.to_numpy(), a + b)
        assert_clean(strict_runtime)

    def test_reduce(self, strict_runtime):
        data = np.arange(1024, dtype=np.float32)
        total = Reduce("float func(float x, float y) { return x + y; }")(
            Vector(data=data)
        )
        assert float(total) == pytest.approx(data.sum())
        assert_clean(strict_runtime)

    def test_scan(self, strict_runtime):
        data = np.arange(700, dtype=np.float32)
        result = Scan("float func(float x, float y) { return x + y; }")(
            Vector(data=data)
        )
        np.testing.assert_allclose(result.to_numpy(), np.cumsum(data), rtol=1e-5)
        assert_clean(strict_runtime)

    def test_mapoverlap_halo_exchange(self, strict_runtime):
        data = np.arange(600, dtype=np.float32)
        blur = MapOverlap(
            "float func(__local float* v) { return (v[-1] + v[0] + v[1]) / 3.0f; }",
            1,
        )
        result = blur(Vector(data=data)).to_numpy()
        expected = (data[:-2] + data[1:-1] + data[2:]) / 3.0
        np.testing.assert_allclose(result[1:-1], expected, rtol=1e-5)
        assert_clean(strict_runtime)

    def test_mapoverlap_iterated_reuses_output(self, strict_runtime):
        # Back-to-back stencils on the same containers: the second
        # launch writes chunks the first is still reading (WAR) unless
        # the library inserts the closure edges the detector checks.
        data = np.arange(300, dtype=np.float32)
        blur = MapOverlap(
            "float func(__local float* v) { return (v[-1] + v[0] + v[1]) / 3.0f; }",
            1,
        )
        vec = Vector(data=data)
        for _ in range(3):
            vec = blur(vec)
        assert_clean(strict_runtime)

    def test_allpairs(self, strict_runtime):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        b = np.ones((3, 6), dtype=np.float32)
        mult = Zip("float func(float x, float y) { return x * y; }")
        plus = Reduce("float func(float x, float y) { return x + y; }")
        result = AllPairs(plus, mult)(Matrix(data=a), Matrix(data=b))
        np.testing.assert_allclose(result.to_numpy(), a @ b.T, rtol=1e-5)
        assert_clean(strict_runtime)

    def test_allpairs_aliased_inputs(self, strict_runtime):
        # allpairs(P, P): A wants Block, B wants Copy — the library must
        # not tear down one side's chunks while the other still reads
        # them (caught by the sanitizer as a missing-edge race).
        p = np.arange(20, dtype=np.float32).reshape(5, 4)
        mult = Zip("float func(float x, float y) { return x * y; }")
        plus = Reduce("float func(float x, float y) { return x + y; }")
        matrix = Matrix(data=p)
        result = AllPairs(plus, mult)(matrix, matrix)
        np.testing.assert_allclose(result.to_numpy(), p @ p.T, rtol=1e-5)
        assert_clean(strict_runtime)


class TestRedistributionUnderStrictSanitizer:
    def test_block_to_overlap_halo_refresh(self, strict_runtime):
        data = np.arange(256, dtype=np.float32)
        vec = Vector(data=data)
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        vec.ensure_on_devices(Overlap(2))
        np.testing.assert_array_equal(vec.to_numpy(), data)
        assert_clean(strict_runtime)

    def test_block_to_copy_roundtrip(self, strict_runtime):
        data = np.arange(128, dtype=np.float32)
        vec = Vector(data=data)
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        vec.ensure_on_devices(Copy())
        vec.ensure_on_devices(Block())
        np.testing.assert_array_equal(vec.to_numpy(), data)
        assert_clean(strict_runtime)

    def test_compute_then_redistribute_then_compute(self, strict_runtime):
        data = np.arange(512, dtype=np.float32)
        double = Map("float func(float x) { return 2.0f * x; }")
        vec = double(Vector(data=data))
        vec.ensure_on_devices(Overlap(1))
        blur = MapOverlap(
            "float func(__local float* v) { return v[-1] + v[0] + v[1]; }", 1
        )
        result = blur(vec)
        assert result.to_numpy().shape == data.shape
        assert_clean(strict_runtime)
