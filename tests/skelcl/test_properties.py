"""Hypothesis property tests over the SkelCL core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import Block, Copy, Map, Overlap, Reduce, Scan, Single, Vector, Zip


@pytest.fixture(scope="module", autouse=True)
def module_runtime():
    skelcl.init(num_devices=3, spec=ocl.TEST_DEVICE)
    yield
    skelcl.terminate()


_DISTRIBUTIONS = st.sampled_from([
    Single(), Single(1), Copy(), Block(), Overlap(1), Overlap(7),
])


class TestContainerIntegrity:
    @given(
        size=st.integers(1, 300),
        sequence=st.lists(_DISTRIBUTIONS, min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_data_survives_any_redistribution_sequence(self, size, sequence):
        data = np.arange(size, dtype=np.float32)
        vec = Vector(data=data)
        for distribution in sequence:
            vec.ensure_on_devices(distribution)
            vec.mark_written_on_devices()  # force the next change to move data
            np.testing.assert_array_equal(vec.to_numpy(), data)
        np.testing.assert_array_equal(vec.to_numpy(), data)

    @given(
        size=st.integers(1, 200),
        writes=st.lists(st.tuples(st.integers(0, 199), st.floats(-100, 100, width=32)),
                        min_size=0, max_size=8),
        distribution=_DISTRIBUTIONS,
    )
    @settings(max_examples=40, deadline=None)
    def test_host_writes_visible_after_device_roundtrip(self, size, writes, distribution):
        reference = np.zeros(size, dtype=np.float32)
        vec = Vector(size)
        vec.ensure_on_devices(distribution)
        for index, value in writes:
            index %= size
            reference[index] = np.float32(value)
            vec[index] = value  # host write invalidates device copies
        vec.ensure_on_devices(distribution)
        vec.mark_written_on_devices()
        np.testing.assert_array_equal(vec.to_numpy(), reference)


class TestSkeletonAlgebra:
    @given(data=st.lists(st.floats(-10, 10, width=32), min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_scan_last_equals_reduce(self, data):
        array = np.array(data, dtype=np.float32)
        prefix = Scan("float f(float a, float b) { return a + b; }")
        total = Reduce("float f(float a, float b) { return a + b; }")
        scanned = prefix(Vector(data=array)).to_numpy()
        reduced = total(Vector(data=array)).get_value()
        assert scanned[-1] == pytest.approx(reduced, rel=1e-3, abs=1e-3)

    @given(data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_reduce_max_matches_numpy(self, data):
        array = np.array(data, dtype=np.int32)
        peak = Reduce("int f(int a, int b) { return a > b ? a : b; }",
                      identity="-2147483648")
        assert peak(Vector(data=array)).get_value() == array.max()

    @given(data=st.lists(st.floats(-5, 5, width=32), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_map_composition_equals_fused(self, data):
        array = np.array(data, dtype=np.float32)
        double = Map("float f(float x) { return 2.0f * x; }")
        add_one = Map("float f(float x) { return x + 1.0f; }")
        fused = Map("float f(float x) { return 2.0f * x + 1.0f; }")
        composed = add_one(double(Vector(data=array))).to_numpy()
        direct = fused(Vector(data=array)).to_numpy()
        np.testing.assert_allclose(composed, direct, rtol=1e-6)

    @given(data=st.lists(st.floats(-5, 5, width=32), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_zip_with_self_equals_map(self, data):
        array = np.array(data, dtype=np.float32)
        add = Zip("float f(float a, float b) { return a + b; }")
        double = Map("float f(float x) { return x + x; }")
        vec = Vector(data=array)
        zipped = add(vec, Vector(data=array)).to_numpy()
        mapped = double(Vector(data=array)).to_numpy()
        np.testing.assert_allclose(zipped, mapped, rtol=1e-6)

    @given(
        data=st.lists(st.integers(-50, 50), min_size=1, max_size=257),
    )
    @settings(max_examples=30, deadline=None)
    def test_scan_prefix_property(self, data):
        array = np.array(data, dtype=np.int32)
        prefix = Scan("int f(int a, int b) { return a + b; }")
        scanned = prefix(Vector(data=array)).to_numpy()
        np.testing.assert_array_equal(scanned, np.cumsum(array, dtype=np.int32))
