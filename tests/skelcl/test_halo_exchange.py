"""Redistribution fast paths: layout relabeling and halo-only exchange."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import Block, Copy, MapOverlap, Matrix, Overlap, SCL_NEUTRAL, Single, Vector


def pcie_bytes(runtime) -> int:
    return sum(q.total_pcie_bytes for q in runtime.queues)


def copy_buffer_bytes(runtime) -> int:
    return sum(
        int(e.info.get("bytes", 0))
        for q in runtime.queues
        for e in q.events
        if e.command_type == "copy_buffer"
    )


class TestRelabel:
    def test_single_gpu_block_to_overlap_is_free(self, runtime_1gpu):
        runtime = runtime_1gpu
        vec = Vector(data=np.arange(64, dtype=np.float32))
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        before = pcie_bytes(runtime)
        vec.ensure_on_devices(Overlap(3))
        assert pcie_bytes(runtime) == before
        assert vec.distribution == Overlap(3)
        np.testing.assert_array_equal(vec.to_numpy()[:5], np.arange(5, dtype=np.float32))

    def test_single_gpu_anything_to_anything_is_free(self, runtime_1gpu):
        runtime = runtime_1gpu
        vec = Vector(data=np.arange(32, dtype=np.float32))
        vec.ensure_on_devices(Single())
        vec.mark_written_on_devices()
        before = pcie_bytes(runtime)
        for distribution in (Copy(), Block(), Overlap(2), Single()):
            vec.ensure_on_devices(distribution)
        assert pcie_bytes(runtime) == before

    def test_overlap_to_block_keeps_buffers(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.arange(100, dtype=np.float32))
        vec.ensure_on_devices(Overlap(5))
        vec.mark_written_on_devices()
        before = pcie_bytes(runtime)
        vec.ensure_on_devices(Block())  # shrinking stored range: relabel
        assert pcie_bytes(runtime) == before
        np.testing.assert_array_equal(vec.to_numpy(), np.arange(100, dtype=np.float32))


class TestHaloExchange:
    def test_block_to_overlap_moves_only_halos(self, runtime_4gpu):
        runtime = runtime_4gpu
        n, d = 1 << 12, 16
        vec = Vector(data=np.arange(n, dtype=np.float32))
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        before = pcie_bytes(runtime)
        vec.set_distribution(Overlap(d))
        moved = pcie_bytes(runtime) - before
        halo_units = sum(c.stored_size for c in Overlap(d).chunks(n, 4)) - n
        assert moved == 2 * halo_units * 4  # each halo unit: download + upload
        assert moved < n  # far less than a full round trip
        # The owned data moved device-locally.
        assert copy_buffer_bytes(runtime) >= n * 4

    def test_halo_exchange_preserves_data(self, runtime_4gpu):
        data = np.random.RandomState(5).rand(500).astype(np.float32)
        vec = Vector(data=data)
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        vec.set_distribution(Overlap(7))
        np.testing.assert_array_equal(vec.to_numpy(), data)

    def test_halo_contents_correct_for_stencil(self, runtime_4gpu):
        # After a block-resident compute, a MapOverlap must see correct
        # neighbour values across the chunk borders (the halos were
        # fetched from the neighbouring devices, not stale memory).
        data = np.arange(256, dtype=np.float32)
        doubled = skelcl.Map("float f(float x) { return 2.0f * x; }")(Vector(data=data))
        blur = MapOverlap(
            "float f(float* v) { return get(v, -1) + get(v, 0) + get(v, 1); }",
            1, SCL_NEUTRAL, 0.0,
        )
        result = blur(doubled).to_numpy()
        padded = np.pad(2 * data, 1)
        expected = padded[:-2] + padded[1:-1] + padded[2:]
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    def test_matrix_halo_exchange(self, runtime_2gpu):
        runtime = runtime_2gpu
        data = np.random.RandomState(1).rand(32, 8).astype(np.float32)
        mat = Matrix(data=data)
        mat.ensure_on_devices(Block())
        mat.mark_written_on_devices()
        before = pcie_bytes(runtime)
        mat.set_distribution(Overlap(2))
        moved = pcie_bytes(runtime) - before
        # 2 interior borders x 2 halo rows x 8 cols x 4 bytes, x2 (down+up)
        assert moved == 2 * (2 * 2 * 8 * 4)
        np.testing.assert_array_equal(mat.to_numpy(), data)

    def test_growing_overlap_fetches_only_increment(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.arange(200, dtype=np.float32))
        vec.ensure_on_devices(Overlap(2))
        vec.mark_written_on_devices()
        before = pcie_bytes(runtime)
        vec.set_distribution(Overlap(6))
        moved = pcie_bytes(runtime) - before
        # Each of the two chunks is missing 4 more halo units.
        assert moved == 2 * (2 * 4 * 4)
        np.testing.assert_array_equal(vec.to_numpy(), np.arange(200, dtype=np.float32))


class TestCopyBufferCommand:
    def test_copy_buffer_roundtrip(self):
        ctx = ocl.Context.create(ocl.TEST_DEVICE)
        queue = ctx.queues[0]
        src = ctx.create_buffer(64)
        dst = ctx.create_buffer(64)
        data = np.arange(16, dtype=np.float32)
        queue.enqueue_write_buffer(src, data)
        event = queue.enqueue_copy_buffer(src, dst, 32, src_offset_bytes=0, dst_offset_bytes=32)
        out, _ = queue.enqueue_read_buffer(dst, np.float32, 8, offset_bytes=32)
        np.testing.assert_array_equal(out, data[:8])
        assert event.command_type == "copy_buffer"
        assert event.duration_ns > 0
        ctx.release()

    def test_copy_buffer_cross_device_rejected(self):
        ctx = ocl.Context.create(ocl.TEST_DEVICE, 2)
        a = ctx.create_buffer(16, ctx.devices[0])
        b = ctx.create_buffer(16, ctx.devices[1])
        with pytest.raises(ocl.InvalidValue):
            ctx.queues[0].enqueue_copy_buffer(a, b, 16)
        ctx.release()

    def test_copy_counts_as_transfer_but_not_pcie(self):
        ctx = ocl.Context.create(ocl.TEST_DEVICE)
        queue = ctx.queues[0]
        src = ctx.create_buffer(64)
        dst = ctx.create_buffer(64)
        pcie_before = queue.total_pcie_bytes
        transfer_before = queue.total_transfer_bytes
        transfer_ns_before = queue.total_transfer_ns
        queue.enqueue_copy_buffer(src, dst, 64)
        # Device-local: redistribution traffic shows up in the queue's
        # transfer statistics like every other transfer command...
        assert queue.total_transfer_bytes == transfer_before + 64
        assert queue.total_transfer_ns > transfer_ns_before
        # ...but never on the host link.
        assert queue.total_pcie_bytes == pcie_before
        ctx.release()
