"""Partition abstraction unit tests: apportionment, distribution
integration, and the adaptive partitioner's bookkeeping."""

import pytest
from hypothesis import given, settings, strategies as st

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl.distribution import Block, Copy, Overlap, Single, block_ranges
from repro.skelcl.partition import (AdaptivePartitioner, Partition,
                                    modeled_throughput)


class TestPartitionMath:
    def test_even_matches_block_ranges(self):
        for size in (0, 1, 7, 8, 10, 1000):
            for devices in (1, 2, 3, 4, 7):
                assert Partition.even(devices).ranges(size) == block_ranges(size, devices)

    def test_weighted_counts(self):
        assert Partition.of(4, 4, 1).counts(9000) == [4000, 4000, 1000]
        assert Partition.of(3, 1).counts(8) == [6, 2]

    def test_zero_weight_gets_empty_range(self):
        assert Partition.of(1, 0).ranges(6) == [(0, 6), (6, 6)]
        assert Partition.of(0, 1, 0).ranges(5) == [(0, 0), (0, 5), (5, 5)]

    def test_largest_remainder_breaks_ties_by_index(self):
        # Equal fractional remainders: the earlier device wins, matching
        # the historic even-split behaviour.
        assert Partition.even(3).counts(5) == [2, 2, 1]
        assert Partition.of(1, 1, 1, 1).counts(6) == [2, 2, 1, 1]

    def test_weights_need_not_be_normalized(self):
        assert Partition.of(2, 2).ranges(10) == Partition.of(0.5, 0.5).ranges(10)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            Partition(())
        with pytest.raises(ValueError):
            Partition.of(1, -1)
        with pytest.raises(ValueError):
            Partition.of(0, 0)
        with pytest.raises(ValueError):
            Partition.even(0)

    def test_quantized_is_a_fixed_point(self):
        part = Partition.of(3.14159, 2.71828, 1.41421).quantized()
        assert part.quantized() == part

    def test_value_equality_and_hash(self):
        assert Partition.of(1, 2) == Partition.of(1, 2)
        assert Partition.of(1, 2) != Partition.of(2, 1)
        assert hash(Partition.of(1, 2)) == hash(Partition.of(1, 2))

    @given(
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=8),
        size=st.integers(0, 5000),
    )
    @settings(max_examples=150, deadline=None)
    def test_ranges_cover_exactly(self, weights, size):
        if not any(w > 0 for w in weights):
            weights = weights + [1.0]
        part = Partition.proportional(weights)
        ranges = part.ranges(size)
        assert len(ranges) == len(part.weights)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == size
        for (_s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e1 == s2
        assert all(end >= start for start, end in ranges)


class TestDistributionIntegration:
    def test_block_with_partition(self):
        chunks = Block(Partition.of(3, 1)).chunks(8, 2)
        assert [(c.owned_start, c.owned_end) for c in chunks] == [(0, 6), (6, 8)]
        assert [(c.stored_start, c.stored_end) for c in chunks] == [(0, 6), (6, 8)]

    def test_block_without_partition_unchanged(self):
        assert [(c.owned_start, c.owned_end) for c in Block().chunks(8, 2)] \
            == [(0, 4), (4, 8)]

    def test_overlap_with_partition_grows_halo_around_owned(self):
        chunks = Overlap(2, Partition.of(1, 3)).chunks(12, 2)
        assert [(c.owned_start, c.owned_end) for c in chunks] == [(0, 3), (3, 12)]
        assert [(c.stored_start, c.stored_end) for c in chunks] == [(0, 5), (1, 12)]

    def test_overlap_zero_owned_chunk_stores_nothing(self):
        chunks = Overlap(2, Partition.of(1, 0)).chunks(10, 2)
        assert chunks[1].owned_size == 0
        assert chunks[1].stored_size == 0

    def test_partition_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Block(Partition.of(1, 1)).chunks(8, 3)

    def test_with_partition(self):
        part = Partition.of(2, 1)
        assert Block().with_partition(part) == Block(part)
        assert Overlap(3).with_partition(part) == Overlap(3, part)
        # Single/Copy do not split data, so a partition does not apply.
        assert Single(1).with_partition(part) == Single(1)
        assert Copy().with_partition(part) == Copy()

    def test_distribution_equality_includes_partition(self):
        assert Block(Partition.of(1, 1)) != Block()
        assert Block(Partition.of(2, 1)) == Block(Partition.of(2, 1))
        assert Overlap(1, Partition.of(2, 1)) != Overlap(1)


class TestModeledThroughput:
    def test_gpu_vs_cpu_skew(self):
        gpu = modeled_throughput(ocl.TESLA_T10)
        cpu = modeled_throughput(ocl.CPU_8CORE)
        assert gpu == pytest.approx(345.6)
        assert cpu == pytest.approx(86.4)
        assert gpu / cpu == pytest.approx(4.0)

    def test_from_specs_seed(self):
        part = Partition.from_specs([ocl.TESLA_T10, ocl.TESLA_T10, ocl.CPU_8CORE])
        assert part.counts(9000) == [4000, 4000, 1000]


class TestDevicePresets:
    def test_named_presets_resolve(self):
        assert ocl.resolve_device_spec("tesla") is ocl.TESLA_T10
        assert ocl.resolve_device_spec("CPU-8core") is ocl.CPU_8CORE
        assert ocl.resolve_device_spec(ocl.TEST_DEVICE) is ocl.TEST_DEVICE

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown device preset"):
            ocl.resolve_device_spec("abacus")

    def test_mixed_platform(self):
        platform = ocl.Platform([ocl.TESLA_T10, ocl.CPU_8CORE])
        assert [d.index for d in platform.devices] == [0, 1]
        assert platform.devices[0].spec is ocl.TESLA_T10
        assert platform.devices[1].spec is ocl.CPU_8CORE
        assert "mixed" in platform.name

    def test_homogeneous_platform_unchanged(self):
        platform = ocl.Platform(ocl.TEST_DEVICE, 3)
        assert len(platform.devices) == 3
        assert "mixed" not in platform.name


class TestSessionPartitionPolicy:
    def test_init_with_device_names(self):
        with skelcl.init(devices=["tesla", "tesla", "cpu-8core"]) as session:
            assert session.num_devices == 3
            assert session.specs[2] is ocl.CPU_8CORE
            assert session.spec is ocl.TESLA_T10  # compat: first spec
            assert session.partition is None

    def test_throughput_policy_sets_static_partition(self):
        with skelcl.init(devices=["tesla", "cpu-8core"],
                         partition="throughput") as session:
            assert session.partition is not None
            assert session.partition.counts(1000) == [800, 200]
            assert session.partitioner is None

    def test_adaptive_policy_installs_partitioner(self):
        with skelcl.init(devices=["tesla", "cpu-8core"],
                         partition="adaptive") as session:
            assert isinstance(session.partitioner, AdaptivePartitioner)
            assert session.partition == session.partitioner.partition

    def test_explicit_partition(self):
        part = Partition.of(1, 3)
        with skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE,
                         partition=part) as session:
            assert session.partition == part

    def test_partition_device_count_mismatch_rejected(self):
        with pytest.raises(skelcl.SkelCLError):
            skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE,
                        partition=Partition.of(1, 1, 1))

    def test_unknown_policy_rejected(self):
        with pytest.raises(skelcl.SkelCLError):
            skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE, partition="magic")

    def test_devices_and_spec_mutually_exclusive(self):
        with pytest.raises(skelcl.SkelCLError):
            skelcl.init(devices=["tesla"], spec=ocl.TEST_DEVICE)

    def test_env_var_policy(self, monkeypatch):
        monkeypatch.setenv("SKELCL_PARTITION", "throughput")
        with skelcl.init(devices=["tesla", "cpu-8core"]) as session:
            assert session.partition is not None
            assert session.partition.counts(10) == [8, 2]

    def test_rebalance_without_partitioner_is_noop(self):
        with skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE) as session:
            assert session.rebalance() is False
