"""Skeleton correctness tests against numpy references, across 1-4 GPUs."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import (
    AllPairs,
    Block,
    Copy,
    Map,
    MapOverlap,
    Matrix,
    Overlap,
    Reduce,
    SCL_NEAREST,
    SCL_NEUTRAL,
    Scan,
    Single,
    Vector,
    Zip,
)
from repro.skelcl.runtime import SkelCLError

ADD = "float func(float x, float y) { return x + y; }"
MUL = "float func(float x, float y) { return x * y; }"


class TestMap:
    def test_negation_as_in_paper(self, runtime_multi, rng):
        neg = Map("float func(float x) { return -x; }")
        data = rng.rand(117).astype(np.float32)
        result = neg(Vector(data=data))
        np.testing.assert_allclose(result.to_numpy(), -data, rtol=1e-6)

    def test_int_map(self, runtime_2gpu):
        double = Map("int func(int x) { return 2 * x; }")
        data = np.arange(33, dtype=np.int32)
        assert list(double(Vector(data=data)).to_numpy()) == list(2 * data)

    def test_type_changing_map(self, runtime_2gpu, rng):
        to_int = Map("int func(float x) { return (int)(x * 10.0f); }")
        data = rng.rand(20).astype(np.float32)
        out = to_int(Vector(data=data))
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out.to_numpy(), (data * 10).astype(np.int32))

    def test_map_on_matrix(self, runtime_2gpu, rng):
        sq = Map("float func(float x) { return x * x; }")
        data = rng.rand(9, 7).astype(np.float32)
        result = sq(Matrix(data=data))
        assert isinstance(result, Matrix)
        np.testing.assert_allclose(result.to_numpy(), data * data, rtol=1e-6)

    def test_additional_scalar_argument(self, runtime_2gpu, rng):
        scale = Map("float func(float x, float s) { return x * s; }")
        data = rng.rand(40).astype(np.float32)
        np.testing.assert_allclose(scale(Vector(data=data), 2.5).to_numpy(), data * 2.5, rtol=1e-6)

    def test_missing_additional_argument_rejected(self, runtime_1gpu):
        scale = Map("float func(float x, float s) { return x * s; }")
        with pytest.raises(SkelCLError):
            scale(Vector(4))

    def test_dtype_mismatch_rejected(self, runtime_1gpu):
        neg = Map("float func(float x) { return -x; }")
        with pytest.raises(SkelCLError):
            neg(Vector(4, dtype=np.int32))

    def test_uses_builtin_math(self, runtime_2gpu, rng):
        # The paper's SkePU comparison: sin/cos must work in user code.
        wave = Map("float func(float x) { return sin(x) * cos(x); }")
        data = rng.rand(25).astype(np.float32)
        np.testing.assert_allclose(
            wave(Vector(data=data)).to_numpy(), np.sin(data) * np.cos(data), rtol=1e-4, atol=1e-6
        )

    def test_respects_single_distribution(self, runtime_2gpu, rng):
        neg = Map("float func(float x) { return -x; }")
        data = rng.rand(16).astype(np.float32)
        vec = Vector(data=data)
        vec.set_distribution(Single(1))
        result = neg(vec)
        assert result.distribution == Single(1)
        np.testing.assert_allclose(result.to_numpy(), -data, rtol=1e-6)

    def test_copy_distribution_computes_everywhere(self, runtime_2gpu, rng):
        neg = Map("float func(float x) { return -x; }")
        data = rng.rand(16).astype(np.float32)
        vec = Vector(data=data)
        vec.set_distribution(Copy())
        result = neg(vec)
        np.testing.assert_allclose(result.to_numpy(), -data, rtol=1e-6)

    def test_preallocated_output(self, runtime_2gpu, rng):
        neg = Map("float func(float x) { return -x; }")
        data = rng.rand(16).astype(np.float32)
        out = Vector(16)
        returned = neg(Vector(data=data), out=out)
        assert returned is out
        np.testing.assert_allclose(out.to_numpy(), -data, rtol=1e-6)


class TestZip:
    def test_vector_addition(self, runtime_multi, rng):
        add = Zip(ADD)
        a = rng.rand(101).astype(np.float32)
        b = rng.rand(101).astype(np.float32)
        np.testing.assert_allclose(
            add(Vector(data=a), Vector(data=b)).to_numpy(), a + b, rtol=1e-6
        )

    def test_matrix_zip(self, runtime_2gpu, rng):
        add = Zip(ADD)
        a = rng.rand(5, 8).astype(np.float32)
        b = rng.rand(5, 8).astype(np.float32)
        np.testing.assert_allclose(
            add(Matrix(data=a), Matrix(data=b)).to_numpy(), a + b, rtol=1e-6
        )

    def test_size_mismatch_rejected(self, runtime_1gpu):
        add = Zip(ADD)
        with pytest.raises(SkelCLError):
            add(Vector(4), Vector(5))

    def test_mixed_container_kinds_rejected(self, runtime_1gpu):
        add = Zip(ADD)
        with pytest.raises(SkelCLError):
            add(Vector(4), Matrix((2, 2)))

    def test_zip_with_extra_argument(self, runtime_2gpu, rng):
        axpy = Zip("float func(float x, float y, float a) { return a * x + y; }")
        x = rng.rand(30).astype(np.float32)
        y = rng.rand(30).astype(np.float32)
        np.testing.assert_allclose(
            axpy(Vector(data=x), Vector(data=y), 3.0).to_numpy(), 3 * x + y, rtol=1e-5
        )

    def test_needs_two_params(self, runtime_1gpu):
        with pytest.raises(SkelCLError):
            Zip("float func(float x) { return x; }")


class TestReduce:
    def test_sum(self, runtime_multi, rng):
        total = Reduce(ADD)
        data = rng.rand(1000).astype(np.float32)
        assert total(Vector(data=data)).get_value() == pytest.approx(float(data.sum()), rel=1e-4)

    def test_max_with_identity(self, runtime_2gpu, rng):
        peak = Reduce("float func(float x, float y) { return x > y ? x : y; }",
                      identity="-3.402823466e38f")
        data = (rng.rand(500) * 100).astype(np.float32)
        assert peak(Vector(data=data)).get_value() == pytest.approx(float(data.max()))

    def test_int_product_small(self, runtime_1gpu):
        prod = Reduce("int func(int x, int y) { return x * y; }", identity="1")
        data = np.array([1, 2, 3, 4, 5], dtype=np.int32)
        assert prod(Vector(data=data)).get_value() == 120

    def test_single_element(self, runtime_2gpu):
        total = Reduce(ADD)
        assert total(Vector(data=np.array([42.0], np.float32))).get_value() == 42.0

    def test_matrix_reduce(self, runtime_2gpu, rng):
        total = Reduce(ADD)
        data = rng.rand(13, 7).astype(np.float32)
        assert total(Matrix(data=data)).get_value() == pytest.approx(float(data.sum()), rel=1e-4)

    def test_large_input_multiple_groups(self, runtime_2gpu, rng):
        total = Reduce(ADD)
        data = rng.rand(100_000).astype(np.float32)
        assert total(Vector(data=data)).get_value() == pytest.approx(float(data.sum()), rel=1e-3)

    def test_wrong_arity_rejected(self, runtime_1gpu):
        with pytest.raises(SkelCLError):
            Reduce("float func(float x) { return x; }")

    def test_dot_product_composition_as_in_listing_1_1(self, runtime_2gpu, rng):
        # Listing 1.1: C = sum( mult( A, B ) )
        sum_up = Reduce("float sum(float x, float y) { return x + y; }")
        mult = Zip("float mult(float x, float y) { return x * y; }")
        a = rng.rand(512).astype(np.float32)
        b = rng.rand(512).astype(np.float32)
        c = sum_up(mult(Vector(data=a), Vector(data=b)))
        assert c.get_value() == pytest.approx(float(np.dot(a, b)), rel=1e-4)


class TestScan:
    def test_prefix_sum(self, runtime_multi, rng):
        prefix = Scan(ADD)
        data = rng.rand(777).astype(np.float32)
        np.testing.assert_allclose(
            prefix(Vector(data=data)).to_numpy(), np.cumsum(data).astype(np.float32), rtol=1e-3
        )

    def test_int_prefix_sum_exact(self, runtime_2gpu):
        prefix = Scan("int func(int x, int y) { return x + y; }")
        data = np.arange(1, 600, dtype=np.int32)
        np.testing.assert_array_equal(prefix(Vector(data=data)).to_numpy(), np.cumsum(data))

    def test_prefix_max(self, runtime_2gpu, rng):
        prefix = Scan("int func(int x, int y) { return x > y ? x : y; }",
                      identity="-2147483648")
        data = rng.randint(-100, 100, 300).astype(np.int32)
        np.testing.assert_array_equal(
            prefix(Vector(data=data)).to_numpy(), np.maximum.accumulate(data)
        )

    def test_small_input(self, runtime_2gpu):
        prefix = Scan("int func(int x, int y) { return x + y; }")
        data = np.array([5, 1, 2], dtype=np.int32)
        assert list(prefix(Vector(data=data)).to_numpy()) == [5, 6, 8]

    def test_exactly_one_block(self, runtime_1gpu):
        prefix = Scan("int func(int x, int y) { return x + y; }")
        data = np.ones(256, dtype=np.int32)
        np.testing.assert_array_equal(prefix(Vector(data=data)).to_numpy(), np.arange(1, 257))

    def test_multiple_blocks_per_device(self, runtime_1gpu):
        prefix = Scan("int func(int x, int y) { return x + y; }")
        data = np.ones(2000, dtype=np.int32)
        np.testing.assert_array_equal(prefix(Vector(data=data)).to_numpy(), np.arange(1, 2001))

    def test_matrix_rejected(self, runtime_1gpu):
        prefix = Scan(ADD)
        with pytest.raises(SkelCLError):
            prefix(Matrix((2, 2)))


class TestMapOverlap:
    SUM9 = """
    float func(float* m) {
        float sum = 0.0f;
        for (int i = -1; i <= 1; ++i)
            for (int j = -1; j <= 1; ++j)
                sum += get(m, i, j);
        return sum;
    }"""

    @staticmethod
    def _neighbor_sum(image, neutral=0.0):
        padded = np.pad(image, 1, constant_values=neutral)
        return sum(
            padded[1 + di : 1 + di + image.shape[0], 1 + dj : 1 + dj + image.shape[1]]
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
        ).astype(np.float32)

    def test_matrix_neutral(self, runtime_multi, rng):
        stencil = MapOverlap(self.SUM9, 1, SCL_NEUTRAL, 0.0)
        image = rng.rand(12, 9).astype(np.float32)
        result = stencil(Matrix(data=image)).to_numpy()
        np.testing.assert_allclose(result, self._neighbor_sum(image), rtol=1e-5)

    def test_matrix_nearest(self, runtime_2gpu, rng):
        stencil = MapOverlap(self.SUM9, 1, SCL_NEAREST)
        image = rng.rand(8, 8).astype(np.float32)
        padded = np.pad(image, 1, mode="edge")
        expected = sum(
            padded[1 + di : 9 + di, 1 + dj : 9 + dj] for di in (-1, 0, 1) for dj in (-1, 0, 1)
        ).astype(np.float32)
        np.testing.assert_allclose(stencil(Matrix(data=image)).to_numpy(), expected, rtol=1e-5)

    def test_vector_stencil(self, runtime_multi, rng):
        blur = MapOverlap(
            "float func(float* v) { return (get(v, -1) + get(v, 0) + get(v, 1)) / 3.0f; }",
            1,
            SCL_NEUTRAL,
            0.0,
        )
        data = rng.rand(50).astype(np.float32)
        padded = np.pad(data, 1)
        expected = ((padded[:-2] + padded[1:-1] + padded[2:]) / 3.0).astype(np.float32)
        np.testing.assert_allclose(blur(Vector(data=data)).to_numpy(), expected, rtol=1e-5)

    def test_nonzero_neutral_value(self, runtime_2gpu):
        stencil = MapOverlap(self.SUM9, 1, SCL_NEUTRAL, 7.0)
        image = np.zeros((4, 4), np.float32)
        result = stencil(Matrix(data=image)).to_numpy()
        # Corner touches 5 out-of-bounds neighbours, each contributing 7.
        assert result[0, 0] == pytest.approx(5 * 7.0)
        assert result[1, 1] == 0.0

    def test_larger_overlap_range(self, runtime_2gpu, rng):
        stencil = MapOverlap(
            """float func(float* m) {
                float s = 0.0f;
                for (int i = -2; i <= 2; ++i) s += get(m, 0, i);
                return s;
            }""",
            2,
            SCL_NEUTRAL,
            0.0,
        )
        image = rng.rand(10, 6).astype(np.float32)
        padded = np.pad(image, ((2, 2), (0, 0)))
        expected = sum(padded[2 + d : 12 + d, :] for d in (-2, -1, 0, 1, 2)).astype(np.float32)
        np.testing.assert_allclose(stencil(Matrix(data=image)).to_numpy(), expected, rtol=1e-5)

    def test_access_beyond_declared_overlap_faults(self, runtime_1gpu):
        from repro.kernelc.memory import KernelFault

        bad = MapOverlap("float func(float* m) { return get(m, 0, 5); }", 1, SCL_NEUTRAL, 0.0)
        image = np.zeros((16, 16), np.float32)
        with pytest.raises(KernelFault):
            bad(Matrix(data=image))

    def test_multi_gpu_matches_single_gpu(self, rng):
        image = rng.rand(32, 16).astype(np.float32)
        results = {}
        for devices in (1, 3):
            skelcl.init(num_devices=devices, spec=__import__("repro.ocl", fromlist=["TEST_DEVICE"]).TEST_DEVICE)
            stencil = MapOverlap(self.SUM9, 1, SCL_NEUTRAL, 0.0)
            results[devices] = stencil(Matrix(data=image)).to_numpy()
            skelcl.terminate()
        np.testing.assert_allclose(results[1], results[3], rtol=1e-6)


class TestAllPairs:
    def test_matrix_multiplication(self, runtime_multi, rng):
        a = rng.rand(9, 6).astype(np.float32)
        b = rng.rand(7, 6).astype(np.float32)  # B^T rows
        matmul = AllPairs(Reduce(ADD), Zip(MUL))
        result = matmul(Matrix(data=a), Matrix(data=b)).to_numpy()
        np.testing.assert_allclose(result, a @ b.T, rtol=1e-4)

    def test_manhattan_distance_raw_form(self, runtime_2gpu, rng):
        source = """
        float func(const float* a, const float* b, int d) {
            float sum = 0.0f;
            for (int k = 0; k < d; ++k) sum += fabs(a[k] - b[k]);
            return sum;
        }"""
        a = rng.rand(5, 4).astype(np.float32)
        b = rng.rand(6, 4).astype(np.float32)
        allpairs = AllPairs(source=source)
        result = allpairs(Matrix(data=a), Matrix(data=b)).to_numpy()
        expected = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(result, expected, rtol=1e-4)

    def test_dimension_mismatch_rejected(self, runtime_1gpu):
        matmul = AllPairs(Reduce(ADD), Zip(MUL))
        with pytest.raises(SkelCLError):
            matmul(Matrix((2, 3)), Matrix((2, 4)))

    def test_incompatible_operators_rejected(self, runtime_1gpu):
        int_add = Reduce("int func(int x, int y) { return x + y; }")
        with pytest.raises(SkelCLError):
            AllPairs(int_add, Zip(MUL))

    def test_raw_form_needs_three_params(self, runtime_1gpu):
        with pytest.raises(SkelCLError):
            AllPairs(source="float func(const float* a, const float* b) { return 0.0f; }")


class TestMultiGpuConsistency:
    """The same computation must produce identical results on any number
    of GPUs — the scalability contract of §3.2."""

    @pytest.mark.parametrize("devices", [1, 2, 3, 4])
    def test_pipeline_consistency(self, devices, rng):
        from repro.ocl import TEST_DEVICE

        data = rng.rand(333).astype(np.float32)
        skelcl.init(num_devices=devices, spec=TEST_DEVICE)
        try:
            double = Map("float func(float x) { return 2.0f * x; }")
            add = Zip(ADD)
            total = Reduce(ADD)
            doubled = double(Vector(data=data))
            combined = add(doubled, Vector(data=data))
            result = total(combined).get_value()
        finally:
            skelcl.terminate()
        assert result == pytest.approx(float(3 * data.sum()), rel=1e-4)


class TestReduceDistributions:
    def test_reduce_over_copy_distribution_counts_once(self, runtime_2gpu, rng):
        data = rng.rand(500).astype(np.float32)
        vec = Vector(data=data)
        vec.set_distribution(skelcl.Copy())
        total = Reduce(ADD)
        assert total(vec).get_value() == pytest.approx(float(data.sum()), rel=1e-4)

    def test_reduce_over_single_distribution(self, runtime_2gpu, rng):
        data = rng.rand(300).astype(np.float32)
        vec = Vector(data=data)
        vec.set_distribution(Single(1))
        total = Reduce(ADD)
        assert total(vec).get_value() == pytest.approx(float(data.sum()), rel=1e-4)

    def test_reduce_over_overlap_ignores_halos(self, runtime_2gpu, rng):
        data = rng.rand(256).astype(np.float32)
        vec = Vector(data=data)
        vec.set_distribution(skelcl.Overlap(8))
        total = Reduce(ADD)
        # Halo elements are replicated on devices but owned once; the
        # reduction must not double-count them.
        assert total(vec).get_value() == pytest.approx(float(data.sum()), rel=1e-4)


class TestOverlapInputsToElementwise:
    def test_map_over_overlap_distributed_input(self, runtime_2gpu, rng):
        # A Map after a stencil reuses the overlap-distributed data
        # without redistribution; the halo offset must be skipped.
        data = rng.rand(96).astype(np.float32)
        vec = Vector(data=data)
        vec.set_distribution(Overlap(4))
        neg = Map("float func(float x) { return -x; }")
        np.testing.assert_allclose(neg(vec).to_numpy(), -data, rtol=1e-6)

    def test_zip_with_mismatched_halo_widths(self, runtime_2gpu, rng):
        a = rng.rand(64).astype(np.float32)
        b = rng.rand(64).astype(np.float32)
        va = Vector(data=a)
        vb = Vector(data=b)
        va.set_distribution(Overlap(2))
        add = Zip(ADD)
        result = add(va, vb).to_numpy()
        np.testing.assert_allclose(result, a + b, rtol=1e-6)
