"""User-function parsing and kernel code-generation tests.

These pin down the source-to-source machinery: what the skeletons
generate must stay valid OpenCL-C (it all goes through the kernelc
front-end), contain the right structure, and be byte-stable so the
build cache works.
"""

import pytest

import repro.skelcl as skelcl
from repro.kernelc import compile_source
from repro.kernelc.ctypes_ import FLOAT, INT, UCHAR
from repro.skelcl.funcparse import (
    UserFunction,
    append_hidden_params,
    parse_user_function,
    pointer_param,
    scalar_param,
    scalar_return,
)
from repro.skelcl.runtime import SkelCLError
from repro.skelcl.skeleton import rename_function, round_up, scalar_literal


class TestParseUserFunction:
    def test_basic(self):
        fn = parse_user_function("float func(float x, float y) { return x + y; }")
        assert fn.name == "func"
        assert fn.arity == 2
        assert fn.return_type == FLOAT
        assert fn.param_names == ("x", "y")

    def test_custom_name(self):
        fn = parse_user_function("int triple(int v) { return 3 * v; }")
        assert fn.name == "triple"

    def test_last_function_is_customizing(self):
        source = """
        float helper(float x) { return x * x; }
        float main_func(float x) { return helper(x) + 1.0f; }
        """
        fn = parse_user_function(source)
        assert fn.name == "main_func"

    def test_preprocessor_in_user_source(self):
        fn = parse_user_function("#define K 3\nint f(int x) { return K * x; }")
        assert "3" in fn.source

    def test_rejects_kernel_functions(self):
        with pytest.raises(SkelCLError):
            parse_user_function("__kernel void f() { }")

    def test_rejects_garbage(self):
        with pytest.raises(SkelCLError):
            parse_user_function("not a function at all")

    def test_rejects_empty(self):
        with pytest.raises(SkelCLError):
            parse_user_function("// just a comment")

    def test_accessors(self):
        fn = parse_user_function("uchar f(const uchar* img) { return img[0]; }")
        assert pointer_param(fn, 0).pointee == UCHAR
        assert scalar_return(fn) == UCHAR
        with pytest.raises(SkelCLError):
            scalar_param(fn, 0)  # pointer, not scalar


class TestSignatureRewriting:
    def test_append_hidden_params(self):
        fn = parse_user_function("float f(float* m) { return get(m, 0); }")
        rewritten = append_hidden_params(fn, "int _stride")
        assert "float f(float* m, int _stride)" in rewritten.replace("  ", " ")

    def test_append_to_multiline_signature(self):
        fn = parse_user_function("""float f(float* m,
                float scale) { return scale; }""")
        rewritten = append_hidden_params(fn, "int _w")
        program = compile_source(rewritten.replace("get", "fabs"))  # must stay parseable
        assert len(program.function("f").params) == 3

    def test_rename_function_word_boundaries(self):
        source = "float fn(float fnx) { return fnx; } float g(float x) { return fn(x); }"
        renamed = rename_function(source, "fn", "SCL_F")
        assert "SCL_F(" in renamed
        assert "fnx" in renamed  # not mangled
        assert " fn(" not in renamed


class TestHelpers:
    def test_round_up(self):
        assert round_up(0, 256) == 0
        assert round_up(1, 256) == 256
        assert round_up(256, 256) == 256
        assert round_up(257, 256) == 512
        assert round_up(5, 0) == 5

    def test_scalar_literal(self):
        assert scalar_literal(1.5, FLOAT) == "1.5f"
        assert scalar_literal(0, INT) == "0"
        assert scalar_literal(7, UCHAR) == "7"


class TestGeneratedSources:
    def _compiles(self, source, kernel_name):
        program = compile_source(source)
        assert any(k.name == kernel_name for k in program.kernels())
        return program

    def test_map_source_compiles(self, runtime_1gpu):
        neg = skelcl.Map("float func(float x) { return -x; }")
        self._compiles(neg.kernel_source(), "skelcl_map")

    def test_map_source_is_deterministic(self, runtime_1gpu):
        a = skelcl.Map("float func(float x) { return -x; }")
        b = skelcl.Map("float func(float x) { return -x; }")
        assert a.kernel_source() == b.kernel_source()

    def test_zip_source_compiles(self, runtime_1gpu):
        add = skelcl.Zip("float func(float x, float y) { return x + y; }")
        self._compiles(add.kernel_source(), "skelcl_zip")

    def test_reduce_source_has_local_tree(self, runtime_1gpu):
        total = skelcl.Reduce("float func(float x, float y) { return x + y; }")
        source = total.kernel_source()
        self._compiles(source, "skelcl_reduce")
        assert "__local" in source and "barrier" in source

    def test_scan_source_has_three_kernels(self, runtime_1gpu):
        prefix = skelcl.Scan("float func(float x, float y) { return x + y; }")
        program = compile_source(prefix.kernel_source())
        names = {k.name for k in program.kernels()}
        assert names == {"skelcl_scan_block", "skelcl_scan_add_blocks", "skelcl_scan_add_offset"}

    def test_mapoverlap_matrix_source_stages_tile(self, runtime_1gpu):
        stencil = skelcl.MapOverlap(
            "float func(float* m) { return get(m, 1, -1); }", 1, skelcl.SCL_NEUTRAL, 0.0
        )
        source = stencil.matrix_source()
        self._compiles(source, "skelcl_mapoverlap_m")
        assert "__local" in source
        assert "#define get" in source

    def test_mapoverlap_unproven_keeps_checked_accessor(self, runtime_1gpu):
        stencil = skelcl.MapOverlap(
            "float func(float* m, ) { return get(m, 0, 0); }".replace(", )", ")"),
            1, skelcl.SCL_NEUTRAL, 0.0,
        )
        assert stencil.checks_elided  # constant offsets prove
        unproven = skelcl.MapOverlap(
            "float func(float* m) { int k = 0; while (k < 1) { ++k; } return get(m, k, 0); }",
            1, skelcl.SCL_NEUTRAL, 0.0,
        )
        assert not unproven.checks_elided
        assert "__scl_trap" in unproven.matrix_source()

    def test_mapoverlap_neutral_value_embedded(self, runtime_1gpu):
        stencil = skelcl.MapOverlap(
            "uchar func(const uchar* img) { return get(img, 0, 0); }",
            1, skelcl.SCL_NEUTRAL, 7,
        )
        assert "= 7;" in stencil.matrix_source().replace("SCL_V = 7", "= 7")

    def test_mapoverlap_nearest_has_clamping(self, runtime_1gpu):
        stencil = skelcl.MapOverlap(
            "uchar func(const uchar* img) { return get(img, 0, 0); }",
            1, skelcl.SCL_NEAREST,
        )
        source = stencil.matrix_source()
        assert "SCL_CX" in source and "SCL_CY" in source

    def test_allpairs_fused_renames_both_functions(self, runtime_1gpu):
        matmul = skelcl.AllPairs(
            skelcl.Reduce("float func(float x, float y) { return x + y; }"),
            skelcl.Zip("float func(float x, float y) { return x * y; }"),
        )
        source = matmul.kernel_source()
        assert "SCL_ZIP_F" in source and "SCL_RED_F" in source
        self._compiles(source, "skelcl_allpairs")

    def test_build_cache_reused_across_skeleton_instances(self, runtime_1gpu):
        from repro import ocl

        ocl.clear_build_cache()
        import numpy as np

        for _ in range(3):
            neg = skelcl.Map("float func(float x) { return -x; }")
            neg(skelcl.Vector(data=np.zeros(8, np.float32)))
        assert ocl.build_cache_size() == 1
