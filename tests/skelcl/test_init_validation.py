"""Strict, eager ``skelcl.init()`` validation: every bad argument fails
before any device state exists, with an error naming the valid
choices."""

from __future__ import annotations

import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import SkelCLError


@pytest.fixture(autouse=True)
def _teardown():
    yield
    skelcl.terminate()


class TestUnknownArguments:
    def test_unknown_kwarg_is_a_type_error_listing_keywords(self):
        with pytest.raises(TypeError) as err:
            skelcl.init(num_devices=1, devcies=["test"])
        message = str(err.value)
        assert "devcies" in message
        assert "num_devices" in message and "partition" in message

    def test_multiple_unknown_kwargs_all_reported(self):
        with pytest.raises(TypeError) as err:
            skelcl.init(foo=1, bar=2)
        assert "bar, foo" in str(err.value)

    def test_nothing_initialized_after_failed_init(self):
        with pytest.raises(TypeError):
            skelcl.init(num_devices=1, turbo=True)
        assert not skelcl.is_initialized()


class TestDeviceArguments:
    def test_unknown_preset_lists_valid_presets(self):
        with pytest.raises(SkelCLError) as err:
            skelcl.init(devices=["test", "gtx-9000"])
        message = str(err.value)
        assert "gtx-9000" in message
        assert "tesla" in message and "cpu-8core" in message

    def test_unknown_spec_preset_same_error(self):
        with pytest.raises(SkelCLError, match="known presets"):
            skelcl.init(num_devices=1, spec="quantum")

    def test_devices_and_num_devices_conflict(self):
        with pytest.raises(SkelCLError, match="not both"):
            skelcl.init(num_devices=2, devices=["test"])

    def test_devices_and_spec_conflict(self):
        with pytest.raises(SkelCLError, match="not both"):
            skelcl.init(spec=ocl.TEST_DEVICE, devices=["test"])

    def test_empty_devices_rejected(self):
        with pytest.raises(SkelCLError, match="at least one"):
            skelcl.init(devices=[])

    def test_num_devices_must_be_positive_int(self):
        for bad in (0, -1, 2.5, "2", True):
            with pytest.raises(SkelCLError, match="positive integer"):
                skelcl.init(num_devices=bad)

    def test_spec_accepts_preset_names(self):
        session = skelcl.init(num_devices=2, spec="test")
        assert session.num_devices == 2
        assert session.devices[0].name.startswith(ocl.TEST_DEVICE.name)


class TestPolicyArguments:
    def test_unknown_partition_policy_lists_choices(self):
        with pytest.raises(SkelCLError) as err:
            skelcl.init(num_devices=2, partition="magic")
        message = str(err.value)
        assert "magic" in message and "throughput" in message

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(SkelCLError, match="vector"):
            skelcl.init(num_devices=1, backend="cuda")

    def test_unknown_sanitize_mode_rejected(self):
        with pytest.raises(SkelCLError, match="off/report/strict"):
            skelcl.init(num_devices=1, detect_races="sometimes")

    def test_valid_combination_still_works(self):
        session = skelcl.init(devices=["test", "cpu-8core"],
                              partition="throughput", lazy=True,
                              detect_races="report", backend="vector")
        assert session.num_devices == 2
        assert session.lazy and session.partition is not None
