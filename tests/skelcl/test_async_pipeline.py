"""Skeleton-level command-graph behaviour: chained skeleton calls form
dependency edges, independent transfers hide behind kernels, and the
multi-GPU elapsed time is the critical path, not a serialized sum."""

import numpy as np

from repro import ocl
from repro.skelcl import Map, Vector, Zip


def all_events(runtime):
    return [e for q in runtime.queues for e in q.events]


class TestDependencyEdges:
    def test_chained_maps_link_kernels(self, runtime_1gpu):
        # v -> double -> square: the second kernel reads the first's
        # output chunk, so its wait list carries the first kernel's event
        # and it is scheduled after it.
        double = Map("float f(float x) { return 2.0f * x; }")
        square = Map("float f(float x) { return x * x; }")
        mid = double(Vector(data=np.arange(64, dtype=np.float32)))
        out = square(mid)
        k1 = double.last_events[0]
        k2 = square.last_events[0]
        assert k1 in k2.wait_for
        k2.wait()
        assert k2.start_ns >= k1.end_ns
        np.testing.assert_array_equal(
            out.to_numpy(), (2.0 * np.arange(64, dtype=np.float32)) ** 2
        )

    def test_download_waits_on_producing_kernel(self, runtime_1gpu):
        runtime = runtime_1gpu
        double = Map("float f(float x) { return 2.0f * x; }")
        out = double(Vector(data=np.arange(64, dtype=np.float32)))
        out.to_numpy()
        kernel = double.last_events[0]
        reads = [e for q in runtime.queues for e in q.events
                 if e.command_type == "read_buffer"]
        assert reads, "to_numpy() must issue a download"
        assert kernel in reads[-1].wait_for
        assert reads[-1].wait() >= kernel.wait()

    def test_halo_exchange_is_a_cross_device_edge(self, runtime_2gpu):
        from repro.skelcl import Block, Overlap

        runtime = runtime_2gpu
        vec = Vector(data=np.arange(256, dtype=np.float32))
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        vec.set_distribution(Overlap(4))
        runtime.finish_all()
        # Each halo upload waits on exactly the read that staged its
        # units on the host — a read issued on the *other* device's queue.
        halo_writes = [
            e for q in runtime.queues for e in q.events
            if e.command_type == "write_buffer"
            and any(d.command_type == "read_buffer" for d in e.wait_for)
        ]
        assert halo_writes, "halo exchange must produce gated uploads"
        for write in halo_writes:
            read = next(d for d in write.wait_for if d.command_type == "read_buffer")
            assert read.device_index != write.device_index
            assert write.start_ns >= read.end_ns


class TestOverlap:
    def test_independent_uploads_hide_behind_kernels(self, runtime_1gpu):
        # Two back-to-back Maps on unrelated vectors: the second vector's
        # upload shares no dependency with the first Map, so the transfer
        # engine uploads it while the compute engine runs kernel 1.
        runtime = runtime_1gpu
        double = Map("float f(float x) { return 2.0f * x; }")
        n = 1 << 14
        a = Vector(data=np.arange(n, dtype=np.float32))
        b = Vector(data=np.arange(n, dtype=np.float32))
        double(a)
        k1 = double.last_events[0]
        double(b)
        k2 = double.last_events[0]
        elapsed = runtime.finish_all()
        queue = runtime.queue(0)
        uploads = [e for e in queue.events if e.command_type == "write_buffer"]
        assert len(uploads) == 2
        assert uploads[1].start_ns < k1.end_ns  # the overlap
        assert elapsed < sum(e.duration_ns for e in queue.events)

    def test_4gpu_elapsed_below_serialized_sum(self, runtime_4gpu):
        # The acceptance criterion at skeleton level: a chained
        # multi-GPU pipeline finishes in less simulated time than the
        # sum of its commands' durations — transfers hide behind kernels
        # and the four devices run concurrently.
        runtime = runtime_4gpu
        add = Zip("float f(float x, float y) { return x + y; }")
        n = 1 << 14
        x = Vector(data=np.arange(n, dtype=np.float32))
        y = Vector(data=np.ones(n, dtype=np.float32))
        z = Vector(data=np.full(n, 2.0, dtype=np.float32))
        step1 = add(x, y)
        step2 = add(step1, z)
        elapsed = runtime.finish_all()
        events = all_events(runtime)
        serialized = sum(e.duration_ns for e in events)
        assert elapsed < serialized
        assert elapsed == max(e.end_ns for e in events)
        np.testing.assert_array_equal(
            step2.to_numpy(), np.arange(n, dtype=np.float32) + 3.0
        )

    def test_last_kernel_time_is_critical_path_window(self, runtime_4gpu):
        # Kernels on the four devices run concurrently: the reported
        # kernel time is the window over the event graph, far below the
        # sum of the four durations.
        double = Map("float f(float x) { return 2.0f * x; }")
        double(Vector(data=np.arange(1 << 14, dtype=np.float32)))
        kernels = [e for e in double.last_events if e.command_type == "ndrange_kernel"]
        assert len(kernels) == 4
        window = double.last_kernel_time_ns
        assert window == max(e.end_ns for e in kernels) - min(e.start_ns for e in kernels)
        assert window < sum(e.duration_ns for e in kernels)


class TestDeferredResolution:
    def test_skeleton_results_correct_before_any_flush(self, runtime_2gpu):
        # Data effects are eager; nothing needs an explicit finish for
        # correctness, only for timestamps.
        double = Map("float f(float x) { return 2.0f * x; }")
        out = double(Vector(data=np.arange(100, dtype=np.float32)))
        np.testing.assert_array_equal(out.to_numpy(), 2.0 * np.arange(100))

    def test_finish_all_resolves_every_event(self, runtime_2gpu):
        runtime = runtime_2gpu
        double = Map("float f(float x) { return 2.0f * x; }")
        double(Vector(data=np.arange(256, dtype=np.float32)))
        runtime.finish_all()
        assert all(e.status is ocl.EventStatus.COMPLETE for e in all_events(runtime))
