"""Distribution unit tests (including hypothesis invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.skelcl.distribution import Block, Copy, Overlap, Single, block_ranges


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(8, 2) == [(0, 4), (4, 8)]

    def test_uneven_split_front_loads_extra(self):
        assert block_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_devices_than_elements(self):
        ranges = block_ranges(2, 4)
        sizes = [e - s for s, e in ranges]
        assert sizes == [1, 1, 0, 0]

    def test_zero_size(self):
        assert block_ranges(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid_devices(self):
        with pytest.raises(ValueError):
            block_ranges(4, 0)

    @given(size=st.integers(0, 10000), devices=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_partition_invariants(self, size, devices):
        ranges = block_ranges(size, devices)
        assert len(ranges) == devices
        # Contiguous cover with no gaps or overlap.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == size
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 == s2
        # Near-equal: sizes differ by at most 1.
        sizes = [e - s for s, e in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestSingle:
    def test_default_device(self):
        (chunk,) = Single().chunks(10, 4)
        assert chunk.device_index == 0
        assert chunk.owned_start == 0 and chunk.owned_end == 10

    def test_explicit_device(self):
        (chunk,) = Single(2).chunks(10, 4)
        assert chunk.device_index == 2

    def test_invalid_device_rejected(self):
        with pytest.raises(ValueError):
            Single(5).chunks(10, 2)


class TestCopy:
    def test_every_device_holds_everything(self):
        chunks = Copy().chunks(7, 3)
        assert len(chunks) == 3
        for chunk in chunks:
            assert (chunk.owned_start, chunk.owned_end) == (0, 7)
            assert (chunk.stored_start, chunk.stored_end) == (0, 7)


class TestOverlap:
    def test_halo_extends_into_neighbors(self):
        chunks = Overlap(2).chunks(10, 2)
        first, second = chunks
        assert (first.owned_start, first.owned_end) == (0, 5)
        assert (first.stored_start, first.stored_end) == (0, 7)
        assert first.halo_before == 0 and first.halo_after == 2
        assert (second.stored_start, second.stored_end) == (3, 10)
        assert second.halo_before == 2 and second.halo_after == 0

    def test_halo_clipped_at_edges(self):
        chunks = Overlap(100).chunks(10, 2)
        for chunk in chunks:
            assert chunk.stored_start >= 0
            assert chunk.stored_end <= 10

    def test_zero_overlap_is_block(self):
        assert Overlap(0).chunks(9, 3) == [
            c for c in Block().chunks(9, 3)
        ]

    def test_negative_overlap_rejected(self):
        with pytest.raises(ValueError):
            Overlap(-1)

    @given(size=st.integers(1, 500), devices=st.integers(1, 6), overlap=st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_overlap_invariants(self, size, devices, overlap):
        chunks = Overlap(overlap).chunks(size, devices)
        for chunk in chunks:
            assert chunk.stored_start <= chunk.owned_start <= chunk.owned_end <= chunk.stored_end
            assert chunk.halo_before <= overlap
            assert chunk.halo_after <= overlap
            if chunk.owned_size > 0:
                if chunk.owned_start > 0:
                    assert chunk.halo_before == min(overlap, chunk.owned_start)
                if chunk.owned_end < size:
                    assert chunk.halo_after == min(overlap, size - chunk.owned_end)


class TestEquality:
    def test_same_kind_equal(self):
        assert Block() == Block()
        assert Copy() == Copy()
        assert Single(1) == Single(1)
        assert Overlap(3) == Overlap(3)

    def test_different_parameters_unequal(self):
        assert Single(0) != Single(1)
        assert Overlap(1) != Overlap(2)

    def test_different_kinds_unequal(self):
        assert Block() != Copy()
        assert Block() != Overlap(0)

    def test_hashable(self):
        assert len({Block(), Block(), Copy(), Overlap(1), Overlap(1)}) == 3
