"""Skeleton pipelines across element dtypes (the container type system)."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import Map, Matrix, Reduce, Scan, Vector, Zip
from repro.skelcl.runtime import SkelCLError
from repro.skelcl.types_ import ctype_for_dtype, dtype_for_cname


class TestTypeMapping:
    @pytest.mark.parametrize("dtype,cname", [
        (np.int8, "char"), (np.uint8, "uchar"),
        (np.int16, "short"), (np.uint16, "ushort"),
        (np.int32, "int"), (np.uint32, "uint"),
        (np.int64, "long"), (np.uint64, "ulong"),
        (np.float32, "float"), (np.float64, "double"),
    ])
    def test_dtype_roundtrip(self, dtype, cname):
        ctype = ctype_for_dtype(dtype)
        assert ctype.name == cname
        assert dtype_for_cname(cname) == np.dtype(dtype)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            ctype_for_dtype(np.complex64)


class TestDoublePrecision:
    def test_double_map(self, runtime_2gpu, rng):
        square = Map("double func(double x) { return x * x; }")
        data = rng.rand(60).astype(np.float64)
        np.testing.assert_allclose(
            square(Vector(data=data)).to_numpy(), data * data, rtol=1e-12
        )

    def test_double_reduce_precision(self, runtime_1gpu):
        # float32 would lose these low-order bits; double must not.
        data = np.full(1000, 1e-10, dtype=np.float64)
        data[0] = 1.0
        total = Reduce("double func(double a, double b) { return a + b; }")
        value = total(Vector(data=data)).get_value()
        assert value == pytest.approx(1.0 + 999e-10, rel=1e-12)

    def test_double_scan(self, runtime_2gpu, rng):
        data = rng.rand(300).astype(np.float64)
        prefix = Scan("double func(double a, double b) { return a + b; }")
        np.testing.assert_allclose(
            prefix(Vector(data=data)).to_numpy(), np.cumsum(data), rtol=1e-10
        )


class TestSmallIntegers:
    def test_uchar_zip_wraps(self, runtime_2gpu):
        add = Zip("uchar func(uchar a, uchar b) { return a + b; }")
        a = np.array([200, 100, 255], np.uint8)
        b = np.array([100, 100, 1], np.uint8)
        out = add(Vector(data=a), Vector(data=b)).to_numpy()
        np.testing.assert_array_equal(out, np.array([44, 200, 0], np.uint8))

    def test_short_map(self, runtime_1gpu):
        negate = Map("short func(short x) { return -x; }")
        data = np.array([-32768, 0, 32767], np.int16)
        out = negate(Vector(data=data)).to_numpy()
        # -(-32768) wraps back to -32768 in int16.
        np.testing.assert_array_equal(out, np.array([-32768, 0, -32767], np.int16))

    def test_ulong_reduce(self, runtime_2gpu):
        data = np.arange(1, 101, dtype=np.uint64) * np.uint64(10**9)
        total = Reduce("ulong func(ulong a, ulong b) { return a + b; }")
        assert total(Vector(data=data)).get_value() == int(data.sum())

    def test_mixed_width_pipeline(self, runtime_2gpu):
        # uchar -> int widening -> long accumulation.
        widen = Map("int func(uchar x) { return x; }")
        scale = Map("long func(int x) { return (long)x * 1000000000; }")
        total = Reduce("long func(long a, long b) { return a + b; }")
        data = np.array([1, 2, 3, 4], np.uint8)
        result = total(scale(widen(Vector(data=data)))).get_value()
        assert result == 10 * 10**9

    def test_matrix_int16(self, runtime_2gpu, rng):
        double = Map("short func(short x) { return 2 * x; }")
        data = rng.randint(-1000, 1000, (6, 5)).astype(np.int16)
        np.testing.assert_array_equal(
            double(Matrix(data=data)).to_numpy(), (2 * data).astype(np.int16)
        )
