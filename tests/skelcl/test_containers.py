"""Vector/Matrix container tests: host access, coherence, redistribution."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import Block, Copy, Matrix, Overlap, Single, Vector
from repro.skelcl.runtime import SkelCLError


class TestVectorHostAccess:
    def test_create_and_fill_like_the_paper(self, runtime_1gpu):
        vec = Vector(16, dtype=np.int32)
        for i in range(vec.size):
            vec[i] = i
        assert list(vec.to_numpy()) == list(range(16))

    def test_from_numpy_copies(self, runtime_1gpu):
        data = np.arange(4, dtype=np.float32)
        vec = Vector(data=data)
        data[0] = 99
        assert vec[0] == 0

    def test_iteration(self, runtime_1gpu):
        vec = Vector(data=np.arange(5, dtype=np.float32))
        assert [float(x) for x in vec] == [0, 1, 2, 3, 4]

    def test_len_and_size(self, runtime_1gpu):
        vec = Vector(7)
        assert len(vec) == vec.size == 7

    def test_fill_and_assign(self, runtime_1gpu):
        vec = Vector(4, dtype=np.int32).fill(3)
        assert list(vec.to_numpy()) == [3, 3, 3, 3]
        vec.assign([1, 2, 3, 4])
        assert list(vec.to_numpy()) == [1, 2, 3, 4]

    def test_assign_wrong_size_rejected(self, runtime_1gpu):
        with pytest.raises(ValueError):
            Vector(4).assign([1, 2])

    def test_needs_size_or_data(self, runtime_1gpu):
        with pytest.raises(ValueError):
            Vector()


class TestMatrixHostAccess:
    def test_indexing(self, runtime_1gpu):
        mat = Matrix((3, 4), dtype=np.int32)
        mat[1, 2] = 9
        assert mat[1, 2] == 9

    def test_row_access(self, runtime_1gpu):
        mat = Matrix(data=np.arange(12, dtype=np.int32).reshape(3, 4))
        assert list(mat[1]) == [4, 5, 6, 7]

    def test_out_of_range_rejected(self, runtime_1gpu):
        mat = Matrix((2, 2))
        with pytest.raises(IndexError):
            mat[2, 0]

    def test_shape_properties(self, runtime_1gpu):
        mat = Matrix((3, 5))
        assert mat.shape == (3, 5) and mat.rows == 3 and mat.cols == 5 and mat.size == 15

    def test_requires_2d_data(self, runtime_1gpu):
        with pytest.raises(ValueError):
            Matrix(data=np.arange(4))

    def test_to_numpy_shape(self, runtime_1gpu):
        array = np.random.RandomState(0).rand(4, 6).astype(np.float32)
        assert np.array_equal(Matrix(data=array).to_numpy(), array)


class TestCoherence:
    def test_upload_then_host_read_roundtrip(self, runtime_2gpu):
        vec = Vector(data=np.arange(64, dtype=np.float32))
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()  # pretend a kernel wrote it
        np.testing.assert_array_equal(vec.to_numpy(), np.arange(64, dtype=np.float32))

    def test_host_write_invalidates_devices(self, runtime_2gpu):
        vec = Vector(data=np.zeros(8, np.float32))
        vec.ensure_on_devices(Block())
        assert vec.is_on_devices
        vec[0] = 5
        assert not vec.is_on_devices

    def test_upload_counts_transfer_bytes(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(1024, np.float32))
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        vec.ensure_on_devices(Block())
        after = sum(q.total_transfer_bytes for q in runtime.queues)
        assert after - before == 1024 * 4

    def test_copy_distribution_uploads_to_all_devices(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(256, np.float32))
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        vec.ensure_on_devices(Copy())
        after = sum(q.total_transfer_bytes for q in runtime.queues)
        assert after - before == 2 * 256 * 4

    def test_overlap_uploads_halo_too(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(100, np.float32))
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        vec.ensure_on_devices(Overlap(5))
        after = sum(q.total_transfer_bytes for q in runtime.queues)
        assert after - before == (55 + 55) * 4

    def test_single_uses_one_device(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(64, np.float32))
        vec.ensure_on_devices(Single(1))
        assert runtime.queues[1].total_transfer_bytes > 0
        assert runtime.queues[0].total_transfer_bytes == 0

    def test_no_reupload_when_clean(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(64, np.float32))
        vec.ensure_on_devices(Block())
        bytes_after_first = sum(q.total_transfer_bytes for q in runtime.queues)
        vec.ensure_on_devices(Block())
        assert sum(q.total_transfer_bytes for q in runtime.queues) == bytes_after_first


class TestRedistribution:
    def test_set_distribution_moves_data(self, runtime_2gpu):
        data = np.arange(32, dtype=np.float32)
        vec = Vector(data=data)
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        vec.set_distribution(Copy())
        np.testing.assert_array_equal(vec.to_numpy(), data)

    def test_redistribution_transfers_counted(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(128, np.float32))
        vec.ensure_on_devices(Block())
        vec.mark_written_on_devices()
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        vec.set_distribution(Copy())
        after = sum(q.total_transfer_bytes for q in runtime.queues)
        # download (128 elements) + upload to both devices (2 * 128)
        assert after - before == 3 * 128 * 4

    def test_same_distribution_is_noop(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(128, np.float32))
        vec.ensure_on_devices(Block())
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        vec.set_distribution(Block())
        assert sum(q.total_transfer_bytes for q in runtime.queues) == before

    def test_lazy_when_host_only(self, runtime_2gpu):
        runtime = runtime_2gpu
        vec = Vector(data=np.zeros(128, np.float32))
        vec.set_distribution(Copy())
        assert sum(q.total_transfer_bytes for q in runtime.queues) == 0
        assert vec.distribution == Copy()

    def test_matrix_block_distributes_rows(self, runtime_2gpu):
        mat = Matrix(data=np.arange(24, dtype=np.float32).reshape(6, 4))
        chunk_buffers = mat.ensure_on_devices(Block())
        assert [c.owned_size for c, _b in chunk_buffers] == [3, 3]
        # Buffer sizes are rows * cols * 4 bytes.
        assert all(b.nbytes == 3 * 4 * 4 for _c, b in chunk_buffers)


class TestRuntimeGuards:
    def test_container_requires_init(self):
        skelcl.terminate()
        with pytest.raises(SkelCLError):
            Vector(4).ensure_on_devices()

    def test_scalar_wrapper(self, runtime_1gpu):
        scalar = skelcl.Scalar(2.5, np.float32)
        assert scalar.get_value() == 2.5
        assert float(scalar) == 2.5
        assert int(skelcl.Scalar(3, np.int32)) == 3
