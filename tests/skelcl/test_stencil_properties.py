"""Property tests for MapOverlap: random stencils vs numpy convolution,
and the deep-recursion paths of Scan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import BoundaryMode, MapOverlap, Matrix, Scan, Vector


@pytest.fixture(scope="module", autouse=True)
def module_runtime():
    skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE)
    yield
    skelcl.terminate()


def stencil_source(weights) -> str:
    """Generate a MapOverlap customizing function for a 3x3 weight grid."""
    terms = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            weight = weights[di + 1][dj + 1]
            if weight != 0:
                terms.append(f"({weight}.0f * get(m, {dj}, {di}))")
    body = " + ".join(terms) if terms else "0.0f"
    return f"float func(const float* m) {{ return {body}; }}"


def stencil_reference(image, weights, mode):
    padded = np.pad(
        image.astype(np.float64), 1,
        mode="edge" if mode is BoundaryMode.NEAREST else "constant",
    )
    h, w = image.shape
    out = np.zeros((h, w), dtype=np.float64)
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            weight = weights[di + 1][dj + 1]
            if weight != 0:
                out += weight * padded[1 + di : 1 + di + h, 1 + dj : 1 + dj + w]
    return out.astype(np.float32)


_WEIGHTS = st.lists(
    st.lists(st.integers(-3, 3), min_size=3, max_size=3), min_size=3, max_size=3
)


class TestRandomStencils:
    @given(
        weights=_WEIGHTS,
        rows=st.integers(3, 24),
        cols=st.integers(3, 24),
        mode=st.sampled_from([BoundaryMode.NEUTRAL, BoundaryMode.NEAREST]),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_stencil_matches_numpy(self, weights, rows, cols, mode):
        rng = np.random.RandomState(rows * 31 + cols)
        image = rng.rand(rows, cols).astype(np.float32)
        stencil = MapOverlap(stencil_source(weights), 1, mode, 0.0)
        result = stencil(Matrix(data=image)).to_numpy()
        expected = stencil_reference(image, weights, mode)
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-5)

    @given(
        taps=st.lists(st.integers(-2, 2), min_size=3, max_size=3),
        n=st.integers(3, 200),
    )
    @settings(max_examples=30, deadline=None)
    def test_vector_stencils_match_numpy(self, taps, n):
        rng = np.random.RandomState(n)
        data = rng.rand(n).astype(np.float32)
        terms = " + ".join(
            f"({t}.0f * get(v, {d}))" for t, d in zip(taps, (-1, 0, 1)) if t != 0
        ) or "0.0f"
        stencil = MapOverlap(f"float f(const float* v) {{ return {terms}; }}",
                             1, BoundaryMode.NEUTRAL, 0.0)
        result = stencil(Vector(data=data)).to_numpy()
        padded = np.pad(data.astype(np.float64), 1)
        expected = sum(
            t * padded[1 + d : 1 + d + n] for t, d in zip(taps, (-1, 0, 1))
        )
        if isinstance(expected, int):  # all taps zero
            expected = np.zeros(n)
        np.testing.assert_allclose(result, expected.astype(np.float32), rtol=1e-4, atol=1e-5)


class TestScanDepth:
    def test_recursive_block_sums_scan(self):
        # > 256^2 elements forces a second recursion level in the
        # block-sums scan.
        n = 70_000
        data = np.ones(n, dtype=np.int32)
        prefix = Scan("int f(int a, int b) { return a + b; }")
        result = prefix(Vector(data=data)).to_numpy()
        np.testing.assert_array_equal(result, np.arange(1, n + 1, dtype=np.int32))

    def test_large_random_scan(self):
        rng = np.random.RandomState(0)
        data = rng.randint(-3, 4, 66_000).astype(np.int32)
        prefix = Scan("int f(int a, int b) { return a + b; }")
        result = prefix(Vector(data=data)).to_numpy()
        np.testing.assert_array_equal(result, np.cumsum(data, dtype=np.int32))
