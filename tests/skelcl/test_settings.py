"""The unified configuration chain: explicit kwarg >
``skelcl.configure()`` > ``SKELCL_*`` environment > default."""

from __future__ import annotations

import os

import pytest

import repro.skelcl as skelcl
from repro import settings


@pytest.fixture(autouse=True)
def _clean_config(monkeypatch):
    """Each test starts from a pristine chain: no configure() overrides,
    no SKELCL_* environment."""
    env_vars = ("SKELCL_BACKEND", "SKELCL_CACHE", "SKELCL_CACHE_DIR",
                "SKELCL_DIR", "SKELCL_LAZY", "SKELCL_METRICS",
                "SKELCL_PARTITION", "SKELCL_SANITIZE", "SKELCL_TRACE")
    settings.configure(reset=True)
    for var in env_vars:
        monkeypatch.delenv(var, raising=False)
    yield
    # Drop any env a test set *before* re-resolving: configure()
    # returns the current chain, which must not trip on leftovers.
    for var in env_vars:
        monkeypatch.delenv(var, raising=False)
    settings.configure(reset=True)
    skelcl.terminate()


class TestPrecedence:
    def test_defaults(self):
        resolved = skelcl.current_settings()
        assert resolved.backend == "vector"
        assert resolved.cache is True
        assert resolved.lazy is False
        assert resolved.sanitize == "off"
        assert resolved.partition is None
        assert resolved.trace is None

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("SKELCL_BACKEND", "interp")
        monkeypatch.setenv("SKELCL_LAZY", "1")
        resolved = skelcl.current_settings()
        assert resolved.backend == "interp"
        assert resolved.lazy is True

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("SKELCL_BACKEND", "interp")
        skelcl.configure(backend="vector")
        assert skelcl.current_settings().backend == "vector"

    def test_explicit_kwarg_beats_configure(self, monkeypatch):
        monkeypatch.setenv("SKELCL_SANITIZE", "strict")
        skelcl.configure(sanitize="report")
        session = skelcl.init(num_devices=1, detect_races="off")
        assert session.settings.sanitize == "off"

    def test_none_kwarg_defers_down_the_chain(self):
        skelcl.configure(lazy=True)
        session = skelcl.init(num_devices=1, lazy=None)
        assert session.settings.lazy is True
        assert session.lazy

    def test_configure_none_clears_one_override(self):
        skelcl.configure(backend="interp")
        skelcl.configure(backend=None)
        assert skelcl.current_settings().backend == "vector"

    def test_configure_reset_drops_all_overrides(self):
        skelcl.configure(backend="interp", lazy=True)
        skelcl.configure(reset=True)
        resolved = skelcl.current_settings()
        assert resolved.backend == "vector" and resolved.lazy is False


class TestSessionSettings:
    def test_session_exposes_resolved_settings(self):
        session = skelcl.init(num_devices=2, lazy=True, detect_races="report")
        assert isinstance(session.settings, skelcl.Settings)
        assert session.settings.lazy is True
        assert session.settings.sanitize == "report"
        assert session.settings.backend == session.backend

    def test_configure_shapes_later_sessions_only(self):
        first = skelcl.init(num_devices=1)
        assert first.settings.lazy is False
        skelcl.configure(lazy=True)
        second = skelcl.init(num_devices=1)
        assert second.settings.lazy is True
        assert first.settings.lazy is False  # frozen snapshot

    def test_settings_are_frozen(self):
        session = skelcl.init(num_devices=1)
        with pytest.raises(Exception):
            session.settings.backend = "interp"


class TestValidation:
    def test_unknown_setting_is_a_type_error(self):
        with pytest.raises(TypeError, match="valid settings"):
            skelcl.configure(torbo_mode=True)

    def test_invalid_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="interp"):
            skelcl.configure(backend="cuda")

    def test_invalid_sanitize_rejected(self):
        with pytest.raises(ValueError, match="off/report/strict"):
            skelcl.configure(sanitize="sometimes")

    def test_invalid_partition_policy_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            skelcl.configure(partition="magic")

    def test_bool_parsing(self, monkeypatch):
        for text, expect in (("1", True), ("on", True), ("true", True),
                             ("0", False), ("off", False), ("no", False)):
            monkeypatch.setenv("SKELCL_LAZY", text)
            assert skelcl.current_settings().lazy is expect, text

    def test_empty_env_string_means_default(self, monkeypatch):
        monkeypatch.setenv("SKELCL_CACHE", "")
        monkeypatch.setenv("SKELCL_PARTITION", "")
        resolved = skelcl.current_settings()
        assert resolved.cache is True  # not False: empty = unset
        assert resolved.partition is None

    def test_bad_env_value_raises_at_resolution(self, monkeypatch):
        monkeypatch.setenv("SKELCL_BACKEND", "cuda")
        with pytest.raises(ValueError, match="backend"):
            skelcl.current_settings()

    def test_sanitize_boolean_coercion(self):
        assert settings.resolve(sanitize=True).sanitize == "strict"
        skelcl.configure(reset=True, sanitize="warn")
        assert skelcl.current_settings().sanitize == "report"


class TestDerivedPaths:
    def test_cache_directory_default_under_dir(self):
        skelcl.configure(dir="/tmp/skelcl-test-home")
        assert settings.cache_directory() == "/tmp/skelcl-test-home/programs"

    def test_cache_dir_overrides_dir(self):
        skelcl.configure(dir="/tmp/skelcl-test-home",
                         cache_dir="/tmp/elsewhere")
        assert settings.cache_directory() == "/tmp/elsewhere"

    def test_env_mapping_round_trips(self):
        skelcl.configure(backend="interp", lazy=True, sanitize="strict")
        env = skelcl.current_settings().env
        assert env["SKELCL_BACKEND"] == "interp"
        assert env["SKELCL_LAZY"] == "1"
        assert env["SKELCL_SANITIZE"] == "strict"
        assert "SKELCL_TRACE" not in env  # unset switches omitted


class TestSubsystemsReadTheChain:
    def test_backend_setting_reaches_the_executor(self):
        skelcl.configure(backend="interp")
        session = skelcl.init(num_devices=1)
        assert session.backend == "interp"

    def test_sanitize_setting_arms_the_detector(self):
        skelcl.configure(sanitize="report")
        session = skelcl.init(num_devices=1)
        assert session.context.race_detector is not None

    def test_lazy_setting_installs_the_planner(self):
        skelcl.configure(lazy=True)
        session = skelcl.init(num_devices=1)
        assert session.planner is not None

    def test_partition_setting_installs_a_partition(self):
        skelcl.configure(partition="even")
        session = skelcl.init(num_devices=2)
        assert session.partition is not None

    def test_cache_setting_reaches_progcache(self):
        from repro.kernelc import progcache

        skelcl.configure(cache=False)
        assert progcache.enabled() is False
        skelcl.configure(cache=True)
        assert progcache.enabled() is True
