"""IndexVector/IndexMatrix tests: virtual containers, zero transfers."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import Block, Copy, IndexMatrix, IndexVector, Map, Single, Vector
from repro.skelcl.runtime import SkelCLError


class TestIndexVectorBasics:
    def test_elements_are_indices(self, runtime_1gpu):
        iv = IndexVector(5)
        assert list(iv) == [0, 1, 2, 3, 4]
        assert iv[3] == 3
        assert len(iv) == 5

    def test_out_of_range(self, runtime_1gpu):
        with pytest.raises(IndexError):
            IndexVector(4)[4]

    def test_invalid_size(self, runtime_1gpu):
        with pytest.raises(ValueError):
            IndexVector(0)

    def test_chunks_follow_distribution(self, runtime_4gpu):
        iv = IndexVector(100)
        chunks = iv.chunks()
        assert [c.owned_size for c in chunks] == [25, 25, 25, 25]
        iv.set_distribution(Single(2))
        assert len(iv.chunks()) == 1
        assert iv.chunks()[0].device_index == 2

    def test_index_matrix(self, runtime_1gpu):
        im = IndexMatrix((3, 4))
        assert im[1, 2] == 6
        assert im.size == 12
        with pytest.raises(IndexError):
            im[3, 0]


class TestMapOverIndexVector:
    def test_identity_map(self, runtime_2gpu):
        ident = Map("int func(int i) { return i; }")
        out = ident(IndexVector(100))
        np.testing.assert_array_equal(out.to_numpy(), np.arange(100, dtype=np.int32))

    def test_computation_from_index(self, runtime_2gpu):
        squares = Map("long func(int i) { return (long)i * i; }")
        out = squares(IndexVector(50))
        np.testing.assert_array_equal(out.to_numpy(), (np.arange(50, dtype=np.int64)) ** 2)

    def test_with_extra_args(self, runtime_2gpu):
        linear = Map("float func(int i, float a, float b) { return a * i + b; }")
        out = linear(IndexVector(20), 2.0, 1.0)
        np.testing.assert_allclose(out.to_numpy(), 2.0 * np.arange(20) + 1.0, rtol=1e-6)

    def test_no_transfers_for_input(self, runtime_2gpu):
        runtime = runtime_2gpu
        ident = Map("int func(int i) { return i; }")
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        ident(IndexVector(10000))
        after = sum(q.total_transfer_bytes for q in runtime.queues)
        assert after == before  # nothing uploaded (output stays on device)

    def test_float_parameter_rejected(self, runtime_1gpu):
        scale = Map("float func(float x) { return x; }")
        with pytest.raises(SkelCLError):
            scale(IndexVector(4))

    def test_multi_gpu_identical(self):
        from repro import ocl

        results = []
        for devices in (1, 3):
            skelcl.init(devices, ocl.TEST_DEVICE)
            cubes = Map("int func(int i) { return i * i * i; }")
            results.append(cubes(IndexVector(64)).to_numpy())
            skelcl.terminate()
        np.testing.assert_array_equal(results[0], results[1])

    def test_matches_materialized_index_vector(self, runtime_2gpu):
        func = "int func(int i) { return 7 * i - 3; }"
        virtual = Map(func)(IndexVector(40)).to_numpy()
        materialized = Map(func)(Vector(data=np.arange(40, dtype=np.int32))).to_numpy()
        np.testing.assert_array_equal(virtual, materialized)


class TestMandelbrotUsesIndexVector:
    def test_index_and_materialized_agree(self, runtime_2gpu):
        from repro.apps.mandelbrot import Mandelbrot

        fast = Mandelbrot(max_iterations=25, use_index_vector=True)
        slow = Mandelbrot(max_iterations=25, use_index_vector=False)
        np.testing.assert_array_equal(fast.render_image(48, 32), slow.render_image(48, 32))

    def test_index_vector_saves_the_upload(self, runtime_1gpu):
        from repro.apps.mandelbrot import Mandelbrot

        runtime = runtime_1gpu
        Mandelbrot(max_iterations=5, use_index_vector=True).render(64, 32)
        virtual_bytes = sum(q.total_transfer_bytes for q in runtime.queues)
        Mandelbrot(max_iterations=5, use_index_vector=False).render(64, 32)
        total = sum(q.total_transfer_bytes for q in runtime.queues)
        materialized_bytes = total - virtual_bytes
        assert virtual_bytes == 0
        assert materialized_bytes == 64 * 32 * 4  # the int index upload


class TestMapOverIndexMatrix:
    def test_row_col_function(self, runtime_2gpu):
        table = Map("int func(int row, int col) { return row * 100 + col; }")
        out = table(IndexMatrix((5, 7)))
        expected = np.arange(5)[:, None] * 100 + np.arange(7)[None, :]
        np.testing.assert_array_equal(out.to_numpy(), expected.astype(np.int32))

    def test_with_extra_args(self, runtime_2gpu):
        scaled = Map("float func(int row, int col, float s) { return s * (row + col); }")
        out = scaled(IndexMatrix((4, 4)), 0.5)
        expected = 0.5 * (np.arange(4)[:, None] + np.arange(4)[None, :])
        np.testing.assert_allclose(out.to_numpy(), expected, rtol=1e-6)

    def test_requires_two_integer_params(self, runtime_1gpu):
        single = Map("int func(int i) { return i; }")
        with pytest.raises(SkelCLError):
            single(IndexMatrix((2, 2)))
        floaty = Map("float func(float r, float c) { return r + c; }")
        with pytest.raises(SkelCLError):
            floaty(IndexMatrix((2, 2)))

    def test_multi_gpu_identical(self):
        from repro import ocl

        results = []
        for devices in (1, 3):
            skelcl.init(devices, ocl.TEST_DEVICE)
            fn = Map("int func(int row, int col) { return row * col; }")
            results.append(fn(IndexMatrix((9, 6))).to_numpy())
            skelcl.terminate()
        np.testing.assert_array_equal(results[0], results[1])

    def test_no_input_transfers(self, runtime_2gpu):
        runtime = runtime_2gpu
        fn = Map("int func(int row, int col) { return row - col; }")
        before = sum(q.total_transfer_bytes for q in runtime.queues)
        fn(IndexMatrix((16, 16)))
        assert sum(q.total_transfer_bytes for q in runtime.queues) == before
