"""Tiled AllPairs tests (the authors' follow-up optimization)."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.skelcl import AllPairs, Matrix, Reduce, Zip
from repro.skelcl.runtime import SkelCLError

ADD = "float f(float x, float y) { return x + y; }"
MUL = "float g(float x, float y) { return x * y; }"
MAX = "float f(float x, float y) { return x > y ? x : y; }"


def make(tiled=False, tile=16, reduce_src=ADD, identity="0"):
    return AllPairs(Reduce(reduce_src, identity=identity), Zip(MUL), tiled=tiled, tile=tile)


class TestTiledCorrectness:
    def test_matches_naive_matmul(self, runtime_2gpu, rng):
        a = rng.rand(33, 29).astype(np.float32)
        b = rng.rand(21, 29).astype(np.float32)
        naive = make()(Matrix(data=a), Matrix(data=b)).to_numpy()
        tiled = make(tiled=True)(Matrix(data=a), Matrix(data=b)).to_numpy()
        np.testing.assert_allclose(naive, a @ b.T, rtol=1e-4)
        np.testing.assert_allclose(tiled, naive, rtol=1e-5)

    def test_dimension_smaller_than_tile(self, runtime_1gpu, rng):
        a = rng.rand(5, 3).astype(np.float32)
        b = rng.rand(4, 3).astype(np.float32)
        tiled = make(tiled=True)(Matrix(data=a), Matrix(data=b)).to_numpy()
        np.testing.assert_allclose(tiled, a @ b.T, rtol=1e-4)

    def test_dimension_not_multiple_of_tile(self, runtime_1gpu, rng):
        a = rng.rand(17, 37).astype(np.float32)
        b = rng.rand(19, 37).astype(np.float32)
        tiled = make(tiled=True)(Matrix(data=a), Matrix(data=b)).to_numpy()
        np.testing.assert_allclose(tiled, a @ b.T, rtol=1e-4)

    def test_small_tile_size(self, runtime_1gpu, rng):
        a = rng.rand(10, 12).astype(np.float32)
        b = rng.rand(8, 12).astype(np.float32)
        tiled = make(tiled=True, tile=4)(Matrix(data=a), Matrix(data=b)).to_numpy()
        np.testing.assert_allclose(tiled, a @ b.T, rtol=1e-4)

    def test_non_additive_reduce(self, runtime_1gpu, rng):
        # max-reduce over products: zero-padding must not leak into the
        # result (the tiled loop bounds k by the true dimension).
        a = -rng.rand(9, 7).astype(np.float32)  # all negative
        b = rng.rand(6, 7).astype(np.float32)
        expected = (a[:, None, :] * b[None, :, :]).max(axis=2).astype(np.float32)
        tiled = make(tiled=True, reduce_src=MAX, identity="-3.402823466e38f")(
            Matrix(data=a), Matrix(data=b)
        ).to_numpy()
        np.testing.assert_allclose(tiled, expected, rtol=1e-4)

    def test_multi_gpu_matches_single(self, rng):
        from repro import ocl

        a = rng.rand(40, 24).astype(np.float32)
        b = rng.rand(18, 24).astype(np.float32)
        results = []
        for devices in (1, 3):
            skelcl.init(devices, ocl.TEST_DEVICE)
            results.append(make(tiled=True)(Matrix(data=a), Matrix(data=b)).to_numpy())
            skelcl.terminate()
        np.testing.assert_allclose(results[0], results[1], rtol=1e-6)


class TestTiledCostStructure:
    def test_fewer_global_loads(self, runtime_1gpu, rng):
        a = rng.rand(64, 64).astype(np.float32)
        b = rng.rand(64, 64).astype(np.float32)
        naive = make()
        tiled = make(tiled=True)
        naive(Matrix(data=a), Matrix(data=b))
        tiled(Matrix(data=a), Matrix(data=b))
        naive_loads = naive.last_events[0].info["global_loads"]
        tiled_loads = tiled.last_events[0].info["global_loads"]
        assert tiled_loads < naive_loads / 8  # ~tile-factor reduction
        assert tiled.last_events[0].info["local_loads"] > 0

    def test_raw_form_cannot_be_tiled(self, runtime_1gpu):
        with pytest.raises(SkelCLError):
            AllPairs(source="float f(const float* a, const float* b, int d) { return 0.0f; }",
                     tiled=True)
