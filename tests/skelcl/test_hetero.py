"""Heterogeneous-pool behaviour: uneven partitions are bit-exact across
all six skeletons, zero-weight devices enqueue nothing, uneven halo
exchange and redistribution are race-free, and the adaptive partitioner
converges near the oracle split on a skewed CPU+GPU pool."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import Partition

RNG_SEED = 1234

UNEVEN_PARTITIONS = [
    Partition.of(5, 1, 2),
    Partition.of(1, 0, 3),
    Partition.of(0, 1, 0),
]


def _run(partition, workload):
    with skelcl.init(num_devices=3, spec=ocl.TEST_DEVICE, partition=partition):
        return workload()


def _map_workload():
    neg = skelcl.Map("float func(float x) { return -x * 0.5f; }")
    data = np.random.default_rng(RNG_SEED).random(613, dtype=np.float32)
    return neg(skelcl.Vector(data=data)).to_numpy()


def _zip_workload():
    rng = np.random.default_rng(RNG_SEED)
    mult = skelcl.Zip("float func(float x, float y) { return x * y + 1.0f; }")
    a = skelcl.Vector(data=rng.random(613, dtype=np.float32))
    b = skelcl.Vector(data=rng.random(613, dtype=np.float32))
    return mult(a, b).to_numpy()


def _reduce_workload():
    rng = np.random.default_rng(RNG_SEED)
    add = skelcl.Reduce("int func(int x, int y) { return x + y; }")
    data = rng.integers(-1000, 1000, size=613, dtype=np.int32)
    return add(skelcl.Vector(data=data)).get_value()


def _scan_workload():
    rng = np.random.default_rng(RNG_SEED)
    prefix = skelcl.Scan("int func(int x, int y) { return x + y; }")
    data = rng.integers(-50, 50, size=613, dtype=np.int32)
    return prefix(skelcl.Vector(data=data)).to_numpy()


def _mapoverlap_vector_workload():
    rng = np.random.default_rng(RNG_SEED)
    stencil = skelcl.MapOverlap(
        """float func(float* v) {
            return get(v, -2) + get(v, -1) + get(v, 0) + get(v, 1) + get(v, 2);
        }""",
        2, skelcl.SCL_NEUTRAL, 0.0)
    data = rng.random(613, dtype=np.float32)
    return stencil(skelcl.Vector(data=data)).to_numpy()


def _mapoverlap_matrix_workload():
    rng = np.random.default_rng(RNG_SEED)
    blur = skelcl.MapOverlap(
        """float func(float* m) {
            float s = 0.0f;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    s += get(m, dx, dy);
            return s;
        }""",
        1, skelcl.SCL_NEAREST)
    data = rng.random((37, 23), dtype=np.float32)
    return blur(skelcl.Matrix(data=data)).to_numpy()


def _allpairs_workload():
    rng = np.random.default_rng(RNG_SEED)
    add = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    mult = skelcl.Zip("float func(float x, float y) { return x * y; }")
    matmul = skelcl.AllPairs(add, mult)
    a = skelcl.Matrix(data=rng.random((23, 17), dtype=np.float32))
    b = skelcl.Matrix(data=rng.random((11, 17), dtype=np.float32))
    return matmul(a, b).to_numpy()


WORKLOADS = {
    "map": _map_workload,
    "zip": _zip_workload,
    "reduce": _reduce_workload,
    "scan": _scan_workload,
    "mapoverlap_vector": _mapoverlap_vector_workload,
    "mapoverlap_matrix": _mapoverlap_matrix_workload,
    "allpairs": _allpairs_workload,
}


class TestUnevenBitExact:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("partition", UNEVEN_PARTITIONS, ids=str)
    def test_uneven_matches_even_baseline(self, name, partition):
        workload = WORKLOADS[name]
        baseline = _run(None, workload)
        uneven = _run(partition, workload)
        assert np.array_equal(np.asarray(baseline), np.asarray(uneven))


class TestZeroWeightDeviceIsSilent:
    @pytest.mark.parametrize(
        "name", ["map", "zip", "scan", "mapoverlap_vector", "mapoverlap_matrix"]
    )
    def test_no_commands_enqueued_on_zero_weight_device(self, name):
        with skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE,
                         partition=Partition.of(1, 0)) as session:
            workload = {
                "map": _map_workload,
                "zip": _zip_workload,
                "scan": _scan_workload,
                "mapoverlap_vector": _mapoverlap_vector_workload,
                "mapoverlap_matrix": _mapoverlap_matrix_workload,
            }[name]
            workload()
            session.finish_all()
            assert len(session.queue(0).events) > 0
            assert len(session.queue(1).events) == 0
            assert session.metrics.value("skelcl_kernel_ns_total", device=1) == 0


class TestUnevenHaloExchangeStrict:
    def test_uneven_halo_exchange_and_redistribution_are_race_free(self):
        # strict SkelSan raises at the first unordered conflicting pair,
        # so simply completing this sequence is the assertion.
        rng = np.random.default_rng(RNG_SEED)
        data = rng.random(521, dtype=np.float32)
        stencil = skelcl.MapOverlap(
            "float func(float* v) { return get(v, -1) + get(v, 1); }",
            1, skelcl.SCL_NEUTRAL, 0.0)
        scale = skelcl.Map("float func(float x) { return x * 2.0f; }")
        with skelcl.init(num_devices=3, spec=ocl.TEST_DEVICE,
                         detect_races="strict",
                         partition=Partition.of(3, 1, 2)) as session:
            v = skelcl.Vector(data=data)
            blocked = scale(v)                  # Block(3,1,2) output
            first = stencil(blocked)            # halo grow around uneven split
            # Re-partition mid-flight: stale containers must redistribute
            # through the command graph on their next use.
            session.partition = Partition.of(1, 4, 1)
            second = stencil(blocked)
            third = stencil(second)             # chained stencil, fresh halos
            session.finish_all()
            assert session.context.check_races() == []
            expected = np.zeros_like(data)
            expected[:-1] += data[1:] * 2.0
            expected[1:] += data[:-1] * 2.0
            np.testing.assert_allclose(first.to_numpy(), expected, rtol=1e-6)
            np.testing.assert_array_equal(first.to_numpy(), second.to_numpy())


_HEAVY_MAP = """\
float func(float x) {
    float a = x;
    for (int i = 0; i < 64; ++i) {
        a = a * 1.000001f + 0.25f;
    }
    return a;
}"""


def _kernel_ns_by_device(session):
    return [session.metrics.value("skelcl_kernel_ns_total", device=index)
            for index in range(session.num_devices)]


def _iteration(session, skel, vec):
    """One skeleton call; returns (per-device kernel ns, output)."""
    before = _kernel_ns_by_device(session)
    out = skel(vec)
    session.finish_all()
    after = _kernel_ns_by_device(session)
    return [a - b for a, b in zip(after, before)], out


class TestAdaptiveConvergence:
    def test_converges_within_three_repartitions_and_nears_oracle(self):
        n = 3 * 32768
        data = np.random.default_rng(RNG_SEED).random(n, dtype=np.float32)
        with skelcl.init(devices=["tesla", "tesla", "cpu-8core"],
                         backend="vector") as session:
            skel = skelcl.Map(_HEAVY_MAP)
            vec = skelcl.Vector(data=data)

            even_times, even_out = _iteration(session, skel, vec)
            even_cp = max(even_times)
            baseline = even_out.to_numpy()

            # Adapt from the even split; ~4:1 throughput skew to discover.
            partitioner = session.use_adaptive(initial="even")
            steady_cp = None
            for _ in range(6):
                times, out = _iteration(session, skel, vec)
                steady_cp = max(times)
                assert np.array_equal(out.to_numpy(), baseline)
            assert partitioner.repartitions <= 3
            assert partitioner.history[-1] == session.partition
            assert even_cp >= 2.0 * steady_cp

            # Oracle: fit the (linear) per-device cost model from two
            # measured splits, scan all CPU shares at work-group
            # granularity, then *run* the best split and compare.
            session.partitioner = None
            session.partition = Partition.of(1, 1, 2)
            probe_times, _out = _iteration(session, skel, vec)
            fits = []
            for index in range(3):
                u1 = Partition.even(3).counts(n)[index]
                u2 = Partition.of(1, 1, 2).counts(n)[index]
                slope = (probe_times[index] - even_times[index]) / (u2 - u1)
                fits.append((even_times[index] - slope * u1, slope))
            best_cpu, best_model = 0, float("inf")
            for cpu_units in range(0, n + 1, 256):
                gpu_units = -(-(n - cpu_units) // 2)  # ceil: worst GPU chunk
                model = max(
                    fits[0][0] + fits[0][1] * gpu_units,
                    fits[1][0] + fits[1][1] * gpu_units,
                    fits[2][0] + fits[2][1] * cpu_units,
                )
                if model < best_model:
                    best_cpu, best_model = cpu_units, model
            gpu_units = n - best_cpu
            session.partition = Partition.of(
                gpu_units - gpu_units // 2, gpu_units // 2, best_cpu
            )
            oracle_times, oracle_out = _iteration(session, skel, vec)
            oracle_cp = max(oracle_times)
            assert np.array_equal(oracle_out.to_numpy(), baseline)
            assert steady_cp <= 1.10 * oracle_cp
