"""N-body application tests (skeleton force evaluation vs numpy)."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.nbody import (
    NBodySimulation,
    NBodyState,
    accelerations_reference,
    plummer_sphere,
)


class TestForces:
    def test_accelerations_match_reference(self, runtime_2gpu):
        state = plummer_sphere(24)
        sim = NBodySimulation(state, softening=0.05)
        acc = sim.accelerations()
        expected = accelerations_reference(sim.state, 0.05)
        np.testing.assert_allclose(acc, expected, rtol=2e-3, atol=2e-4)

    def test_two_body_symmetry(self, runtime_1gpu):
        state = NBodyState(
            positions=np.array([[-1, 0, 0], [1, 0, 0]], np.float32),
            velocities=np.zeros((2, 3), np.float32),
            masses=np.array([1.0, 1.0], np.float32),
        )
        sim = NBodySimulation(state, softening=0.01)
        acc = sim.accelerations()
        # Equal masses: opposite accelerations along x, none along y/z.
        np.testing.assert_allclose(acc[0], -acc[1], atol=1e-5)
        assert acc[0, 0] > 0 and acc[1, 0] < 0
        np.testing.assert_allclose(acc[:, 1:], 0.0, atol=1e-5)

    def test_heavier_body_accelerates_less(self, runtime_1gpu):
        state = NBodyState(
            positions=np.array([[-1, 0, 0], [1, 0, 0]], np.float32),
            velocities=np.zeros((2, 3), np.float32),
            masses=np.array([10.0, 1.0], np.float32),
        )
        sim = NBodySimulation(state, softening=0.01)
        acc = sim.accelerations()
        assert abs(acc[0, 0]) < abs(acc[1, 0])

    def test_self_interaction_excluded_by_softening(self, runtime_1gpu):
        # A single body must not accelerate.
        state = NBodyState(
            positions=np.zeros((1, 3), np.float32),
            velocities=np.zeros((1, 3), np.float32),
            masses=np.array([5.0], np.float32),
        )
        acc = NBodySimulation(state).accelerations()
        np.testing.assert_allclose(acc, 0.0, atol=1e-6)


class TestIntegration:
    def test_energy_drift_bounded(self, runtime_1gpu):
        sim = NBodySimulation(plummer_sphere(16), softening=0.1)
        initial = sim.total_energy()
        sim.run(steps=20, dt=0.01)
        final = sim.total_energy()
        scale = abs(initial) if initial != 0 else 1.0
        assert abs(final - initial) / scale < 0.05  # leapfrog: small drift

    def test_momentum_approximately_conserved(self, runtime_1gpu):
        sim = NBodySimulation(plummer_sphere(12), softening=0.1)
        masses = sim.state.masses[:, None]
        initial = (masses * sim.state.velocities).sum(axis=0)
        sim.run(steps=10, dt=0.01)
        final = (masses * sim.state.velocities).sum(axis=0)
        np.testing.assert_allclose(final, initial, atol=5e-4)

    def test_multi_gpu_matches_single_gpu(self):
        results = []
        for devices in (1, 2):
            skelcl.init(devices, ocl.TEST_DEVICE)
            sim = NBodySimulation(plummer_sphere(10), softening=0.1)
            sim.run(steps=3, dt=0.02)
            results.append(sim.state.positions.copy())
            skelcl.terminate()
        np.testing.assert_allclose(results[0], results[1], rtol=1e-5, atol=1e-6)

    def test_deterministic(self, runtime_1gpu):
        runs = []
        for _ in range(2):
            sim = NBodySimulation(plummer_sphere(8), softening=0.1)
            sim.run(steps=2, dt=0.02)
            runs.append(sim.state.positions.copy())
        np.testing.assert_array_equal(runs[0], runs[1])
