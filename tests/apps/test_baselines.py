"""Baseline implementation tests: correctness, CUDA translation, and the
cost-structure properties Fig. 4/5 depend on."""

import numpy as np
import pytest

from repro import ocl
from repro.apps.images import sobel_reference_uchar, synthetic_image
from repro.apps.mandelbrot import mandelbrot_reference
from repro.baselines.cuda import CUDA_EFFICIENCY, CudaRuntime, cuda_to_opencl
from repro.baselines.dotproduct_cl import DotProductOpenCL
from repro.baselines.mandelbrot_cl import MandelbrotOpenCL
from repro.baselines.mandelbrot_cuda import MandelbrotCuda
from repro.baselines.sobel_amd import SobelAmd
from repro.baselines.sobel_nvidia import SobelNvidia


@pytest.fixture
def ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE)
    yield context
    context.release()


class TestCudaTranslation:
    def test_kernel_qualifier(self):
        out = cuda_to_opencl("__global__ void k(float* p) { }")
        assert "__kernel void k(__global float* p)" in out

    def test_thread_indexing(self):
        out = cuda_to_opencl("int i = blockIdx.x * blockDim.x + threadIdx.x;")
        assert out == "int i = get_group_id(0) * get_local_size(0) + get_local_id(0);"

    def test_y_and_z_dimensions(self):
        out = cuda_to_opencl("int j = threadIdx.y + threadIdx.z + gridDim.y;")
        assert "get_local_id(1)" in out and "get_local_id(2)" in out and "get_num_groups(1)" in out

    def test_shared_and_sync(self):
        out = cuda_to_opencl("__shared__ float tile[16];\n__syncthreads();")
        assert "__local float tile[16];" in out
        assert "barrier(CLK_LOCAL_MEM_FENCE)" in out

    def test_device_qualifier_removed(self):
        out = cuda_to_opencl("__device__ float f(float x) { return x; }")
        assert "__device__" not in out

    def test_existing_address_space_untouched(self):
        out = cuda_to_opencl("__global__ void k(__local float* p, int n) { }")
        assert "__global __local" not in out

    def test_translated_kernel_compiles(self):
        from repro.kernelc import compile_source

        source = cuda_to_opencl(
            """__global__ void add(float* a, float* b, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) a[i] += b[i];
            }"""
        )
        program = compile_source(source)
        assert [k.name for k in program.kernels()] == ["add"]


class TestCudaRuntime:
    def test_efficiency_factor_applied(self):
        runtime = CudaRuntime(ocl.TEST_DEVICE)
        assert runtime.spec.efficiency == pytest.approx(ocl.TEST_DEVICE.efficiency * CUDA_EFFICIENCY)
        runtime.release()

    def test_memcpy_roundtrip(self):
        runtime = CudaRuntime(ocl.TEST_DEVICE)
        data = np.arange(32, dtype=np.float32)
        buffer = runtime.malloc(data.nbytes)
        runtime.memcpy_host_to_device(buffer, data)
        out, _event = runtime.memcpy_device_to_host(buffer, np.float32, 32)
        np.testing.assert_array_equal(out, data)
        runtime.release()

    def test_module_cache(self):
        runtime = CudaRuntime(ocl.TEST_DEVICE)
        src = "__global__ void k(int* p) { p[0] = 1; }"
        assert runtime.load_module(src) is runtime.load_module(src)
        runtime.release()


class TestSobelBaselines:
    def test_amd_interior_matches_reference(self, ctx):
        image = synthetic_image(48, 48)
        edges, _event = SobelAmd(ctx).run(image)
        reference = sobel_reference_uchar(image)
        np.testing.assert_array_equal(edges[1:-1, 1:-1], reference[1:-1, 1:-1])

    def test_amd_borders_are_zero(self, ctx):
        image = synthetic_image(32, 32)
        edges, _event = SobelAmd(ctx).run(image)
        assert edges[0].max() == 0 and edges[-1].max() == 0
        assert edges[:, 0].max() == 0 and edges[:, -1].max() == 0

    def test_nvidia_matches_reference_everywhere(self, ctx):
        image = synthetic_image(48, 48)
        edges, _event = SobelNvidia(ctx).run(image)
        np.testing.assert_array_equal(edges, sobel_reference_uchar(image))

    def test_nvidia_non_multiple_of_tile(self, ctx):
        image = synthetic_image(40, 56)  # not multiples of 16
        edges, _event = SobelNvidia(ctx).run(image)
        np.testing.assert_array_equal(edges, sobel_reference_uchar(image))

    def test_amd_does_many_more_global_loads(self, ctx):
        """The structural fact behind Fig. 5: AMD ~9 global loads per
        pixel, NVIDIA ~1.3 (tiled through local memory)."""
        image = synthetic_image(64, 64)
        _, amd_event = SobelAmd(ctx).run(image)
        _, nvidia_event = SobelNvidia(ctx).run(image)
        assert amd_event.info["global_loads"] > 5 * nvidia_event.info["global_loads"]
        assert nvidia_event.info["local_loads"] > 0
        assert amd_event.info["local_loads"] == 0

    def test_amd_slower_than_nvidia_on_fermi(self):
        # On the paper's 480-PE Tesla the AMD version is memory-bound
        # through its 9 global loads per pixel (Fig. 5); the tiny test
        # device is too compute-limited to show the gap.
        fermi = ocl.Context.create(ocl.TESLA_FERMI_480)
        image = synthetic_image(128, 128)
        _, amd_event = SobelAmd(fermi).run(image)
        _, nvidia_event = SobelNvidia(fermi).run(image)
        assert amd_event.duration_ns > 1.5 * nvidia_event.duration_ns
        fermi.release()


class TestMandelbrotBaselines:
    def test_opencl_matches_reference(self, ctx):
        image, _event = MandelbrotOpenCL(ctx).run(64, 48, 30)
        reference = mandelbrot_reference(64, 48, 30)
        mismatch = np.count_nonzero(image != reference) / image.size
        assert mismatch < 0.02

    def test_cuda_and_opencl_agree_exactly(self, ctx):
        cl_image, _ = MandelbrotOpenCL(ctx).run(64, 48, 25)
        runtime = CudaRuntime(ocl.TEST_DEVICE)
        cu_image, _ = MandelbrotCuda(runtime).run(64, 48, 25)
        np.testing.assert_array_equal(cl_image, cu_image)
        runtime.release()

    def test_cuda_faster_than_opencl(self, ctx):
        _, cl_event = MandelbrotOpenCL(ctx).run(128, 96, 40)
        runtime = CudaRuntime(ocl.TEST_DEVICE)
        _, cu_event = MandelbrotCuda(runtime).run(128, 96, 40)
        ratio = cu_event.duration_ns / cl_event.duration_ns
        assert 0.6 < ratio < 0.95  # ~1/1.3 with overheads
        runtime.release()

    def test_non_multiple_sizes(self, ctx):
        image, _ = MandelbrotOpenCL(ctx).run(50, 34, 20)
        assert image.shape == (34, 50)


class TestDotProductBaseline:
    def test_matches_numpy(self, ctx, rng):
        a = rng.rand(10000).astype(np.float32)
        b = rng.rand(10000).astype(np.float32)
        value, _event = DotProductOpenCL(ctx).run(a, b)
        assert value == pytest.approx(float(np.dot(a, b)), rel=1e-4)

    def test_small_input(self, ctx):
        a = np.array([1.0, 2.0], np.float32)
        b = np.array([3.0, 4.0], np.float32)
        value, _event = DotProductOpenCL(ctx).run(a, b)
        assert value == pytest.approx(11.0)

    def test_size_mismatch_rejected(self, ctx):
        with pytest.raises(ValueError):
            DotProductOpenCL(ctx).run(np.zeros(4, np.float32), np.zeros(5, np.float32))

    def test_agrees_with_skelcl_dotproduct(self, ctx, rng):
        import repro.skelcl as skelcl
        from repro.apps.dotproduct import DotProduct

        a = rng.rand(2048).astype(np.float32)
        b = rng.rand(2048).astype(np.float32)
        cl_value, _ = DotProductOpenCL(ctx).run(a, b)
        skelcl.init(2, ocl.TEST_DEVICE)
        try:
            skelcl_value = DotProduct().compute(a, b)
        finally:
            skelcl.terminate()
        assert cl_value == pytest.approx(skelcl_value, rel=1e-4)
