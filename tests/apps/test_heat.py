"""Heat diffusion (iterative MapOverlap) tests."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.heat import HeatDiffusion, hot_spot_grid, jacobi_reference
from repro.skelcl import Matrix


class TestSweeps:
    def test_single_sweep_matches_reference(self, runtime_2gpu):
        grid = hot_spot_grid(24)
        heat = HeatDiffusion(alpha=0.8)
        result = heat.step(Matrix(data=grid)).to_numpy()
        np.testing.assert_allclose(result, jacobi_reference(grid, 1, 0.8), rtol=1e-5, atol=1e-5)

    def test_ten_sweeps_match_reference(self, runtime_2gpu):
        grid = hot_spot_grid(16)
        heat = HeatDiffusion(alpha=1.0)
        current = Matrix(data=grid)
        for _ in range(10):
            current = heat.step(current)
        np.testing.assert_allclose(
            current.to_numpy(), jacobi_reference(grid, 10, 1.0), rtol=1e-4, atol=1e-4
        )

    def test_uniform_grid_is_fixed_point(self, runtime_1gpu):
        grid = np.full((12, 12), 42.0, np.float32)
        result = HeatDiffusion().step(Matrix(data=grid)).to_numpy()
        np.testing.assert_allclose(result, grid, rtol=1e-6)

    def test_insulated_boundaries_conserve_heat(self, runtime_1gpu):
        # NEAREST boundaries insulate: total heat is conserved up to
        # float error... Jacobi averaging with edge replication is not
        # exactly conservative, but the mean must stay within the
        # initial min/max envelope (maximum principle).
        grid = hot_spot_grid(16)
        heat = HeatDiffusion()
        current = Matrix(data=grid)
        for _ in range(20):
            current = heat.step(current)
        values = current.to_numpy()
        assert values.min() >= grid.min() - 1e-4
        assert values.max() <= grid.max() + 1e-4

    def test_diffusion_smooths(self, runtime_1gpu):
        grid = hot_spot_grid(16)
        result = HeatDiffusion().run(grid, max_iterations=30).grid
        assert result.std() < grid.std()
        assert result.max() < grid.max()


class TestConvergence:
    def test_run_reports_residual_and_iterations(self, runtime_1gpu):
        result = HeatDiffusion().run(hot_spot_grid(12), max_iterations=40, tolerance=1e-3)
        assert 0 < result.iterations <= 40
        assert result.residual >= 0.0

    def test_converges_on_tiny_grid(self, runtime_1gpu):
        result = HeatDiffusion().run(hot_spot_grid(8), max_iterations=500, tolerance=1e-5)
        assert result.residual < 1e-5
        assert result.iterations < 500

    def test_invalid_alpha_rejected(self, runtime_1gpu):
        with pytest.raises(ValueError):
            HeatDiffusion(alpha=0.0)
        with pytest.raises(ValueError):
            HeatDiffusion(alpha=1.5)

    def test_multi_gpu_identical(self):
        grid = hot_spot_grid(20)
        results = []
        for devices in (1, 3):
            skelcl.init(devices, ocl.TEST_DEVICE)
            results.append(HeatDiffusion().run(grid, max_iterations=12).grid)
            skelcl.terminate()
        np.testing.assert_allclose(results[0], results[1], rtol=1e-6)

    def test_intermediate_grids_stay_on_device(self, runtime_1gpu):
        # Between sweeps nothing should be downloaded: the output of one
        # MapOverlap feeds the next via a device-side redistribution
        # (block -> overlap), never through numpy.
        runtime = runtime_1gpu
        heat = HeatDiffusion()
        grid = Matrix(data=hot_spot_grid(16))
        grid = heat.step(grid)
        read_before = sum(
            e.info.get("bytes", 0)
            for q in runtime.queues
            for e in q.events
            if e.command_type == "read_buffer"
        )
        for _ in range(3):
            grid = heat.step(grid)
        read_after = sum(
            e.info.get("bytes", 0)
            for q in runtime.queues
            for e in q.events
            if e.command_type == "read_buffer"
        )
        # Single GPU: block == overlap chunk contents, no halo refresh
        # needed, so no reads at all.
        assert read_after == read_before


class TestMultiGpuHaloTraffic:
    def test_sweeps_exchange_only_halos(self, runtime_2gpu):
        # On 2 GPUs, each sweep's block->overlap(1) refresh must move
        # exactly the interior-border rows (1 row each side of the
        # device boundary, down + up), not the whole grid.
        runtime = runtime_2gpu
        heat = HeatDiffusion()
        size = 32
        grid = Matrix(data=hot_spot_grid(size))
        grid = heat.step(grid)  # warm-up: initial upload happens here
        # PCIe traffic only: the in-place halo refresh also issues
        # device-local copy_buffer commands, which count into
        # total_transfer_bytes but never cross the host link.
        before = sum(q.total_pcie_bytes for q in runtime.queues)
        sweeps = 4
        for _ in range(sweeps):
            grid = heat.step(grid)
        moved = sum(q.total_pcie_bytes for q in runtime.queues) - before
        row_bytes = size * 4
        per_sweep = 2 * (2 * row_bytes)  # 2 halo rows, each down+up
        assert moved == sweeps * per_sweep
