"""Application correctness tests (the paper's evaluation programs)."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.apps.dotproduct import DotProduct, dot_product
from repro.apps.gaussian import GaussianBlur, gaussian_reference
from repro.apps.images import checkerboard, sobel_reference_uchar, synthetic_image
from repro.apps.mandelbrot import Mandelbrot, MandelbrotView, mandelbrot_reference
from repro.apps.manhattan import ManhattanDistance
from repro.apps.matmul import MatrixMultiplication
from repro.apps.sobel import SobelEdgeDetection
from repro.skelcl import Matrix, Vector


class TestImages:
    def test_test_image_deterministic(self):
        a = synthetic_image(64, 64)
        b = synthetic_image(64, 64)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.uint8
        assert a.shape == (64, 64)

    def test_test_image_has_structure(self):
        image = synthetic_image(128, 128)
        assert image.std() > 20  # edges and shapes, not flat

    def test_checkerboard(self):
        board = checkerboard(16, 16, tile=4)
        assert board[0, 0] == 0
        assert board[0, 4] == 255
        assert board[4, 0] == 255

    def test_sobel_reference_flat_image_is_zero(self):
        flat = np.full((16, 16), 100, np.uint8)
        assert sobel_reference_uchar(flat)[1:-1, 1:-1].max() == 0


class TestMandelbrot:
    def test_matches_reference(self, runtime_2gpu):
        app = Mandelbrot(max_iterations=40)
        image = app.render_image(64, 48)
        reference = mandelbrot_reference(64, 48, 40)
        # float32 rounding at the set boundary may flip a few pixels.
        mismatch = np.count_nonzero(image != reference) / image.size
        assert mismatch < 0.02

    def test_interior_pixels_hit_max_iterations(self, runtime_1gpu):
        app = Mandelbrot(max_iterations=30)
        view = MandelbrotView(-0.1, 0.1, -0.1, 0.1)  # deep interior
        image = app.render_image(16, 16, view)
        assert (image == 30 % 256).all()

    def test_exterior_escapes_quickly(self, runtime_1gpu):
        app = Mandelbrot(max_iterations=50)
        view = MandelbrotView(10.0, 11.0, 10.0, 11.0)  # far outside
        image = app.render_image(8, 8, view)
        assert (image <= 1).all()

    def test_multi_gpu_identical(self, rng):
        results = []
        for devices in (1, 2):
            skelcl.init(devices, ocl.TEST_DEVICE)
            results.append(Mandelbrot(max_iterations=25).render_image(64, 32))
            skelcl.terminate()
        np.testing.assert_array_equal(results[0], results[1])

    def test_sampled_render_returns(self, runtime_1gpu):
        app = Mandelbrot(max_iterations=20)
        app.render(128, 64, sample_fraction=0.1)
        event = app.last_events[-1]
        assert event.info["groups_executed"] < event.info["groups_total"]


class TestSobel:
    def test_matches_numpy_reference(self, runtime_2gpu):
        image = synthetic_image(64, 48)
        edges = SobelEdgeDetection().detect(image)
        np.testing.assert_array_equal(edges, sobel_reference_uchar(image))

    def test_detects_checkerboard_edges(self, runtime_1gpu):
        board = checkerboard(32, 32, tile=8)
        edges = SobelEdgeDetection().detect(board)
        # Tile interiors are flat -> zero response.
        assert edges[4, 4] == 0
        # Tile borders respond.
        assert edges[4, 7] > 0 or edges[4, 8] > 0

    def test_static_bounds_proof_succeeds_for_sobel(self, runtime_1gpu):
        app = SobelEdgeDetection()
        assert app.map_overlap.bounds_proof.proven
        assert app.map_overlap.checks_elided

    def test_multi_gpu_identical(self):
        image = synthetic_image(48, 40)
        results = []
        for devices in (1, 3):
            skelcl.init(devices, ocl.TEST_DEVICE)
            results.append(SobelEdgeDetection().detect(image))
            skelcl.terminate()
        np.testing.assert_array_equal(results[0], results[1])


class TestDotProduct:
    def test_matches_numpy(self, runtime_2gpu, rng):
        a = rng.rand(4096).astype(np.float32)
        b = rng.rand(4096).astype(np.float32)
        result = DotProduct().compute(a, b)
        assert result == pytest.approx(float(np.dot(a, b)), rel=1e-4)

    def test_one_shot_helper(self, runtime_1gpu):
        a = np.array([1.0, 2.0, 3.0], np.float32)
        b = np.array([4.0, 5.0, 6.0], np.float32)
        assert dot_product(a, b) == pytest.approx(32.0)

    def test_reusable_object(self, runtime_1gpu, rng):
        dot = DotProduct()
        for _ in range(3):
            a = rng.rand(128).astype(np.float32)
            b = rng.rand(128).astype(np.float32)
            assert dot.compute(a, b) == pytest.approx(float(a @ b), rel=1e-4)


class TestMatmul:
    def test_matches_numpy(self, runtime_2gpu, rng):
        a = rng.rand(17, 9).astype(np.float32)
        b = rng.rand(9, 13).astype(np.float32)
        result = MatrixMultiplication().compute(a, b)
        np.testing.assert_allclose(result, a @ b, rtol=1e-4)

    def test_identity(self, runtime_1gpu):
        eye = np.eye(8, dtype=np.float32)
        a = np.arange(64, dtype=np.float32).reshape(8, 8)
        np.testing.assert_allclose(MatrixMultiplication().compute(a, eye), a, rtol=1e-5)

    def test_multi_gpu_identical(self, rng):
        a = rng.rand(12, 6).astype(np.float32)
        b = rng.rand(6, 10).astype(np.float32)
        results = []
        for devices in (1, 4):
            skelcl.init(devices, ocl.TEST_DEVICE)
            results.append(MatrixMultiplication().compute(a, b))
            skelcl.terminate()
        np.testing.assert_allclose(results[0], results[1], rtol=1e-6)


class TestManhattan:
    def test_matches_numpy(self, runtime_2gpu, rng):
        a = rng.rand(11, 5).astype(np.float32)
        b = rng.rand(7, 5).astype(np.float32)
        result = ManhattanDistance().compute(a, b)
        expected = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(result, expected, rtol=1e-4)

    def test_distance_to_self_is_zero_diagonal(self, runtime_1gpu, rng):
        a = rng.rand(6, 4).astype(np.float32)
        result = ManhattanDistance().compute(a, a)
        np.testing.assert_allclose(np.diag(result), 0.0, atol=1e-6)


class TestGaussian:
    def test_matches_reference(self, runtime_2gpu):
        image = synthetic_image(48, 64)
        blurred = GaussianBlur().blur(image)
        np.testing.assert_array_equal(blurred, gaussian_reference(image))

    def test_flat_image_unchanged(self, runtime_1gpu):
        flat = np.full((16, 16), 77, np.uint8)
        np.testing.assert_array_equal(GaussianBlur().blur(flat), flat)

    def test_reduces_variance(self, runtime_1gpu, rng):
        noisy = rng.randint(0, 255, (32, 32)).astype(np.uint8)
        blurred = GaussianBlur().blur(noisy)
        assert blurred.astype(float).std() < noisy.astype(float).std()


class TestBackendsAgreeOnApps:
    """Result correctness on both execution backends (satellite of the
    vectorized-backend PR): each app must produce the right answer under
    interp and vector, and the two backends must agree bit-for-bit."""

    def test_gaussian_correct_on_both_backends(self, runtime_backend, rng):
        image = synthetic_image(32, 48)
        blurred = GaussianBlur().blur(image)
        np.testing.assert_array_equal(blurred, gaussian_reference(image))

    def test_manhattan_correct_on_both_backends(self, runtime_backend, rng):
        a = rng.rand(9, 6).astype(np.float32)
        b = rng.rand(5, 6).astype(np.float32)
        result = ManhattanDistance().compute(a, b)
        expected = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(result, expected, rtol=1e-4)
        np.testing.assert_allclose(np.diag(ManhattanDistance().compute(a, a)), 0.0,
                                   atol=1e-6)

    def test_gaussian_bitexact_across_backends(self, rng):
        image = synthetic_image(32, 32)
        outputs = []
        for backend in ("interp", "vector"):
            skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, backend=backend)
            outputs.append(GaussianBlur().blur(image))
            skelcl.terminate()
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_manhattan_bitexact_across_backends(self, rng):
        a = rng.rand(8, 4).astype(np.float32)
        b = rng.rand(6, 4).astype(np.float32)
        outputs = []
        for backend in ("interp", "vector"):
            skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, backend=backend)
            outputs.append(ManhattanDistance().compute(a, b))
            skelcl.terminate()
        assert outputs[0].tobytes() == outputs[1].tobytes()
