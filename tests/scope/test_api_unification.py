"""The unified skeleton calling convention: keyword-only ``out=`` /
``label=`` everywhere, with deprecation shims for the old positional
output-container forms."""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl


def _sobel_overlap():
    return skelcl.MapOverlap(
        "float func(float* v) { return get(v, -1) + get(v, 1); }",
        1, skelcl.SCL_NEUTRAL, 0.0,
    )


def test_every_skeleton_accepts_label_keyword(runtime_2gpu, rng):
    data = rng.rand(256).astype(np.float32)
    a = skelcl.Vector(data=data)
    b = skelcl.Vector(data=data)

    skelcl.Map("float func(float x) { return -x; }")(a, label="L-map")
    skelcl.Zip("float func(float x, float y) { return x + y; }")(a, b, label="L-zip")
    skelcl.Reduce("float func(float x, float y) { return x + y; }")(a, label="L-reduce")
    skelcl.Scan("float func(float x, float y) { return x + y; }")(a, label="L-scan")
    _sobel_overlap()(skelcl.Vector(data=data), label="L-overlap")
    mult = skelcl.Zip("float func(float x, float y) { return x * y; }")
    plus = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    m = skelcl.Matrix(data=rng.rand(16, 8).astype(np.float32))
    skelcl.AllPairs(plus, zip=mult)(m, m, label="L-allpairs")

    runtime_2gpu.finish_all()
    labels = {
        event.label
        for queue in runtime_2gpu.queues
        for event in queue.events
        if event.command_type == "ndrange_kernel"
    }
    assert {"L-map", "L-zip", "L-reduce", "L-scan", "L-overlap", "L-allpairs"} <= labels


def test_unlabelled_calls_get_skeleton_and_call_site_labels(runtime_1gpu, rng):
    neg = skelcl.Map("float func(float x) { return -x; }")
    neg(skelcl.Vector(data=rng.rand(64).astype(np.float32)))
    runtime_1gpu.finish_all()
    kernel_labels = [
        event.label
        for queue in runtime_1gpu.queues
        for event in queue.events
        if event.command_type == "ndrange_kernel"
    ]
    assert kernel_labels
    for label in kernel_labels:
        assert label.startswith("Map(func)@")
        assert "test_api_unification.py" in label


@pytest.mark.parametrize("make_call", [
    pytest.param(lambda v, out: skelcl.Scan(
        "float func(float x, float y) { return x + y; }")(v, out), id="scan"),
    pytest.param(lambda v, out: _sobel_overlap()(v, out), id="mapoverlap"),
])
def test_positional_out_is_a_type_error(runtime_1gpu, rng, make_call):
    data = rng.rand(128).astype(np.float32)
    vector = skelcl.Vector(data=data)
    out = skelcl.Vector(128, dtype=np.float32)
    with pytest.raises(TypeError, match="out=..."):
        make_call(vector, out)


def test_allpairs_positional_out_is_a_type_error(runtime_1gpu, rng):
    mult = skelcl.Zip("float func(float x, float y) { return x * y; }")
    plus = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    matmul = skelcl.AllPairs(plus, zip=mult)
    a = skelcl.Matrix(data=rng.rand(8, 4).astype(np.float32))
    out = skelcl.Matrix((8, 8), dtype=np.float32)
    with pytest.raises(TypeError, match="AllPairs"):
        matmul(a, a, out)


def test_keyword_out_does_not_warn(runtime_1gpu, rng, recwarn):
    scan = skelcl.Scan("float func(float x, float y) { return x + y; }")
    vector = skelcl.Vector(data=rng.rand(64).astype(np.float32))
    out = skelcl.Vector(64, dtype=np.float32)
    result = scan(vector, out=out)
    assert result is out
    assert not [w for w in recwarn.list if w.category is DeprecationWarning]


def test_positional_and_keyword_out_together_is_an_error(runtime_1gpu, rng):
    scan = skelcl.Scan("float func(float x, float y) { return x + y; }")
    vector = skelcl.Vector(data=rng.rand(64).astype(np.float32))
    out = skelcl.Vector(64, dtype=np.float32)
    with pytest.raises(TypeError):
        scan(vector, out, out=out)


def test_too_many_positionals_is_an_error(runtime_1gpu, rng):
    scan = skelcl.Scan("float func(float x, float y) { return x + y; }")
    vector = skelcl.Vector(data=rng.rand(64).astype(np.float32))
    out = skelcl.Vector(64, dtype=np.float32)
    with pytest.raises(TypeError):
        scan(vector, out, out)


def test_reduce_fills_preallocated_scalar(runtime_2gpu, rng):
    data = rng.rand(512).astype(np.float32)
    total = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    target = skelcl.Scalar(0.0)
    result = total(skelcl.Vector(data=data), out=target)
    assert result is target
    assert np.isclose(target.get_value(), data.sum(), rtol=1e-4)


def test_reduce_rejects_non_scalar_out(runtime_1gpu, rng):
    total = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    vector = skelcl.Vector(data=rng.rand(64).astype(np.float32))
    with pytest.raises(skelcl.SkelCLError):
        total(vector, out=skelcl.Vector(1, dtype=np.float32))
