"""Chrome trace export: schema validity on a real two-device workload."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.apps.sobel import SobelEdgeDetection
from repro.scope import (
    assert_valid_trace,
    chrome_trace,
    render_timeline,
    trace_events,
    validate_trace,
    write_trace,
)
from repro.scope.trace import ENGINE_TIDS


@pytest.fixture
def sobel_trace(runtime_2gpu, rng):
    """Run the paper's Sobel on two simulated GPUs and trace it."""
    image = rng.randint(0, 256, size=(64, 64)).astype(np.uint8)
    SobelEdgeDetection().detect(image)
    runtime_2gpu.finish_all()
    return chrome_trace(runtime_2gpu.context), runtime_2gpu


def test_two_device_sobel_trace_is_schema_valid(sobel_trace):
    trace, _runtime = sobel_trace
    problems = validate_trace(trace)
    assert problems == []
    assert_valid_trace(trace)  # must not raise


def test_trace_has_one_track_per_engine_per_device(sobel_trace):
    trace, runtime = sobel_trace
    events = trace["traceEvents"]
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # Sobel on 2 GPUs uses the compute and transfer engines of both.
    for device in range(runtime.num_devices):
        assert thread_names[(device, ENGINE_TIDS["compute"])] == "compute"
        assert thread_names[(device, ENGINE_TIDS["transfer"])] == "transfer"
    slices = [e for e in events if e["ph"] == "X"]
    assert {e["pid"] for e in slices} == {0, 1}
    assert all(e["tid"] in ENGINE_TIDS.values() for e in slices)


def test_trace_timestamps_are_monotonic_per_event(sobel_trace):
    trace, _runtime = sobel_trace
    for event in trace["traceEvents"]:
        if event["ph"] != "X":
            continue
        args = event["args"]
        assert args["queued_ns"] <= args["submitted_ns"]
        assert args["submitted_ns"] <= args["start_ns"]
        assert args["start_ns"] <= args["end_ns"]
        assert event["dur"] >= 0


def test_trace_flow_events_bind_to_slices(sobel_trace):
    """Every dependency edge is an s/f pair whose endpoints exist."""
    trace, _runtime = sobel_trace
    events = trace["traceEvents"]
    starts = {e["id"] for e in events if e["ph"] == "s"}
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    assert starts, "a multi-command Sobel run must have dependency edges"
    assert starts == finishes


def test_trace_shows_overlapped_compute_and_transfer(sobel_trace):
    """The async engine overlaps per-device timelines: with two devices
    the two compute slices run concurrently (same simulated window)."""
    trace, _runtime = sobel_trace
    kernels = [
        e for e in trace["traceEvents"]
        if e["ph"] == "X" and e["args"]["command"] == "ndrange_kernel"
    ]
    by_device = {}
    for event in kernels:
        by_device.setdefault(event["pid"], []).append(event)
    assert set(by_device) == {0, 1}
    first0, first1 = by_device[0][0], by_device[1][0]
    # Same-shaped chunks start together once their uploads complete.
    overlap_start = max(first0["args"]["start_ns"], first1["args"]["start_ns"])
    overlap_end = min(first0["args"]["end_ns"], first1["args"]["end_ns"])
    assert overlap_start < overlap_end


def test_write_trace_roundtrip(tmp_path, sobel_trace):
    _trace, runtime = sobel_trace
    path = tmp_path / "sobel.trace.json"
    write_trace(runtime.context, str(path))
    loaded = json.loads(path.read_text())
    assert validate_trace(loaded) == []
    assert len(loaded["otherData"]["devices"]) == runtime.num_devices


def test_kernel_slices_carry_skeleton_labels(runtime_2gpu):
    neg = skelcl.Map("float func(float x) { return -x; }")
    neg(skelcl.Vector(data=np.ones(256, dtype=np.float32)), label="edge-pass")
    runtime_2gpu.finish_all()
    kernels = [
        e for e in trace_events(runtime_2gpu.context)
        if e["ph"] == "X" and e["args"]["command"] == "ndrange_kernel"
    ]
    assert kernels
    assert all(e["name"] == "edge-pass" for e in kernels)


def test_tracing_adds_zero_commands(runtime_2gpu):
    """Exporting a trace is passive: it must not enqueue anything."""
    neg = skelcl.Map("float func(float x) { return -x; }")
    neg(skelcl.Vector(data=np.ones(256, dtype=np.float32))).to_numpy()
    runtime_2gpu.finish_all()
    before = [len(queue.events) for queue in runtime_2gpu.queues]
    chrome_trace(runtime_2gpu.context)
    render_timeline(runtime_2gpu.context)
    runtime_2gpu.context.metrics_snapshot()
    after = [len(queue.events) for queue in runtime_2gpu.queues]
    assert after == before


def test_invalid_trace_is_rejected():
    bad = {"traceEvents": [
        {"ph": "X", "name": "k", "pid": 0, "tid": 0, "ts": 1.0, "dur": -4.0,
         "args": {"start_ns": 2000, "end_ns": 1000, "queued_ns": 0,
                  "submitted_ns": 0}},
    ]}
    assert validate_trace(bad)
    with pytest.raises(ValueError):
        assert_valid_trace(bad)
