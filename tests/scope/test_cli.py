"""``python -m repro.scope``: the workload runner and trace validator."""

from __future__ import annotations

import json

import pytest

import repro.skelcl as skelcl
from repro.scope.__main__ import main


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    skelcl.terminate()


def test_cli_runs_workload_and_emits_artifacts(tmp_path, capsys):
    trace_path = tmp_path / "dot.trace.json"
    metrics_path = tmp_path / "dot.metrics.json"
    code = main([
        "dotproduct", "--devices", "2", "--size", "64",
        "--trace", str(trace_path), "--metrics", str(metrics_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "valid" in out and "INVALID" not in out

    from repro.scope import validate_trace

    trace = json.loads(trace_path.read_text())
    assert validate_trace(trace) == []
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["skelcl_commands_total"]
    # The CLI terminates its session on exit.
    assert not skelcl.is_initialized()


def test_cli_report_mode(capsys):
    assert main(["sobel", "--devices", "2", "--size", "32", "--report"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "SkelScope metrics" in out


def test_cli_timeline_mode(capsys):
    assert main(["matmul", "--devices", "2", "--size", "16", "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "GPU0.compute" in out


def test_cli_validate_accepts_good_trace(tmp_path, capsys):
    trace_path = tmp_path / "ok.trace.json"
    main(["dotproduct", "--size", "32", "--trace", str(trace_path)])
    capsys.readouterr()
    assert main(["--validate", str(trace_path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_validate_rejects_bad_trace(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X", "name": "k"}]}))
    assert main(["--validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out
