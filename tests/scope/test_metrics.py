"""SkelScope metrics registry: primitives, runtime counters, reset."""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.scope import MetricsRegistry, derive_timeline_metrics


def test_counter_gauge_histogram_primitives():
    registry = MetricsRegistry()
    registry.counter("requests_total", route="a").inc()
    registry.counter("requests_total", route="a").inc(2)
    registry.counter("requests_total", route="b").inc()
    registry.gauge("depth").set(7)
    histogram = registry.histogram("latency_ns")
    for value in (10, 20, 30):
        histogram.observe(value)

    assert registry.value("requests_total", route="a") == 3
    assert registry.value("requests_total", route="b") == 1
    assert registry.value("depth") == 7
    snapshot = registry.snapshot()
    hist = snapshot["histograms"]["latency_ns"]["_"]
    assert hist["count"] == 3
    assert hist["sum"] == 60
    assert hist["min"] == 10 and hist["max"] == 30


def test_snapshot_roundtrips_to_json():
    import json

    registry = MetricsRegistry()
    registry.counter("c", k="v").inc(5)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(2)
    assert json.loads(registry.to_json()) == registry.snapshot()


def test_runtime_populates_command_and_transfer_counters(runtime_2gpu):
    neg = skelcl.Map("float func(float x) { return -x; }")
    vector = skelcl.Vector(data=np.ones(512, dtype=np.float32))
    neg(vector).to_numpy()
    runtime_2gpu.finish_all()

    metrics = runtime_2gpu.context.metrics
    assert metrics.value("skelcl_commands_total", kind="ndrange_kernel") == 2
    # upload crosses PCIe once per device chunk, download comes back once.
    nbytes = 512 * 4
    assert metrics.value("skelcl_transfer_bytes_total", link="pcie", direction="h2d") == nbytes
    assert metrics.value("skelcl_transfer_bytes_total", link="pcie", direction="d2h") == nbytes
    assert metrics.value("skelcl_work_items_total") >= 512


def test_build_cache_metrics(runtime_1gpu, tmp_path, monkeypatch):
    # Pin the persistent cache to an empty directory so the first build
    # is deterministically a cold compile, not an on-disk hit.
    monkeypatch.setenv("SKELCL_CACHE_DIR", str(tmp_path / "progcache"))
    metrics = runtime_1gpu.context.metrics
    # A source no other test uses: the process-wide build cache must
    # miss the first time and hit the second.
    source = "float func(float x) { return x * 31.4159f; }"
    vector = skelcl.Vector(data=np.ones(64, dtype=np.float32))
    skelcl.Map(source)(vector)
    compiled = metrics.value("skelcl_program_builds_total", result="compiled")
    assert compiled >= 1
    skelcl.Map(source)(vector)
    assert metrics.value("skelcl_program_builds_total", result="memory") >= 1
    assert metrics.value("skelcl_program_builds_total", result="compiled") == compiled


def test_reset_timelines_clears_metrics_and_byte_counters(runtime_2gpu):
    """Regression: reset_timelines() used to leave the transfer/PCIe byte
    counters and the metrics registry accumulating across iterations."""
    neg = skelcl.Map("float func(float x) { return -x; }")
    vector = skelcl.Vector(data=np.ones(256, dtype=np.float32))
    neg(vector).to_numpy()
    runtime_2gpu.finish_all()

    context = runtime_2gpu.context
    assert context.metrics.value("skelcl_commands_total", kind="ndrange_kernel") > 0
    assert any(queue.total_pcie_bytes > 0 for queue in context.queues)
    assert any(queue.total_transfer_bytes > 0 for queue in context.queues)

    context.reset_timelines()

    assert context.metrics.value("skelcl_commands_total", kind="ndrange_kernel") == 0
    assert context.metrics.value("skelcl_transfer_bytes_total",
                                 link="pcie", direction="h2d") == 0
    for queue in context.queues:
        assert queue.total_transfer_bytes == 0
        assert queue.total_pcie_bytes == 0
        assert queue.total_kernel_ns == 0
        assert not queue.events

    # The registry still works after the reset.
    fresh = skelcl.Vector(data=np.ones(256, dtype=np.float32))
    neg(fresh)
    runtime_2gpu.finish_all()
    assert context.metrics.value("skelcl_commands_total", kind="ndrange_kernel") == 2


def test_derive_timeline_metrics_gauges(runtime_2gpu):
    neg = skelcl.Map("float func(float x) { return -x; }")
    vector = skelcl.Vector(data=np.ones(1024, dtype=np.float32))
    neg(vector, label="neg-pass")
    elapsed = runtime_2gpu.finish_all()

    registry = derive_timeline_metrics(runtime_2gpu.context)
    assert registry.value("skelcl_critical_path_ns") == elapsed
    busy = registry.value("skelcl_engine_busy_ns", device="0", engine="compute")
    idle = registry.value("skelcl_engine_idle_ns", device="0", engine="compute")
    assert busy > 0
    assert idle >= 0
    assert busy + idle <= elapsed
    assert registry.value("skelcl_kernel_ns_by_skeleton", skeleton="neg-pass") > 0


def test_render_table_lists_metrics():
    registry = MetricsRegistry()
    registry.counter("skelcl_commands_total", kind="ndrange_kernel").inc(3)
    table = registry.render_table()
    assert "skelcl_commands_total" in table
    assert "ndrange_kernel" in table
