"""The session-scoped public API: ``with skelcl.init(...) as s:``."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl


def test_init_returns_context_manager_session():
    with skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE) as session:
        assert isinstance(session, skelcl.Session)
        assert len(session.devices) == 2
        assert session is skelcl.get_runtime()
        neg = skelcl.Map("float func(float x) { return -x; }")
        result = neg(skelcl.Vector(data=np.ones(64, dtype=np.float32)))
        assert np.allclose(result.to_numpy(), -1.0)
        assert session.finish_all() > 0
        assert session.metrics.value("skelcl_commands_total", kind="ndrange_kernel") > 0
    # Exiting the block terminated the runtime.
    assert session.closed
    assert not skelcl.is_initialized()


def test_classic_global_style_still_works():
    skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    try:
        assert skelcl.is_initialized()
        runtime = skelcl.get_runtime()
        assert runtime.num_devices == 1
    finally:
        skelcl.terminate()
    assert not skelcl.is_initialized()


def test_terminate_is_idempotent():
    skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    skelcl.terminate()
    skelcl.terminate()  # second call: no runtime installed, no error
    session = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    session.close()
    session.close()  # closing twice is fine too
    skelcl.terminate()
    assert not skelcl.is_initialized()


def test_replaced_session_does_not_tear_down_successor():
    first = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    second = skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE)
    try:
        first.close()  # replaced earlier: must not clear the global
        assert skelcl.get_runtime() is second
    finally:
        skelcl.terminate()


def test_session_exit_honours_trace_env_vars(tmp_path, monkeypatch):
    trace_path = tmp_path / "session.trace.json"
    metrics_path = tmp_path / "session.metrics.json"
    monkeypatch.setenv("SKELCL_TRACE", str(trace_path))
    monkeypatch.setenv("SKELCL_METRICS", str(metrics_path))
    with skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE):
        neg = skelcl.Map("float func(float x) { return -x; }")
        neg(skelcl.Vector(data=np.ones(128, dtype=np.float32)))

    from repro.scope import validate_trace

    trace = json.loads(trace_path.read_text())
    assert validate_trace(trace) == []
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["skelcl_commands_total"]["{kind=ndrange_kernel}"] == 2
    assert "skelcl_critical_path_ns" in snapshot["gauges"]


def test_session_observability_surface(runtime_2gpu, tmp_path, rng):
    neg = skelcl.Map("float func(float x) { return -x; }")
    neg(skelcl.Vector(data=rng.rand(256).astype(np.float32)))
    runtime_2gpu.finish_all()
    path = runtime_2gpu.export_trace(str(tmp_path / "t.json"))
    assert json.loads(open(path).read())["otherData"]["producer"] == "SkelScope"
    assert "GPU0" in runtime_2gpu.render_timeline()
    snapshot = runtime_2gpu.metrics_snapshot()
    assert snapshot["gauges"]["skelcl_critical_path_ns"]["_"] > 0
