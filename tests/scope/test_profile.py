"""The profiling API: ``skelcl.profile()``, by-skeleton breakdown and
the critical-path reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl


def _vector(rng, n=1024):
    return skelcl.Vector(data=rng.rand(n).astype(np.float32))


def test_critical_path_total_matches_finish_all(runtime_2gpu, rng):
    neg = skelcl.Map("float func(float x) { return -x; }")
    add = skelcl.Zip("float func(float x, float y) { return x + y; }")
    a, b = _vector(rng), _vector(rng)
    with skelcl.profile() as prof:
        add(neg(a), b).to_numpy()
    path = prof.critical_path()
    assert path.total_ns == runtime_2gpu.finish_all()
    assert len(path) > 0


def test_by_skeleton_sums_to_critical_path(runtime_2gpu, rng):
    neg = skelcl.Map("float func(float x) { return -x; }")
    with skelcl.profile() as prof:
        neg(_vector(rng), label="negate").to_numpy()
    breakdown = prof.by_skeleton()
    assert sum(breakdown.values()) == prof.critical_path().total_ns
    assert "negate" in breakdown


def test_critical_path_steps_telescope(runtime_2gpu, rng):
    """Consecutive critical-path steps chain: each starts where its
    predecessor ends (engine occupancy or dependency edge)."""
    scan = skelcl.Scan("float func(float x, float y) { return x + y; }")
    with skelcl.profile() as prof:
        scan(_vector(rng)).to_numpy()
    steps = prof.critical_path().steps
    for earlier, later in zip(steps, steps[1:]):
        assert earlier.end_ns == later.start_ns
    assert steps[-1].end_ns == prof.critical_path().total_ns


def test_profile_against_explicit_session(rng):
    with skelcl.init(num_devices=2) as session:
        neg = skelcl.Map("float func(float x) { return -x; }")
        with session.profile() as prof:
            neg(_vector(rng))
        assert prof.critical_path().total_ns == session.finish_all()


def test_kernel_ns_by_skeleton_separates_labels(runtime_2gpu, rng):
    neg = skelcl.Map("float func(float x) { return -x; }")
    with skelcl.profile() as prof:
        neg(_vector(rng), label="first")
        neg(_vector(rng), label="second")
    by_label = prof.kernel_ns_by_skeleton()
    assert by_label["first"] > 0
    assert by_label["second"] > 0


def test_report_renders(runtime_2gpu, rng):
    neg = skelcl.Map("float func(float x) { return -x; }")
    with skelcl.profile() as prof:
        neg(_vector(rng), label="reported-pass")
    report = prof.report()
    assert "critical path" in report
    assert "reported-pass" in report


def test_profile_without_runtime_raises():
    skelcl.terminate()
    with pytest.raises(skelcl.SkelCLError):
        with skelcl.profile():
            pass
