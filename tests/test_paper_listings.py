"""The paper's listings, executed.

Each test runs one of the paper's code listings (§3/§4) through this
reproduction — the customizing functions verbatim where the paper is
correct, and with the paper's (acknowledged) typos fixed where not:

* Listing 1.2 increments ``i`` in its inner loop and iterates ``< 1``
  where the text says "all direct neighboring values" — we run the
  intended ``<= 1`` double loop;
* Listing 1.3's boundary check ``i > width`` admits one out-of-bounds
  row/column — we use ``>=``.
"""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.skelcl import MapOverlap, Matrix, Reduce, SCL_NEUTRAL, Scalar, Vector, Zip


@pytest.fixture
def runtime():
    yield skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE)
    skelcl.terminate()


class TestListing11DotProduct:
    """Listing 1.1: the dot-product main program."""

    def test_listing_runs(self, runtime):
        SIZE = 1024
        # create skeletons
        sum_ = Reduce("float sum(float x, float y){return x+y;}")
        mult = Zip("float mult(float x, float y){return x*y;}")
        # create input vectors
        a = Vector(SIZE)
        b = Vector(SIZE)
        # fill vectors with data
        a.assign(np.linspace(0, 1, SIZE, dtype=np.float32))
        b.assign(np.linspace(1, 2, SIZE, dtype=np.float32))
        # execute skeleton
        c = sum_(mult(a, b))
        # fetch result
        value = c.get_value()
        assert isinstance(c, Scalar)
        expected = float(np.dot(a.to_numpy(), b.to_numpy()))
        assert value == pytest.approx(expected, rel=1e-4)


class TestListing12NeighbourSum:
    """Listing 1.2: MapOverlap summing all direct neighbours."""

    SOURCE = """float func(float* m_in){
        float sum = 0.0f;
        for (int i = -1; i <= 1; ++i)
            for (int j = -1; j <= 1; ++j)
                sum += get(m_in, i, j);
        return sum;
    }"""

    def test_neutral_boundary_sum(self, runtime):
        stencil = MapOverlap(self.SOURCE, 1, SCL_NEUTRAL, 0.0)
        data = np.arange(48, dtype=np.float32).reshape(6, 8)
        result = stencil(Matrix(data=data)).to_numpy()
        padded = np.pad(data, 1)
        expected = sum(
            padded[1 + di : 7 + di, 1 + dj : 9 + dj]
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
        )
        np.testing.assert_allclose(result, expected, rtol=1e-5)

    def test_get_accesses_bounded_by_d(self, runtime):
        # "The application developer must ensure that only elements in
        # the range specified by ... d ... are accessed.  To enforce this
        # property, boundary checks are performed at runtime."
        from repro.kernelc.memory import KernelFault

        violating = MapOverlap("float func(float* m){ return get(m, 2, 0); }",
                               1, SCL_NEUTRAL, 0.0)
        assert not violating.checks_elided  # the static proof refuses
        with pytest.raises(KernelFault):
            violating(Matrix(data=np.zeros((8, 8), np.float32)))


class TestListing13OpenCLSum:
    """Listing 1.3: the hand-written OpenCL equivalent of Listing 1.2."""

    KERNEL = """
    __kernel void sum_up(__global float* m_in,
                         __global float* m_out,
                         int width, int height) {
        int i_off = get_global_id(0);
        int j_off = get_global_id(1);
        float sum = 0.0f;
        for (int i = i_off - 1; i <= i_off + 1; ++i)
            for (int j = j_off - 1; j <= j_off + 1; ++j) {
                // perform boundary checks
                if ( i < 0 || i >= width || j < 0 || j >= height )
                    continue;
                sum += m_in[ j * width + i ]; }
        m_out[ j_off * width + i_off ] = sum; }
    """

    def test_matches_the_skelcl_version(self, runtime):
        data = np.arange(64, dtype=np.float32).reshape(8, 8)

        # SkelCL version (Listing 1.2).
        stencil = MapOverlap(TestListing12NeighbourSum.SOURCE, 1, SCL_NEUTRAL, 0.0)
        skelcl_result = stencil(Matrix(data=data)).to_numpy()

        # Raw OpenCL version (Listing 1.3).
        ctx = ocl.Context.create(ocl.TEST_DEVICE)
        queue = ctx.queues[0]
        in_buf = ctx.create_buffer(data.nbytes)
        out_buf = ctx.create_buffer(data.nbytes)
        queue.enqueue_write_buffer(in_buf, data)
        kernel = ocl.Program(self.KERNEL).build().create_kernel("sum_up")
        kernel.set_args(in_buf, out_buf, 8, 8)
        queue.enqueue_nd_range_kernel(kernel, (8, 8), (8, 8))
        raw, _ = queue.enqueue_read_buffer(out_buf, np.float32, 64)
        ctx.release()

        np.testing.assert_allclose(skelcl_result, raw.reshape(8, 8), rtol=1e-5)


class TestListing15Sobel:
    """Listings 1.4/1.5: the Sobel edge detector."""

    def test_skelcl_matches_sequential_listing_14(self, runtime):
        from repro.apps.images import sobel_reference_uchar, synthetic_image
        from repro.apps.sobel import SobelEdgeDetection

        image = synthetic_image(40, 40)
        # Listing 1.4's sequential pseudo-code is our numpy reference.
        np.testing.assert_array_equal(
            SobelEdgeDetection().detect(image), sobel_reference_uchar(image)
        )

    def test_listing_16_amd_kernel_matches_interior(self, runtime):
        from repro.apps.images import sobel_reference_uchar, synthetic_image
        from repro.baselines.sobel_amd import SobelAmd

        image = synthetic_image(32, 32)
        ctx = ocl.Context.create(ocl.TEST_DEVICE)
        edges, _ = SobelAmd(ctx).run(image)
        reference = sobel_reference_uchar(image)
        np.testing.assert_array_equal(edges[1:-1, 1:-1], reference[1:-1, 1:-1])
        ctx.release()


class TestSection35MatrixMultiplication:
    """§3.5 Example 1: A × B = allpairs(dotProduct)(A, Bᵀ)."""

    def test_equation_2(self, runtime):
        rng = np.random.RandomState(11)
        a = rng.rand(12, 7).astype(np.float32)  # n x d
        b = rng.rand(7, 9).astype(np.float32)  # d x m
        dot_product = skelcl.AllPairs(
            Reduce("float add(float x, float y){return x+y;}"),
            Zip("float mul(float x, float y){return x*y;}"),
        )
        b_transposed = Matrix(data=np.ascontiguousarray(b.T))
        c = dot_product(Matrix(data=a), b_transposed).to_numpy()
        np.testing.assert_allclose(c, a @ b, rtol=1e-4)
