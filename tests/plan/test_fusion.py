"""Differential harness for the lazy planner: every fused pipeline must
be bit-exact with its eager execution while doing strictly less work
(fewer kernel launches, fewer modeled ops, less memory traffic).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl

SCALE = "float func(float x) { return x * 2.0f; }"
SHIFT = "float func(float x) { return x + 3.25f; }"
SQUARE = "float func(float x) { return x * x; }"
ADD = "float func(float x, float y) { return x + y; }"
MUL = "float func(float x, float y) { return x * y; }"

_DATA = np.random.RandomState(7).rand(1024).astype(np.float32)


def _stats(runtime):
    runtime.finish_all()
    metrics = runtime.metrics
    return {
        "launches": metrics.value("skelcl_commands_total", kind="ndrange_kernel"),
        "ops": metrics.value("skelcl_kernel_ops_total"),
        # Fusion saves *global memory* round-trips for intermediates;
        # host<->device transfer volume is unchanged (intermediates are
        # device-resident in both modes), so measure kernel bytes.
        "traffic": sum(
            event.info.get("global_bytes", 0)
            for queue in runtime.context.queues
            for event in queue.events
            if event.command_type == "ndrange_kernel"
        ),
        "pcie": sum(q.total_transfer_bytes for q in runtime.context.queues),
    }


def _run(pipeline, *, lazy, num_devices=1):
    """Run ``pipeline(runtime)`` in a fresh session; return the result
    (as bytes for bit-exact comparison), work stats and the registry."""
    runtime = skelcl.init(num_devices=num_devices, spec=ocl.TEST_DEVICE, lazy=lazy)
    try:
        result = pipeline(runtime)
        stats = _stats(runtime)
        return np.asarray(result).tobytes(), stats, runtime.metrics
    finally:
        skelcl.terminate()


def _map_map_reduce(runtime):
    scale, shift = skelcl.Map(SCALE), skelcl.Map(SHIFT)
    total = skelcl.Reduce(ADD)
    vec = skelcl.Vector(data=_DATA)
    return np.float32(total(shift(scale(vec))).get_value())


def _zip_of_map_chains(runtime):
    scale, shift, square = skelcl.Map(SCALE), skelcl.Map(SHIFT), skelcl.Map(SQUARE)
    mul = skelcl.Zip(MUL)
    a = skelcl.Vector(data=_DATA)
    b = skelcl.Vector(data=_DATA[::-1].copy())
    return square(mul(scale(a), shift(b))).to_numpy()


def _both(pipeline, num_devices=1):
    eager = _run(pipeline, lazy=False, num_devices=num_devices)
    lazy = _run(pipeline, lazy=True, num_devices=num_devices)
    return eager, lazy


def test_map_map_reduce_fuses_to_two_launches_bit_exact():
    (eager_bytes, eager_stats, _), (lazy_bytes, lazy_stats, metrics) = _both(_map_map_reduce)
    assert lazy_bytes == eager_bytes
    # The acceptance bar: whole pipeline in <= 2 launches on one device
    # (fused reduce stage 1 + plain stage 2), strictly cheaper than eager.
    assert lazy_stats["launches"] <= 2
    assert lazy_stats["launches"] < eager_stats["launches"]
    assert lazy_stats["ops"] < eager_stats["ops"]
    assert lazy_stats["traffic"] < eager_stats["traffic"]
    assert lazy_stats["pcie"] <= eager_stats["pcie"]
    assert metrics.value("skelcl_fusion_total", rule="map_map") >= 1
    assert metrics.value("skelcl_fusion_total", rule="map_reduce") >= 1


def test_map_map_reduce_multi_device_bit_exact():
    (eager_bytes, eager_stats, _), (lazy_bytes, lazy_stats, _) = _both(
        _map_map_reduce, num_devices=2)
    assert lazy_bytes == eager_bytes
    assert lazy_stats["launches"] < eager_stats["launches"]
    assert lazy_stats["traffic"] < eager_stats["traffic"]


def test_zip_of_map_chains_fuses_to_one_launch_bit_exact():
    (eager_bytes, eager_stats, _), (lazy_bytes, lazy_stats, metrics) = _both(
        _zip_of_map_chains)
    assert lazy_bytes == eager_bytes
    assert lazy_stats["launches"] == 1
    assert eager_stats["launches"] == 4
    assert lazy_stats["ops"] < eager_stats["ops"]
    assert lazy_stats["traffic"] < eager_stats["traffic"]
    assert metrics.value("skelcl_fusion_total", rule="zip_map") >= 1


def test_fused_seams_preserve_float32_rounding():
    """The seam casts matter: x*2 then +3.25 then square in float32 must
    round exactly as the eager store/load sequence does."""
    def pipeline(runtime):
        scale, shift, square = skelcl.Map(SCALE), skelcl.Map(SHIFT), skelcl.Map(SQUARE)
        vec = skelcl.Vector(data=_DATA)
        return square(shift(scale(vec))).to_numpy()

    (eager_bytes, _, _), (lazy_bytes, lazy_stats, _) = _both(pipeline)
    assert lazy_bytes == eager_bytes
    assert lazy_stats["launches"] == 1
    reference = _DATA * np.float32(2.0)
    reference = reference + np.float32(3.25)
    reference = reference * reference
    assert lazy_bytes == reference.astype(np.float32).tobytes()


def test_multi_consumer_intermediate_falls_back():
    def pipeline(runtime):
        scale, shift, square = skelcl.Map(SCALE), skelcl.Map(SHIFT), skelcl.Map(SQUARE)
        vec = skelcl.Vector(data=_DATA)
        mid = scale(vec)          # consumed twice: cannot be elided/fused past
        left = shift(mid)
        right = square(mid)
        return np.concatenate([left.to_numpy(), right.to_numpy()])

    (eager_bytes, _, _), (lazy_bytes, _, metrics) = _both(pipeline)
    assert lazy_bytes == eager_bytes
    assert metrics.value("skelcl_plan_fallback_total", reason="multi_consumer") >= 1


def test_deferral_and_host_read_force(runtime_1gpu_lazy):
    runtime = runtime_1gpu_lazy
    scale = skelcl.Map(SCALE)
    vec = skelcl.Vector(data=_DATA)
    result = scale(vec)
    # Nothing ran yet: the call only recorded a plan node.
    assert runtime.metrics.value("skelcl_plan_deferred_total", op="map") == 1
    assert runtime.metrics.value("skelcl_commands_total", kind="ndrange_kernel") == 0
    host = result.to_numpy()     # read-back is a force point
    assert runtime.metrics.value("skelcl_commands_total", kind="ndrange_kernel") == 1
    np.testing.assert_array_equal(host, _DATA * np.float32(2.0))


def test_explicit_out_is_a_force_point(runtime_1gpu_lazy):
    runtime = runtime_1gpu_lazy
    scale = skelcl.Map(SCALE)
    vec = skelcl.Vector(data=_DATA)
    out = skelcl.Vector(vec.size, dtype=np.float32)
    scale(vec, out=out)          # out= materializes eagerly
    assert runtime.metrics.value("skelcl_commands_total", kind="ndrange_kernel") == 1
    np.testing.assert_array_equal(out.to_numpy(), _DATA * np.float32(2.0))


def test_input_mutation_forces_pending_readers(runtime_1gpu_lazy):
    scale = skelcl.Map(SCALE)
    vec = skelcl.Vector(data=_DATA)
    result = scale(vec)          # deferred, reads vec
    vec.fill(0.0)                # must force the reader first
    np.testing.assert_array_equal(result.to_numpy(), _DATA * np.float32(2.0))
    assert np.all(vec.to_numpy() == 0.0)


def test_elided_intermediate_recomputes_on_demand(runtime_1gpu_lazy):
    runtime = runtime_1gpu_lazy
    scale, shift = skelcl.Map(SCALE), skelcl.Map(SHIFT)
    mid = scale(skelcl.Vector(data=_DATA))
    end = shift(mid)
    np.testing.assert_array_equal(
        end.to_numpy(), _DATA * np.float32(2.0) + np.float32(3.25))
    # The chain fused, so mid was never materialized...
    assert runtime.metrics.value("skelcl_plan_elided_total", op="map") == 1
    # ...but reading it later recomputes it from its still-live input.
    np.testing.assert_array_equal(mid.to_numpy(), _DATA * np.float32(2.0))
    assert runtime.metrics.value("skelcl_plan_recompute_total", op="map") == 1


def test_scan_falls_back_but_stays_correct():
    def pipeline(runtime):
        scale = skelcl.Map(SCALE)
        prefix = skelcl.Scan(ADD, identity="0.0f")
        return prefix(scale(skelcl.Vector(data=_DATA[:256]))).to_numpy()

    (eager_bytes, _, _), (lazy_bytes, _, metrics) = _both(pipeline)
    assert lazy_bytes == eager_bytes
    assert metrics.value("skelcl_plan_fallback_total", reason="scan") >= 1


def test_fused_pipelines_clean_under_strict_sanitizer(monkeypatch):
    """Strict SkelSan (lint errors fatal + race detector raising) must
    accept the generated fused sources and the fused schedules."""
    monkeypatch.setenv("SKELCL_SANITIZE", "strict")
    for pipeline in (_map_map_reduce, _zip_of_map_chains):
        (eager_bytes, _, _), (lazy_bytes, _, _) = _both(pipeline)
        assert lazy_bytes == eager_bytes


def test_env_var_enables_lazy_mode(monkeypatch):
    monkeypatch.setenv("SKELCL_LAZY", "1")
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    try:
        assert runtime.lazy
        assert runtime.planner is not None
    finally:
        skelcl.terminate()
    monkeypatch.delenv("SKELCL_LAZY")
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    try:
        assert not runtime.lazy
        assert runtime.planner is None
    finally:
        skelcl.terminate()


@pytest.fixture
def runtime_1gpu_lazy():
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, lazy=True)
    yield runtime
    skelcl.terminate()
