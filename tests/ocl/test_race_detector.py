"""SkelSan race detection over the asynchronous command graph.

The detector observes every submitted command's buffer access set and
reports command pairs that conflict (>= 1 write, overlapping byte
ranges) without a wait-list path ordering them — see docs/analysis.md.
"""

import numpy as np
import pytest

from repro import ocl
from repro.analysis import (
    BufferAccess,
    RaceDetector,
    RaceError,
    RaceWarning,
    SanitizeMode,
    resolve_sanitize_mode,
)

SCALE = """
__kernel void scale(__global const float* a, __global float* out, int n) {
    int gid = get_global_id(0);
    if (gid < n) out[gid] = 2.0f * a[gid];
}
"""

N = 1024


@pytest.fixture
def ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE, 2, detect_races="strict")
    yield context
    context.release()


@pytest.fixture
def reporting_ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE, 2, detect_races="report")
    yield context
    context.release()


def scale_kernel(ctx, a, out):
    program = ctx.create_program(SCALE).build()
    kernel = program.create_kernel("scale")
    kernel.set_args(a, out, N)
    return kernel


class TestMode:
    def test_explicit_modes(self):
        assert resolve_sanitize_mode("strict") is SanitizeMode.STRICT
        assert resolve_sanitize_mode("report") is SanitizeMode.REPORT
        assert resolve_sanitize_mode("off") is SanitizeMode.OFF
        assert resolve_sanitize_mode(True) is SanitizeMode.STRICT
        assert resolve_sanitize_mode(False) is SanitizeMode.OFF

    def test_env_wiring(self, monkeypatch):
        monkeypatch.setenv("SKELCL_SANITIZE", "strict")
        assert resolve_sanitize_mode(None) is SanitizeMode.STRICT
        monkeypatch.setenv("SKELCL_SANITIZE", "report")
        assert resolve_sanitize_mode(None) is SanitizeMode.REPORT
        monkeypatch.delenv("SKELCL_SANITIZE")
        assert resolve_sanitize_mode(None) is SanitizeMode.OFF

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("SKELCL_SANITIZE", "sometimes")
        with pytest.raises(ValueError):
            resolve_sanitize_mode(None)

    def test_env_enables_detector_on_context(self, monkeypatch):
        monkeypatch.setenv("SKELCL_SANITIZE", "strict")
        context = ocl.Context.create(ocl.TEST_DEVICE, 1)
        try:
            assert context.race_detector is not None
            assert context.race_detector.mode is SanitizeMode.STRICT
        finally:
            context.release()

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("SKELCL_SANITIZE", raising=False)
        context = ocl.Context.create(ocl.TEST_DEVICE, 1)
        try:
            assert context.race_detector is None
        finally:
            context.release()


class TestAccessSets:
    def test_transfers_carry_byte_ranges(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(4 * N, queue.device)
        event = queue.enqueue_write_buffer(
            buffer, np.zeros(16, np.float32), offset_bytes=64
        )
        (access,) = event.accesses
        assert access.buffer_uid == buffer.uid
        assert (access.start, access.stop) == (64, 128)
        assert access.writes and not access.reads

    def test_kernel_access_modes_from_static_analysis(self, ctx):
        queue = ctx.queues[0]
        a = ctx.create_buffer(4 * N, queue.device)
        out = ctx.create_buffer(4 * N, queue.device)
        w = queue.enqueue_write_buffer(a, np.zeros(N, np.float32))
        event = queue.enqueue_nd_range_kernel(
            scale_kernel(ctx, a, out), (N,), (256,), event_wait_list=[w]
        )
        modes = {access.buffer_uid: access.mode for access in event.accesses}
        assert modes[a.uid] == "r"  # const pointer, only loaded
        assert modes[out.uid] == "w"  # only stored

    def test_marker_and_barrier_are_pure_ordering_edges(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        w = queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        marker = queue.enqueue_marker([w])
        barrier = queue.enqueue_barrier([marker])
        assert marker.accesses == [] and barrier.accesses == []
        # Ordering through the (accessless) barrier suffices: a second
        # write that waits only on the barrier must not race the first.
        queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                   event_wait_list=[barrier])
        assert ctx.check_races() == []


class TestDetection:
    def test_unordered_writes_race(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        first = queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        marker = queue.enqueue_marker([first])  # unrelated ordering point
        with pytest.raises(RaceError, match="data race"):
            queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                       event_wait_list=[])
        assert marker is not None

    def test_disjoint_ranges_do_not_race(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(512, queue.device)
        queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32),
                                   event_wait_list=[])
        queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32),
                                   offset_bytes=256, event_wait_list=[])
        assert ctx.check_races() == []

    def test_concurrent_reads_do_not_race(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        w = queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        queue.enqueue_read_buffer(buffer, np.float32, 64, event_wait_list=[w])
        queue.enqueue_read_buffer(buffer, np.float32, 64, event_wait_list=[w])
        assert ctx.check_races() == []

    def test_transitive_ordering_recognized(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        w = queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        mid = queue.enqueue_marker([w])
        queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                   event_wait_list=[mid])
        assert ctx.check_races() == []

    def test_report_mode_warns_and_records(self, reporting_ctx):
        ctx = reporting_ctx
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        with pytest.warns(RaceWarning, match="data race"):
            queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                       event_wait_list=[])
        races = ctx.check_races()
        assert len(races) == 1
        assert races[0].earlier.command_type == "write_buffer"
        assert races[0].later.command_type == "write_buffer"

    def test_race_message_carries_provenance(self, reporting_ctx):
        ctx = reporting_ctx
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device, name="halo")
        queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        with pytest.warns(RaceWarning):
            queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                       event_wait_list=[])
        message = str(ctx.check_races()[0])
        assert "halo" in message
        assert "write_buffer" in message
        assert "test_race_detector.py" in message  # enqueue site

    def test_racy_event_stays_recorded_after_strict_error(self, ctx):
        # Strict mode raises *after* recording the racy command (its
        # data effects have already executed), so later commands must
        # order after it too.
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        first = queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        with pytest.raises(RaceError):
            queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                       event_wait_list=[])
        # Waiting only on the first write still races with the recorded
        # second one.
        with pytest.raises(RaceError):
            queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                       event_wait_list=[first])

    def test_reset_timelines_clears_detector(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(256, queue.device)
        queue.enqueue_write_buffer(buffer, np.zeros(64, np.float32))
        ctx.finish_all()
        ctx.reset_timelines()
        # A fresh epoch: the old write is forgotten, no stale race.
        queue.enqueue_write_buffer(buffer, np.ones(64, np.float32),
                                   event_wait_list=[])
        assert ctx.check_races() == []


class TestHaloPipeline:
    """A two-device stencil-style pipeline whose halo exchange is the
    classic place to lose a wait-list edge."""

    def _pipeline(self, ctx, forget_edge):
        dev0, dev1 = ctx.queues[0], ctx.queues[1]
        data = np.arange(N, dtype=np.float32)
        src0 = ctx.create_buffer(data.nbytes, dev0.device, name="chunk0")
        dst0 = ctx.create_buffer(data.nbytes, dev0.device, name="out0")
        dst1 = ctx.create_buffer(data.nbytes, dev1.device, name="out1")
        upload = dev0.enqueue_write_buffer(src0, data)
        compute = dev0.enqueue_nd_range_kernel(
            scale_kernel(ctx, src0, dst0), (N,), (256,), event_wait_list=[upload]
        )
        # Halo exchange: device 1 needs the edge of device 0's freshly
        # computed chunk — download it, then upload into dst1's halo.
        exchange_deps = [] if forget_edge else [compute]
        halo, read = dev0.enqueue_read_buffer(
            dst0, np.float32, 64, offset_bytes=data.nbytes - 256,
            event_wait_list=exchange_deps,
        )
        dev1.enqueue_write_buffer(dst1, halo, event_wait_list=[read])
        ctx.finish_all()

    def test_missing_halo_edge_is_caught(self, ctx):
        with pytest.raises(RaceError, match="out0"):
            self._pipeline(ctx, forget_edge=True)

    def test_corrected_pipeline_is_clean(self, ctx):
        self._pipeline(ctx, forget_edge=False)
        assert ctx.check_races() == []


class TestDetectorUnit:
    def test_conflicts_require_overlap_and_a_write(self):
        a = BufferAccess(buffer_uid=1, buffer_name="b", start=0, stop=64, mode="w")
        b = BufferAccess(buffer_uid=1, buffer_name="b", start=32, stop=96, mode="r")
        c = BufferAccess(buffer_uid=1, buffer_name="b", start=64, stop=96, mode="w")
        d = BufferAccess(buffer_uid=2, buffer_name="o", start=0, stop=64, mode="w")
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)  # ranges touch but do not overlap
        assert not a.conflicts_with(d)  # different buffers
        assert not b.conflicts_with(b)  # read/read

    def test_disabled_detector_observes_nothing(self):
        detector = RaceDetector(SanitizeMode.OFF)
        assert not detector.enabled
        detector.observe(object())  # must not touch the event at all
        assert detector.races == []
