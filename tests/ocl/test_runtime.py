"""Simulated OpenCL runtime tests: buffers, queues, programs, events."""

import numpy as np
import pytest

from repro import ocl

VEC_ADD = """
__kernel void vec_add(__global const float* a, __global const float* b,
                      __global float* out, int n) {
    int gid = get_global_id(0);
    if (gid < n) out[gid] = a[gid] + b[gid];
}
"""


@pytest.fixture
def ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE, 2)
    yield context
    context.release()


class TestBuffers:
    def test_allocation_tracked(self, ctx):
        device = ctx.devices[0]
        before = device.allocated_bytes
        buffer = ctx.create_buffer(1024, device)
        assert device.allocated_bytes == before + 1024
        buffer.release()
        assert device.allocated_bytes == before

    def test_double_release_is_safe(self, ctx):
        buffer = ctx.create_buffer(64)
        buffer.release()
        buffer.release()

    def test_out_of_memory(self, ctx):
        with pytest.raises(ocl.OutOfResources):
            ctx.create_buffer(ctx.devices[0].global_mem_size + 1)

    def test_zero_size_rejected(self, ctx):
        with pytest.raises(ocl.InvalidValue):
            ctx.create_buffer(0)

    def test_write_read_roundtrip(self, ctx):
        queue = ctx.queues[0]
        data = np.arange(16, dtype=np.float32)
        buffer = ctx.create_buffer(data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        out, _event = queue.enqueue_read_buffer(buffer, np.float32, 16)
        np.testing.assert_array_equal(out, data)

    def test_write_overflow_rejected(self, ctx):
        buffer = ctx.create_buffer(8)
        with pytest.raises(ocl.InvalidValue):
            ctx.queues[0].enqueue_write_buffer(buffer, np.zeros(100, np.float32))

    def test_partial_read_with_offset(self, ctx):
        queue = ctx.queues[0]
        data = np.arange(8, dtype=np.int32)
        buffer = ctx.create_buffer(data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        out, _ = queue.enqueue_read_buffer(buffer, np.int32, 2, offset_bytes=8)
        assert list(out) == [2, 3]

    def test_queue_rejects_foreign_buffer(self, ctx):
        buffer = ctx.create_buffer(64, ctx.devices[1])
        with pytest.raises(ocl.InvalidValue):
            ctx.queues[0].enqueue_write_buffer(buffer, np.zeros(16, np.float32))


class TestPrograms:
    def test_build_and_kernel_names(self, ctx):
        program = ctx.create_program(VEC_ADD).build()
        assert program.kernel_names() == ["vec_add"]

    def test_build_error_carries_log(self, ctx):
        with pytest.raises(ocl.BuildError) as excinfo:
            ctx.create_program("__kernel void k() { undeclared_fn(); }").build()
        assert "undeclared" in str(excinfo.value)

    def test_build_cache_hits_for_same_source(self, ctx):
        ocl.clear_build_cache()
        ctx.create_program(VEC_ADD).build()
        size_after_first = ocl.build_cache_size()
        ctx.create_program(VEC_ADD).build()
        assert ocl.build_cache_size() == size_after_first

    def test_defines_affect_cache_key(self, ctx):
        ocl.clear_build_cache()
        src = "__kernel void k(__global int* o) { o[0] = N; }"
        ctx.create_program(src, defines={"N": "1"}).build()
        ctx.create_program(src, defines={"N": "2"}).build()
        assert ocl.build_cache_size() == 2

    def test_unknown_kernel_name(self, ctx):
        program = ctx.create_program(VEC_ADD).build()
        with pytest.raises(KeyError):
            program.create_kernel("missing")


class TestKernelLaunch:
    def test_correct_result(self, ctx):
        queue = ctx.queues[0]
        n = 256
        a = np.random.RandomState(0).rand(n).astype(np.float32)
        b = np.random.RandomState(1).rand(n).astype(np.float32)
        buf_a = ctx.create_buffer(a.nbytes)
        buf_b = ctx.create_buffer(b.nbytes)
        buf_o = ctx.create_buffer(a.nbytes)
        queue.enqueue_write_buffer(buf_a, a)
        queue.enqueue_write_buffer(buf_b, b)
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        kernel.set_args(buf_a, buf_b, buf_o, n)
        queue.enqueue_nd_range_kernel(kernel, (n,), (64,))
        out, _ = queue.enqueue_read_buffer(buf_o, np.float32, n)
        np.testing.assert_allclose(out, a + b, rtol=1e-6)

    def test_unset_args_rejected(self, ctx):
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        kernel.set_arg(0, ctx.create_buffer(16))
        with pytest.raises(ocl.InvalidKernelArgs):
            ctx.queues[0].enqueue_nd_range_kernel(kernel, (4,), (4,))

    def test_wrong_arg_count_rejected(self, ctx):
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        with pytest.raises(ocl.InvalidKernelArgs):
            kernel.set_args(ctx.create_buffer(16), 4)

    def test_scalar_for_pointer_rejected(self, ctx):
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        with pytest.raises(ocl.InvalidKernelArgs):
            kernel.set_args(1, 2, 3, 4)
            ctx.queues[0].enqueue_nd_range_kernel(kernel, (4,), (4,))

    def test_buffer_on_wrong_device_rejected(self, ctx):
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        b0 = ctx.create_buffer(16, ctx.devices[0])
        b1 = ctx.create_buffer(16, ctx.devices[1])
        kernel.set_args(b0, b1, b0, 4)
        with pytest.raises(ocl.InvalidKernelArgs):
            ctx.queues[0].enqueue_nd_range_kernel(kernel, (4,), (4,))

    def test_event_statistics(self, ctx):
        queue = ctx.queues[0]
        n = 64
        buf = ctx.create_buffer(n * 4)
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        kernel.set_args(buf, buf, buf, n)
        event = queue.enqueue_nd_range_kernel(kernel, (n,), (32,))
        assert event.info["global_loads"] == 2 * n
        assert event.info["global_stores"] == n
        assert event.info["work_items"] == n
        assert event.duration_ns > 0


class TestTimelines:
    def test_queue_time_advances(self, ctx):
        queue = ctx.queues[0]
        assert queue.time_ns == 0
        buffer = ctx.create_buffer(1024)
        event = queue.enqueue_write_buffer(buffer, np.zeros(256, np.float32))
        assert queue.time_ns == event.end_ns > 0

    def test_events_are_ordered_in_order(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(1024)
        e1 = queue.enqueue_write_buffer(buffer, np.zeros(256, np.float32))
        e2 = queue.enqueue_write_buffer(buffer, np.zeros(256, np.float32))
        assert e2.start_ns == e1.end_ns

    def test_devices_advance_independently(self, ctx):
        b0 = ctx.create_buffer(1024, ctx.devices[0])
        ctx.queues[0].enqueue_write_buffer(b0, np.zeros(256, np.float32))
        assert ctx.queues[1].time_ns == 0
        assert ctx.elapsed_ns() == ctx.queues[0].time_ns

    def test_reset_timelines(self, ctx):
        buffer = ctx.create_buffer(64)
        ctx.queues[0].enqueue_write_buffer(buffer, np.zeros(16, np.float32))
        ctx.reset_timelines()
        assert ctx.elapsed_ns() == 0
        assert ctx.queues[0].events == []


class TestSampledExecution:
    def test_sampled_counters_match_full(self, ctx):
        queue = ctx.queues[0]
        n = 1024
        buf = ctx.create_buffer(n * 4)
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        kernel.set_args(buf, buf, buf, n)
        full = queue.enqueue_nd_range_kernel(kernel, (n,), (64,))
        sampled = queue.enqueue_nd_range_kernel(kernel, (n,), (64,), sample_fraction=0.25)
        assert sampled.info["groups_executed"] == 4
        assert sampled.info["ops"] == full.info["ops"]
        assert sampled.info["global_bytes"] == full.info["global_bytes"]
        assert sampled.duration_ns == full.duration_ns

    def test_sample_fraction_one_runs_everything(self, ctx):
        queue = ctx.queues[0]
        n = 128
        buf = ctx.create_buffer(n * 4)
        kernel = ctx.create_program(VEC_ADD).build().create_kernel("vec_add")
        kernel.set_args(buf, buf, buf, n)
        event = queue.enqueue_nd_range_kernel(kernel, (n,), (32,), sample_fraction=1.0)
        assert event.info["groups_executed"] == event.info["groups_total"]
