"""Executor tests: sampling, warp-divergence accounting, group phasing."""

import numpy as np
import pytest

from repro import ocl
from repro.ocl.executor import WARP_SIZE, select_sample_groups


@pytest.fixture
def ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE)
    yield context
    context.release()


def launch(ctx, source, kernel_name, args, global_size, local_size, sample=None):
    kernel = ocl.Program(source).build().create_kernel(kernel_name)
    kernel.set_args(*args)
    return ctx.queues[0].enqueue_nd_range_kernel(kernel, global_size, local_size, sample)


class TestSampling:
    def test_selection_deterministic_and_spread(self):
        groups = [(i,) for i in range(100)]
        first = select_sample_groups(groups, 0.1)
        second = select_sample_groups(groups, 0.1)
        assert first == second
        assert len(first) == 10
        # Spread over the whole range, not clustered at the front.
        assert first[0][0] < 10 and first[-1][0] >= 90

    def test_fraction_one_selects_all(self):
        groups = [(i,) for i in range(8)]
        assert select_sample_groups(groups, 1.0) == groups

    def test_tiny_fraction_selects_at_least_one(self):
        groups = [(i,) for i in range(1000)]
        assert len(select_sample_groups(groups, 1e-9)) == 1

    def test_sampled_output_partially_written_and_quarantined(self, ctx):
        source = """__kernel void k(__global int* o, int n) {
            int gid = get_global_id(0);
            if (gid < n) o[gid] = 1;
        }"""
        buf = ctx.create_buffer(256 * 4)
        event = launch(ctx, source, "k", [buf, 256], (256,), (32,), sample=0.25)
        assert event.info["groups_executed"] == 2
        # Only the sampled groups wrote (white-box: host reads of sampled
        # buffers are forbidden, so inspect the raw storage directly).
        written = int(buf._storage.view(np.int32).sum())
        assert written == 2 * 32
        # The partial contents are quarantined from every correctness path.
        with pytest.raises(ocl.SampledBufferRead):
            ctx.queues[0].enqueue_read_buffer(buf, np.int32, 256)
        # A full host rewrite replaces the partial contents entirely and
        # lifts the quarantine.
        ctx.queues[0].enqueue_write_buffer(buf, np.ones(256, dtype=np.int32))
        data, _ = ctx.queues[0].enqueue_read_buffer(buf, np.int32, 256)
        assert int(data.sum()) == 256


class TestWarpAccounting:
    def test_uniform_kernel_warp_ops_close_to_raw(self, ctx):
        source = """__kernel void k(__global int* o, int n) {
            int gid = get_global_id(0);
            if (gid < n) o[gid] = gid * 2;
        }"""
        buf = ctx.create_buffer(64 * 4)
        event = launch(ctx, source, "k", [buf, 64], (64,), (32,))
        # Uniform work: warp-adjusted == raw (each warp's max == each lane).
        assert event.info["warp_ops"] == event.info["ops"]

    def test_divergent_kernel_charged_at_warp_max(self, ctx):
        # One lane per warp loops 100x; the whole warp pays for it.
        source = """__kernel void k(__global int* o) {
            int gid = get_global_id(0);
            int s = 0;
            if (gid % 32 == 0) {
                for (int i = 0; i < 100; ++i) s += i;
            }
            o[gid] = s;
        }"""
        buf = ctx.create_buffer(64 * 4)
        event = launch(ctx, source, "k", [buf], (64,), (32,))
        assert event.info["warp_ops"] > 3 * event.info["ops"]

    def test_partial_warp_padded_to_full(self, ctx):
        source = """__kernel void k(__global int* o) {
            o[get_global_id(0)] = 1;
        }"""
        buf = ctx.create_buffer(8 * 4)
        event = launch(ctx, source, "k", [buf], (8,), (8,))
        # 8 lanes in a 32-wide warp: charged for 32 lanes of the max.
        per_item = event.info["ops"] / 8
        assert event.info["warp_ops"] == pytest.approx(per_item * WARP_SIZE, rel=0.01)

    def test_barrier_kernels_skip_warp_accounting(self, ctx):
        source = """__kernel void k(__global int* o) {
            __local int t[8];
            t[get_local_id(0)] = 1;
            barrier(CLK_LOCAL_MEM_FENCE);
            o[get_global_id(0)] = t[7 - get_local_id(0)];
        }"""
        buf = ctx.create_buffer(8 * 4)
        event = launch(ctx, source, "k", [buf], (8,), (8,))
        assert event.info["warp_ops"] == 0  # falls back to raw ops

    def test_divergence_affects_simulated_time(self, ctx):
        uniform = """__kernel void k(__global int* o) {
            int s = 0;
            for (int i = 0; i < 50; ++i) s += i;
            o[get_global_id(0)] = s;
        }"""
        divergent = """__kernel void k(__global int* o) {
            int s = 0;
            int n = (get_global_id(0) % 32 == 0) ? 1600 : 0;
            for (int i = 0; i < n; ++i) s += i;
            o[get_global_id(0)] = s;
        }"""
        buf = ctx.create_buffer(256 * 4)
        uniform_event = launch(ctx, uniform, "k", [buf], (256,), (32,))
        divergent_event = launch(ctx, divergent, "k", [buf], (256,), (32,))
        # Both kernels perform the same useful lane-iterations per warp
        # (32 lanes x 50 vs 1 lane x 1600), but the divergent warp stalls
        # 31 idle lanes for 1600 iterations — the warp-divergence model
        # must price it several times slower, while a naive per-item op
        # count would call them equal.
        assert divergent_event.info["ops"] == pytest.approx(uniform_event.info["ops"], rel=0.25)
        ratio = divergent_event.duration_ns / uniform_event.duration_ns
        assert ratio > 4.0
