"""The asynchronous command graph: event wait lists, the event
lifecycle, engine overlap, markers/barriers, and critical-path elapsed
time (``Context.finish_all``)."""

import numpy as np
import pytest

from repro import ocl
from repro.ocl.event import COMPUTE_ENGINE, SYNC_ENGINE, TRANSFER_ENGINE

SCALE = """
__kernel void scale(__global const float* a, __global float* out, int n) {
    int gid = get_global_id(0);
    if (gid < n) out[gid] = 2.0f * a[gid];
}
"""

N = 4096


@pytest.fixture
def ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE, 2)
    yield context
    context.release()


def make_kernel(ctx):
    program = ctx.create_program(SCALE).build()
    return program.create_kernel("scale")


def launch(ctx, queue, wait_for=None):
    """Upload data and launch one scale kernel on ``queue``; returns the
    (write, kernel) events."""
    data = np.arange(N, dtype=np.float32)
    a = ctx.create_buffer(data.nbytes, queue.device)
    out = ctx.create_buffer(data.nbytes, queue.device)
    write = queue.enqueue_write_buffer(a, data)
    kernel = make_kernel(ctx)
    kernel.set_args(a, out, N)
    event = queue.enqueue_nd_range_kernel(
        kernel, (N,), (256,), event_wait_list=wait_for if wait_for is not None else [write]
    )
    return write, event


class TestLifecycle:
    def test_enqueued_command_is_queued_until_resolved(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(64)
        event = queue.enqueue_write_buffer(buffer, np.zeros(16, np.float32))
        assert event.status is ocl.EventStatus.QUEUED
        assert not event.is_complete
        event.wait()
        assert event.status is ocl.EventStatus.COMPLETE

    def test_wait_returns_end_timestamp(self, ctx):
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(64)
        event = queue.enqueue_write_buffer(buffer, np.zeros(16, np.float32))
        assert event.wait() == event.end_ns
        assert event.end_ns > 0

    def test_duration_known_before_resolution(self, ctx):
        # The analytic timing model fixes the duration at enqueue time;
        # only the placement on the timeline is deferred.
        queue = ctx.queues[0]
        buffer = ctx.create_buffer(64)
        event = queue.enqueue_write_buffer(buffer, np.zeros(16, np.float32))
        planned = event.duration_ns
        assert planned > 0
        event.wait()
        assert event.duration_ns == planned

    def test_status_at_walks_the_lifecycle(self, ctx):
        queue = ctx.queues[0]
        write, kernel = launch(ctx, queue)
        kernel.wait()
        # The kernel waits on the upload: before the upload completes it
        # is at best submitted, afterwards running, then complete.
        assert kernel.status_at(kernel.submit_ns - 1) is ocl.EventStatus.QUEUED
        assert kernel.status_at(kernel.start_ns) is ocl.EventStatus.RUNNING
        assert kernel.status_at(kernel.end_ns) is ocl.EventStatus.COMPLETE

    def test_wait_for_events_resolves_all(self, ctx):
        queue = ctx.queues[0]
        events = [
            queue.enqueue_write_buffer(ctx.create_buffer(64), np.zeros(16, np.float32))
            for _ in range(3)
        ]
        latest = ocl.wait_for_events(events)
        assert all(e.is_complete for e in events)
        assert latest == max(e.end_ns for e in events)


class TestDependencies:
    def test_dependent_kernel_starts_exactly_at_dependency_end(self, ctx):
        # The acceptance criterion: a kernel whose wait list completes
        # *after* its engine is free starts exactly at the last
        # dependency's end_ns.
        queue = ctx.queues[0]
        write, kernel = launch(ctx, queue)
        kernel.wait()
        assert write.is_complete
        assert kernel.start_ns == write.end_ns

    def test_implicit_in_order_serialization(self, ctx):
        # event_wait_list=None preserves the classic in-order queue:
        # every command waits for the previously enqueued one, even
        # across engines.
        queue = ctx.queues[0]
        data = np.arange(N, dtype=np.float32)
        a = ctx.create_buffer(data.nbytes)
        out = ctx.create_buffer(data.nbytes)
        write = queue.enqueue_write_buffer(a, data)
        kernel = make_kernel(ctx)
        kernel.set_args(a, out, N)
        launch_event = queue.enqueue_nd_range_kernel(kernel, (N,), (256,))
        _, read = queue.enqueue_read_buffer(out, np.float32, N)
        queue.finish()
        assert launch_event.start_ns == write.end_ns
        assert read.start_ns >= launch_event.end_ns

    def test_command_never_starts_before_wait_list(self, ctx):
        queue = ctx.queues[0]
        events = []
        for _ in range(4):
            events.append(launch(ctx, queue)[1])
        queue.finish()
        for event in events:
            for dep in event.wait_for:
                assert event.start_ns >= dep.end_ns

    def test_explicit_empty_wait_list_allows_overlap(self, ctx):
        # Two uploads to *different* devices with explicit empty wait
        # lists are independent: both start at time 0.
        data = np.zeros(1 << 16, np.float32)
        e0 = ctx.queues[0].enqueue_write_buffer(
            ctx.create_buffer(data.nbytes, ctx.devices[0]), data, event_wait_list=[]
        )
        e1 = ctx.queues[1].enqueue_write_buffer(
            ctx.create_buffer(data.nbytes, ctx.devices[1]), data, event_wait_list=[]
        )
        ctx.finish_all()
        assert e0.start_ns == 0
        assert e1.start_ns == 0

    def test_cross_queue_dependency_edge(self, ctx):
        # A write on device 1 waiting on a read from device 0 — the halo
        # exchange pattern.  Resolving the consumer must transitively
        # resolve the producer on the other queue.
        data = np.arange(256, dtype=np.float32)
        src = ctx.create_buffer(data.nbytes, ctx.devices[0])
        dst = ctx.create_buffer(data.nbytes, ctx.devices[1])
        up = ctx.queues[0].enqueue_write_buffer(src, data)
        staged, down = ctx.queues[0].enqueue_read_buffer(
            src, np.float32, 256, event_wait_list=[up]
        )
        over = ctx.queues[1].enqueue_write_buffer(dst, staged, event_wait_list=[down])
        assert over.wait() >= down.end_ns
        assert down.is_complete  # resolved transitively, on the other queue
        assert over.start_ns >= down.end_ns
        assert down.start_ns >= up.end_ns


class TestEngines:
    def test_timestamps_monotone_per_engine(self, ctx):
        queue = ctx.queues[0]
        for _ in range(5):
            launch(ctx, queue)
        queue.finish()
        for engine in (COMPUTE_ENGINE, TRANSFER_ENGINE):
            events = queue.engine_events(engine)
            assert events, f"no events on the {engine} engine"
            for earlier, later in zip(events, events[1:]):
                # An engine runs one command at a time, in enqueue order.
                assert later.start_ns >= earlier.end_ns
                assert earlier.end_ns >= earlier.start_ns

    def test_transfer_overlaps_compute(self, ctx):
        # Kernel 1's input is uploaded, then while kernel 1 runs on the
        # compute engine the transfer engine uploads kernel 2's input:
        # upload B must start before kernel 1 ends.
        queue = ctx.queues[0]
        data = np.arange(N, dtype=np.float32)
        a, out_a = ctx.create_buffer(data.nbytes), ctx.create_buffer(data.nbytes)
        b, out_b = ctx.create_buffer(data.nbytes), ctx.create_buffer(data.nbytes)
        up_a = queue.enqueue_write_buffer(a, data, event_wait_list=[])
        k1 = make_kernel(ctx)
        k1.set_args(a, out_a, N)
        run_a = queue.enqueue_nd_range_kernel(k1, (N,), (256,), event_wait_list=[up_a])
        up_b = queue.enqueue_write_buffer(b, data, event_wait_list=[])  # independent
        k2 = make_kernel(ctx)
        k2.set_args(b, out_b, N)
        run_b = queue.enqueue_nd_range_kernel(k2, (N,), (256,), event_wait_list=[up_b])
        elapsed = queue.finish()
        assert up_b.start_ns < run_a.end_ns  # the overlap
        assert run_b.start_ns >= up_b.end_ns
        serialized = sum(e.duration_ns for e in (up_a, run_a, up_b, run_b))
        assert elapsed < serialized

    def test_serialized_queue_matches_sum_of_durations(self, ctx):
        # With implicit dependencies only, the old serialized-clock model
        # is reproduced exactly: the queue clock is the sum of durations.
        queue = ctx.queues[0]
        data = np.arange(N, dtype=np.float32)
        buffers = [ctx.create_buffer(data.nbytes) for _ in range(4)]
        events = [queue.enqueue_write_buffer(buffer, data) for buffer in buffers]
        assert queue.finish() == sum(e.duration_ns for e in events)


class TestMarkersAndBarriers:
    def test_marker_completes_with_all_prior_work(self, ctx):
        queue = ctx.queues[0]
        write, kernel = launch(ctx, queue)
        marker = queue.enqueue_marker()
        assert marker.wait() == max(write.end_ns, kernel.end_ns)
        assert marker.engine is SYNC_ENGINE
        assert marker.duration_ns == 0

    def test_marker_with_explicit_wait_list(self, ctx):
        queue = ctx.queues[0]
        write, kernel = launch(ctx, queue)
        marker = queue.enqueue_marker(event_wait_list=[write])
        assert marker.wait() == write.end_ns

    def test_barrier_gates_later_commands(self, ctx):
        queue = ctx.queues[0]
        _, kernel = launch(ctx, queue)
        barrier = queue.enqueue_barrier()
        # An upload with an *explicit empty* wait list would normally be
        # free to run at time 0; the barrier still gates it.
        late = queue.enqueue_write_buffer(
            ctx.create_buffer(64), np.zeros(16, np.float32), event_wait_list=[]
        )
        queue.finish()
        assert barrier.end_ns >= kernel.end_ns
        assert late.start_ns >= barrier.end_ns


class TestFinishAll:
    def test_finish_all_is_critical_path_of_hand_built_graph(self, ctx):
        # A two-device diamond: upload on each device, a kernel on each,
        # then device 1's kernel also waits on device 0's kernel (via a
        # staged read).  finish_all() must equal the end of the longest
        # chain — computed here by hand from the event timestamps.
        q0, q1 = ctx.queues
        data = np.arange(N, dtype=np.float32)
        a0 = ctx.create_buffer(data.nbytes, ctx.devices[0])
        o0 = ctx.create_buffer(data.nbytes, ctx.devices[0])
        a1 = ctx.create_buffer(data.nbytes, ctx.devices[1])
        o1 = ctx.create_buffer(data.nbytes, ctx.devices[1])
        up0 = q0.enqueue_write_buffer(a0, data, event_wait_list=[])
        up1 = q1.enqueue_write_buffer(a1, data, event_wait_list=[])
        k0 = make_kernel(ctx)
        k0.set_args(a0, o0, N)
        run0 = q0.enqueue_nd_range_kernel(k0, (N,), (256,), event_wait_list=[up0])
        staged, read0 = q0.enqueue_read_buffer(o0, np.float32, N, event_wait_list=[run0])
        feed1 = q1.enqueue_write_buffer(a1, staged, event_wait_list=[read0, up1])
        k1 = make_kernel(ctx)
        k1.set_args(a1, o1, N)
        run1 = q1.enqueue_nd_range_kernel(k1, (N,), (256,), event_wait_list=[feed1])
        elapsed = ctx.finish_all()
        all_events = [up0, up1, run0, read0, feed1, run1]
        assert all(e.is_complete for e in all_events)
        assert elapsed == max(e.end_ns for e in all_events)
        assert elapsed == run1.end_ns  # the cross-device chain is longest
        # ... and the chain's links are tight: each step starts at its
        # gating dependency's completion.
        assert run0.start_ns == up0.end_ns
        assert read0.start_ns == run0.end_ns
        assert feed1.start_ns == max(read0.end_ns, up1.end_ns)
        assert run1.start_ns == feed1.end_ns
        # Strictly shorter than serializing everything on one clock.
        assert elapsed < sum(e.duration_ns for e in all_events)

    def test_finish_all_idempotent(self, ctx):
        launch(ctx, ctx.queues[0])
        launch(ctx, ctx.queues[1])
        first = ctx.finish_all()
        assert ctx.finish_all() == first

    def test_reset_timelines_clears_scheduler_state(self, ctx):
        queue = ctx.queues[0]
        launch(ctx, queue)
        assert queue.finish() > 0
        ctx.reset_timelines()
        assert queue.finish() == 0
        assert queue.events == []
        # A fresh command starts the timeline from zero again.
        event = queue.enqueue_write_buffer(ctx.create_buffer(64), np.zeros(16, np.float32))
        assert event.wait() == event.duration_ns


class TestCounters:
    def test_copy_buffer_counts_into_transfer_totals(self, ctx):
        queue = ctx.queues[0]
        src = ctx.create_buffer(256)
        dst = ctx.create_buffer(256)
        ns_before = queue.total_transfer_ns
        bytes_before = queue.total_transfer_bytes
        event = queue.enqueue_copy_buffer(src, dst, 256)
        assert queue.total_transfer_bytes == bytes_before + 256
        assert queue.total_transfer_ns == ns_before + event.duration_ns
