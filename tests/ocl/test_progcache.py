"""The persistent compiled-program cache: disk hits across build-cache
clears and across processes, env switches, and corruption tolerance."""

from __future__ import annotations

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro import ocl
from repro.kernelc import progcache
from repro.ocl import Program, clear_build_cache

SOURCE = """
__kernel void triple(__global const float* in, __global float* out) {
    size_t gid = get_global_id(0);
    out[gid] = in[gid] * 3.0f;
}
"""


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    path = tmp_path / "progcache"
    monkeypatch.setenv("SKELCL_CACHE_DIR", str(path))
    monkeypatch.delenv("SKELCL_CACHE", raising=False)
    # The in-memory build cache is process-wide; start each test cold so
    # a build here actually exercises the persistent level.
    clear_build_cache()
    yield path
    clear_build_cache()


def _entries(path):
    return glob.glob(os.path.join(str(path), "*", "*.pkl"))


def test_disk_hit_after_memory_cache_clear(cache_dir, runtime_1gpu):
    metrics = runtime_1gpu.metrics
    Program(SOURCE).build()
    assert metrics.value("skelcl_program_builds_total", result="compiled") == 1
    assert len(_entries(cache_dir)) == 1

    clear_build_cache()  # simulate a fresh process: in-memory level gone
    program = Program(SOURCE).build()
    assert metrics.value("skelcl_program_builds_total", result="disk") == 1
    assert metrics.value("skelcl_program_builds_total", result="compiled") == 1
    assert "disk cache" in program.build_log
    assert program.kernel_names() == ["triple"]


def test_disk_entry_produces_identical_results(cache_dir, runtime_1gpu):
    data = np.random.RandomState(3).rand(256).astype(np.float32)
    source = "float func(float x) { return -x * 1.5f; }"
    cold = skelcl.Map(source)(skelcl.Vector(data=data)).to_numpy()

    clear_build_cache()
    # A fresh skeleton instance: the first one holds its built kernel.
    warm = skelcl.Map(source)(skelcl.Vector(data=data)).to_numpy()
    assert runtime_1gpu.metrics.value("skelcl_program_builds_total", result="disk") >= 1
    assert cold.tobytes() == warm.tobytes()


def test_skelcl_cache_off_disables_persistence(cache_dir, monkeypatch, runtime_1gpu):
    monkeypatch.setenv("SKELCL_CACHE", "off")
    metrics = runtime_1gpu.metrics
    Program(SOURCE).build()
    assert not _entries(cache_dir)

    clear_build_cache()
    Program(SOURCE).build()
    assert metrics.value("skelcl_program_builds_total", result="compiled") == 2
    assert metrics.value("skelcl_program_builds_total", result="disk") == 0


def test_corrupt_entry_falls_back_to_cold_compile(cache_dir, runtime_1gpu):
    Program(SOURCE).build()
    (entry,) = _entries(cache_dir)
    with open(entry, "wb") as handle:
        handle.write(b"not a pickle")

    clear_build_cache()
    program = Program(SOURCE).build()
    metrics = runtime_1gpu.metrics
    assert metrics.value("skelcl_program_builds_total", result="compiled") == 2
    assert metrics.value("skelcl_program_builds_total", result="disk") == 0
    assert program.kernel_names() == ["triple"]
    # The cold compile repaired the entry in place.
    clear_build_cache()
    Program(SOURCE).build()
    assert metrics.value("skelcl_program_builds_total", result="disk") == 1


def test_distinct_defines_with_same_expansion_share_an_entry(cache_dir):
    plain = "__kernel void k(__global int* out) { out[get_global_id(0)] = 7; }"
    defined = "__kernel void k(__global int* out) { out[get_global_id(0)] = N; }"
    Program(plain).build()
    Program(defined, defines={"N": "7"}).build()
    assert len(_entries(cache_dir)) == 1


def test_entry_path_depends_on_toolchain_fingerprint(cache_dir, monkeypatch):
    before = progcache.entry_path(SOURCE)
    monkeypatch.setattr(progcache, "_fingerprint_cache", "different-toolchain")
    assert progcache.entry_path(SOURCE) != before


_CHILD = textwrap.dedent("""
    import json
    import numpy as np
    import repro.skelcl as skelcl
    from repro import ocl

    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE)
    data = np.arange(64, dtype=np.float32)
    result = skelcl.Map(
        "float func(float x) { return x * 5.0f + 1.0f; }"
    )(skelcl.Vector(data=data)).to_numpy()
    metrics = runtime.metrics
    print(json.dumps({
        "compiled": metrics.value("skelcl_program_builds_total", result="compiled"),
        "disk": metrics.value("skelcl_program_builds_total", result="disk"),
        "checksum": float(result.sum()),
    }))
    skelcl.terminate()
""")


def test_second_process_builds_from_disk(cache_dir, tmp_path):
    import json

    env = dict(os.environ, SKELCL_CACHE_DIR=str(cache_dir),
               PYTHONPATH="src")
    runs = []
    for _ in range(2):
        proc = subprocess.run([sys.executable, "-c", _CHILD], env=env,
                              capture_output=True, text=True, cwd="/root/repo",
                              check=True)
        runs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    first, second = runs
    assert first["compiled"] >= 1
    assert second["compiled"] == 0
    assert second["disk"] >= 1
    assert first["checksum"] == second["checksum"]
