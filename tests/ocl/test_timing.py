"""Timing model unit tests: the analytic properties the experiments rely on."""

import pytest

from repro.kernelc.execmodel import ExecutionCounters
from repro.ocl import DeviceSpec, TESLA_T10, kernel_time_ns, peer_transfer_time_ns, transfer_time_ns
from repro.ocl.timing import (
    compute_time_ns,
    global_memory_time_ns,
    local_memory_time_ns,
    simd_utilization,
)


def counters(ops=0, gloads=0, gstores=0, gbytes=0, lloads=0, lstores=0, lbytes=0):
    c = ExecutionCounters()
    c.ops = ops
    c.memory.global_loads = gloads
    c.memory.global_stores = gstores
    c.memory.global_bytes = gbytes
    c.memory.local_loads = lloads
    c.memory.local_stores = lstores
    c.memory.local_bytes = lbytes
    return c


class TestComputeTime:
    def test_scales_linearly_with_ops(self):
        spec = TESLA_T10
        assert compute_time_ns(spec, 2_000_000) == pytest.approx(2 * compute_time_ns(spec, 1_000_000))

    def test_scales_inversely_with_cores(self):
        slow = DeviceSpec(name="slow", processing_elements=100, clock_ghz=1.0)
        fast = DeviceSpec(name="fast", processing_elements=200, clock_ghz=1.0)
        assert compute_time_ns(slow, 10**6) == pytest.approx(2 * compute_time_ns(fast, 10**6))

    def test_efficiency_factor_speeds_up(self):
        base = DeviceSpec(name="base", efficiency=1.0)
        tuned = base.with_(efficiency=1.3)
        assert compute_time_ns(base, 10**6) == pytest.approx(1.3 * compute_time_ns(tuned, 10**6))

    def test_partial_simd_utilization_slows_down(self):
        spec = TESLA_T10
        full = compute_time_ns(spec, 10**6, simd_utilization=1.0)
        half = compute_time_ns(spec, 10**6, simd_utilization=0.5)
        assert half == pytest.approx(2 * full)


class TestMemoryTime:
    def test_bandwidth_term(self):
        spec = DeviceSpec(name="d", global_bandwidth_gbs=100.0, global_latency_ns=0.0)
        assert global_memory_time_ns(spec, 0, 100_000) == pytest.approx(1000.0)

    def test_latency_term_dominates_many_small_accesses(self):
        spec = DeviceSpec(name="d", global_bandwidth_gbs=100.0,
                          global_latency_ns=400.0, latency_hiding=40.0)
        # 1M accesses of 1 byte: bandwidth term 10us, latency term 10ms.
        time = global_memory_time_ns(spec, 1_000_000, 1_000_000)
        assert time > 9_000_000

    def test_local_memory_much_cheaper_than_global(self):
        spec = TESLA_T10
        nbytes = 10**6
        assert local_memory_time_ns(spec, nbytes) < global_memory_time_ns(spec, nbytes // 4, nbytes)


class TestKernelTime:
    def test_roofline_takes_max(self):
        spec = DeviceSpec(name="d", launch_overhead_us=0.0, processing_elements=1,
                          clock_ghz=1.0, global_bandwidth_gbs=1.0, global_latency_ns=0.0)
        compute_bound = kernel_time_ns(spec, counters(ops=10**6, gbytes=10))
        memory_bound = kernel_time_ns(spec, counters(ops=10, gbytes=10**7))
        assert compute_bound == pytest.approx(10**6, rel=0.01)
        assert memory_bound == pytest.approx(10**7, rel=0.01)

    def test_launch_overhead_is_floor(self):
        spec = TESLA_T10
        assert kernel_time_ns(spec, counters()) >= spec.launch_overhead_us * 1000

    def test_result_is_deterministic_integer(self):
        c = counters(ops=12345, gloads=10, gbytes=4000)
        assert kernel_time_ns(TESLA_T10, c) == kernel_time_ns(TESLA_T10, c)
        assert isinstance(kernel_time_ns(TESLA_T10, c), int)


class TestTransfers:
    def test_transfer_latency_floor(self):
        assert transfer_time_ns(TESLA_T10, 0) == int(TESLA_T10.pcie_latency_us * 1000)

    def test_transfer_scales_with_bytes(self):
        small = transfer_time_ns(TESLA_T10, 1 << 20)
        large = transfer_time_ns(TESLA_T10, 4 << 20)
        assert large > small * 2

    def test_peer_transfer_is_two_hops(self):
        nbytes = 1 << 20
        assert peer_transfer_time_ns(TESLA_T10, nbytes) == 2 * transfer_time_ns(TESLA_T10, nbytes)


class TestSimdUtilization:
    def test_full_warps(self):
        assert simd_utilization(256, 32) == 1.0

    def test_partial_warp(self):
        assert simd_utilization(16, 32) == 0.5

    def test_mixed(self):
        # 48 items = 1 full warp + half warp -> 48/64
        assert simd_utilization(48, 32) == pytest.approx(0.75)

    def test_degenerate(self):
        assert simd_utilization(0) == 1.0
