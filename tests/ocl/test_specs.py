"""Device spec presets: the paper's hardware, pinned as data."""

import pytest

from repro import ocl
from repro.ocl.spec import DeviceSpec


class TestPresets:
    def test_tesla_t10_matches_paper_s1070(self):
        # §4: "Each GPU comprises 240 streaming processor cores running
        # at 1.44 GHz ... 4 GB per GPU ... 102 GB/s per GPU".
        spec = ocl.TESLA_T10
        assert spec.processing_elements == 240
        assert spec.clock_ghz == pytest.approx(1.44)
        assert spec.global_mem_bytes == 4 << 30
        assert spec.global_bandwidth_gbs == pytest.approx(102.0)

    def test_fermi_matches_paper_sobel_gpu(self):
        # §4.2: "one NVIDIA Tesla GPU with 480 processing elements and
        # 4 GByte memory".
        spec = ocl.TESLA_FERMI_480
        assert spec.processing_elements == 480
        assert spec.global_mem_bytes == 4 << 30

    def test_with_replaces_fields(self):
        spec = ocl.TESLA_T10.with_(efficiency=1.3)
        assert spec.efficiency == pytest.approx(1.3)
        assert spec.processing_elements == ocl.TESLA_T10.processing_elements
        assert ocl.TESLA_T10.efficiency == 1.0  # original untouched

    def test_specs_are_immutable(self):
        with pytest.raises(Exception):
            ocl.TESLA_T10.clock_ghz = 2.0

    def test_s1070_aggregate_bandwidth(self):
        # The paper: "dedicated 16 GB of memory (4 GB per GPU) is
        # accessed with up to 408 GB/s (102 GB/s per GPU)" — four T10s.
        platform = ocl.Platform(ocl.TESLA_T10, 4)
        total_mem = sum(d.global_mem_size for d in platform.devices)
        total_bw = sum(d.spec.global_bandwidth_gbs for d in platform.devices)
        assert total_mem == 16 << 30
        assert total_bw == pytest.approx(408.0)


class TestPlatformAndDevices:
    def test_platform_creates_indexed_devices(self):
        platform = ocl.Platform(ocl.TEST_DEVICE, 3)
        assert [d.index for d in platform.devices] == [0, 1, 2]
        assert all("Test device" in d.name for d in platform.devices)

    def test_platform_requires_devices(self):
        with pytest.raises(ValueError):
            ocl.Platform(ocl.TEST_DEVICE, 0)

    def test_context_from_platform_or_list(self):
        platform = ocl.Platform(ocl.TEST_DEVICE, 2)
        from_platform = ocl.Context(platform)
        from_list = ocl.Context(platform.devices[:1])
        assert from_platform.num_devices == 2
        assert from_list.num_devices == 1

    def test_queue_for_device(self):
        context = ocl.Context.create(ocl.TEST_DEVICE, 2)
        queue = context.queue_for(context.devices[1])
        assert queue is context.queues[1]
        other = ocl.Context.create(ocl.TEST_DEVICE, 1)
        with pytest.raises(ocl.InvalidValue):
            context.queue_for(other.devices[0])
