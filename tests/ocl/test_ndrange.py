"""NDRange geometry tests."""

import pytest

from repro.ocl import InvalidValue, InvalidWorkGroupSize, NDRange


class TestCreation:
    def test_1d(self):
        r = NDRange.create(1024, 256)
        assert r.global_size == (1024,)
        assert r.local_size == (256,)
        assert r.total_groups == 4

    def test_int_or_tuple_equivalent(self):
        assert NDRange.create(64, 8) == NDRange.create((64,), (8,))

    def test_2d(self):
        r = NDRange.create((64, 32), (16, 8))
        assert r.num_groups == (4, 4)
        assert r.work_group_size == 128
        assert r.total_work_items == 2048

    def test_3d(self):
        r = NDRange.create((8, 8, 8), (2, 2, 2))
        assert r.total_groups == 64

    def test_non_divisible_rejected(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange.create(100, 32)

    def test_zero_global_rejected(self):
        with pytest.raises(InvalidValue):
            NDRange.create(0, 1)

    def test_zero_local_rejected(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange.create((8,), (0,))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange.create((8, 8), (8,))

    def test_too_many_dimensions_rejected(self):
        with pytest.raises(InvalidValue):
            NDRange.create((2, 2, 2, 2), (1, 1, 1, 1))

    def test_group_size_limit(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange.create(2048, 2048, max_work_group_size=1024)

    def test_default_local_size_divides_global(self):
        r = NDRange.create(96, max_work_group_size=256)
        assert 96 % r.local_size[0] == 0

    def test_default_local_respects_limit(self):
        r = NDRange.create((64, 64), None, max_work_group_size=64)
        assert r.work_group_size <= 64


class TestEnumeration:
    def test_group_ids_cover_all_groups(self):
        r = NDRange.create((8, 4), (4, 2))
        groups = list(r.group_ids())
        assert len(groups) == r.total_groups
        assert len(set(groups)) == len(groups)
        assert (0, 0) in groups and (1, 1) in groups

    def test_local_ids_cover_group(self):
        r = NDRange.create((4, 4), (2, 2))
        locals_ = list(r.local_ids())
        assert sorted(locals_) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_dim0_fastest(self):
        r = NDRange.create((4, 2), (2, 1))
        groups = list(r.group_ids())
        assert groups[0] == (0, 0)
        assert groups[1] == (1, 0)
