"""Acceptance gate: on the in-repo kernel corpus (instantiated skeleton
templates plus the ported vendor baselines), at least 80% of
``__global``/``__constant`` pointer parameters get an affine summary —
the precision SkelSan, the lint rules and the planner gate all feed on.
"""

import glob
import os

import pytest

from repro.analysis import affine
from repro.kernelc.frontend import compile_source
from repro.skelcl.allpairs import AllPairs
from repro.skelcl.map import Map
from repro.skelcl.mapoverlap import MapOverlap
from repro.skelcl.reduce import Reduce
from repro.skelcl.scan import Scan
from repro.skelcl.zip import Zip

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def skeleton_sources():
    """Representative generated kernels, one per skeleton family."""
    yield Map("float func(float x) { return 2.0f * x; }").kernel_source()
    yield Zip("float func(float x, float y) { return x + y; }").kernel_source()
    blur = MapOverlap(
        "float func(float* v) { return get(v, -1) + get(v, 0) + get(v, 1); }",
        1)
    yield blur.vector_source()
    stencil = MapOverlap(
        "float func(float* m) {"
        " return get(m, -1, 0) + get(m, 1, 0) + get(m, 0, -1) + get(m, 0, 1); }",
        1)
    yield stencil.matrix_source()
    yield Reduce("float func(float x, float y) { return x + y; }",
                 "0").kernel_source()
    yield Scan("float func(float x, float y) { return x + y; }",
               "0").kernel_source()
    pairs = AllPairs(
        reduce=Reduce("float func(float x, float y) { return x + y; }", "0"),
        zip=Zip("float func(float x, float y) { return x * y; }"))
    yield pairs.kernel_source()


def baseline_sources():
    from repro.kernelc.__main__ import _extract_kernel_strings

    for path in sorted(glob.glob(os.path.join(
            REPO, "src", "repro", "baselines", "*.py"))):
        for _line, text in _extract_kernel_strings(path):
            yield text


def count_params(source):
    """(affine, fallback) pointer-parameter counts over every kernel."""
    program = compile_source(source, "<corpus>")
    affine_n = fallback_n = 0
    for fn in program.kernels():
        summary = affine.summarize_kernel(program, fn)
        for psum in summary.params.values():
            if psum.affine:
                affine_n += 1
            else:
                fallback_n += 1
    return affine_n, fallback_n


def test_corpus_mostly_affine():
    affine_n = fallback_n = 0
    sources = list(skeleton_sources()) + list(baseline_sources())
    assert len(sources) >= 8, "corpus unexpectedly small"
    for source in sources:
        try:
            a, f = count_params(source)
        except Exception:
            continue  # templated fragments that need runtime substitution
        affine_n += a
        fallback_n += f
    total = affine_n + fallback_n
    assert total >= 10, f"too few summarized parameters ({total})"
    ratio = affine_n / total
    assert ratio >= 0.8, (
        f"only {affine_n}/{total} ({ratio:.0%}) of global pointer "
        f"parameters were summarized as affine"
    )


def test_skeleton_map_zip_fully_affine():
    """The planner's fusion gate depends on Map/Zip being exactly
    affine — pin that stronger property separately."""
    for source in (
        Map("float func(float x) { return -x; }").kernel_source(),
        Zip("float func(float x, float y) { return x * y; }").kernel_source(),
    ):
        a, f = count_params(source)
        assert f == 0 and a > 0
