"""The planner's footprint legality gate: fusion is only attempted for
skeletons whose generated kernel *proves* the elementwise access
pattern.  A subclass that shape-checks identically but shifts its read
index must be planned unfused (and still compute its own semantics
correctly)."""

import numpy as np
import pytest

from repro import ocl
import repro.skelcl as skelcl
from repro.plan import compose
from repro.skelcl import Map, Vector, Zip


class ShiftedMap(Map):
    """Same Python-level shape as Map, but the kernel reads in[i+1]
    (clamped at the end): NOT elementwise, so fusing it into a chain
    would be wrong."""

    def kernel_source(self):
        return super().kernel_source().replace(
            "SCL_IN[SCL_ID + SCL_OFFSET]",
            "SCL_IN[SCL_ID + 1 < SCL_N ? SCL_ID + SCL_OFFSET + 1"
            " : SCL_ID + SCL_OFFSET]")


@pytest.fixture
def lazy_runtime():
    runtime = skelcl.init(num_devices=1, spec=ocl.TEST_DEVICE, lazy=True)
    yield runtime
    runtime.close()


class TestGate:
    def test_real_map_and_zip_pass(self):
        assert compose.footprints_fusable(
            Map("float func(float x) { return -x; }"))
        assert compose.footprints_fusable(
            Zip("float func(float x, float y) { return x + y; }"))

    def test_shifted_read_rejected(self):
        assert not compose.footprints_fusable(
            ShiftedMap("float func(float x) { return -x; }"))

    def test_gate_is_memoized_on_source(self):
        m = Map("float func(float x) { return x + 1.0f; }")
        key = m.kernel_source()
        compose.footprints_fusable(m)
        assert key in compose._FOOTPRINT_CACHE


class TestPlannedExecution:
    def test_fusable_chain_still_fuses(self, lazy_runtime):
        double = Map("float func(float x) { return 2.0f * x; }")
        inc = Map("float func(float x) { return x + 1.0f; }")
        data = np.arange(256, dtype=np.float32)
        result = inc(double(Vector(data=data))).to_numpy()
        np.testing.assert_allclose(result, 2.0 * data + 1.0, rtol=1e-6)
        snapshot = lazy_runtime.metrics_snapshot()
        fused = snapshot["counters"].get("skelcl_plan_fused_total", {})
        elided = snapshot["counters"].get("skelcl_plan_elided_total", {})
        assert sum(fused.values()) + sum(elided.values()) >= 1

    def test_footprint_rejected_chain_runs_unfused_and_correct(
            self, lazy_runtime):
        shifted = ShiftedMap("float func(float x) { return x; }")
        inc = Map("float func(float x) { return x + 1.0f; }")
        data = np.arange(256, dtype=np.float32)
        result = inc(shifted(Vector(data=data))).to_numpy()
        # Eager semantics of the shifted kernel: element i reads i+1,
        # clamped at the end.
        expected = np.concatenate([data[1:], data[-1:]]) + 1.0
        np.testing.assert_allclose(result, expected, rtol=1e-6)
        snapshot = lazy_runtime.metrics_snapshot()
        fallback = snapshot["counters"].get("skelcl_plan_fallback_total", {})
        assert fallback.get("{reason=footprint}", 0) >= 1
        assert sum(snapshot["counters"].get(
            "skelcl_plan_fused_total", {}).values()) == 0
