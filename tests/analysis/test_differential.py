"""Differential validation of SkelAccess: for every executed kernel, the
resolved affine footprints must cover every byte the interpreter's
memory trace records — zero under-approximation, ever.  Exactness
(affine rather than whole-buffer) is measured but only soundness is
asserted per-access.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import affine
from repro.kernelc import ExecutionCounters
from repro.kernelc.frontend import compile_source

from ..kernelc.helpers import make_buffers, run_kernel


def traced_run(source, kernel_name, arrays, args, global_size,
               local_size=None):
    """Execute through the interpreter with the memory trace enabled;
    returns (program, trace, {array_id: buffer name}, scalar args)."""
    program = compile_source(source)
    counters = ExecutionCounters()
    counters.memory.trace = []
    pointers = make_buffers(arrays, counters)
    id_to_name = {id(p.array): name for name, p in pointers.items()}

    if isinstance(global_size, int):
        global_size = (global_size,)
    if local_size is None:
        local_size = global_size
    elif isinstance(local_size, int):
        local_size = (local_size,)

    # Reuse run_kernel's interpreter plumbing but keep our counters:
    # execute manually (run_kernel would build fresh buffers/counters).
    from repro.kernelc.execmodel import convert_value
    from repro.kernelc.interp import Interpreter, Machine, allocate_local_memory
    from ..kernelc.helpers import _contexts

    definition = program.function(kernel_name)
    runtime_args = [pointers[a] if isinstance(a, str) else a for a in args]
    runtime_args = [convert_value(v, p.declared_type)
                    for v, p in zip(runtime_args, definition.params)]
    machine = Machine(program, counters)
    for _group, contexts in _contexts(tuple(global_size), tuple(local_size)):
        storage = allocate_local_memory(definition, counters)
        generators = [
            Interpreter(machine, ctx, storage).run_kernel(definition, runtime_args)
            for ctx in contexts
        ]
        alive = generators
        while alive:
            next_alive = []
            for gen in alive:
                try:
                    next(gen)
                    next_alive.append(gen)
                except StopIteration:
                    pass
            alive = next_alive
    return program, counters.memory.trace, id_to_name, global_size, local_size


def check_coverage(source, kernel_name, arrays, args, global_size,
                   local_size=None):
    """Assert the affine footprints cover the full traced byte set.
    Returns True when every traced global access was covered by an
    *affine* (not fallback) range."""
    program, trace, id_to_name, global_size, local_size = traced_run(
        source, kernel_name, arrays, args, global_size, local_size)
    fn = program.function(kernel_name)
    summary = affine.summarize_kernel(program, fn)

    definition_params = {p.name for p in fn.params}
    scalar_args = {}
    for value, param in zip(args, fn.params):
        if not isinstance(value, str) and isinstance(value, (int, np.integer)):
            scalar_args[param.name] = int(value)
    env = affine.make_eval_env(global_size, local_size, scalar_args)

    # Resolve each summarized parameter to concrete byte windows.
    resolved = {}
    all_affine = True
    for name, psum in summary.params.items():
        if name not in arrays:
            continue
        nbytes = arrays[name].nbytes
        if not psum.affine:
            resolved[name] = [affine.ResolvedAccess(0, nbytes, 0, 0, "rw")]
            all_affine = False
            continue
        windows = []
        for fp in psum.footprints:
            try:
                window = affine.resolve_footprint(fp, env, psum.elem_size, nbytes)
            except affine.Unresolvable:
                window = affine.ResolvedAccess(0, nbytes, 0, 0, "rw")
                all_affine = False
            if window is not None:
                windows.append(window)
        resolved[name] = windows

    def covered(windows, byte_start, nbytes, mode):
        for w in windows:
            if mode not in w.mode and w.mode != "rw":
                continue
            if not (w.start <= byte_start and byte_start + nbytes <= w.stop):
                continue
            if w.stride:
                if (byte_start - w.start) % w.stride + nbytes > w.width:
                    continue
            return True
        return False

    for array_id, space, byte_start, nbytes, mode in trace:
        if space not in ("global", "constant"):
            continue
        name = id_to_name[array_id]
        assert name in resolved, f"traced access to unsummarized param {name}"
        assert covered(resolved[name], byte_start, nbytes, mode), (
            f"{kernel_name}: traced {mode} of {name} bytes "
            f"[{byte_start}, {byte_start + nbytes}) not covered by "
            f"{resolved[name]}"
        )
    assert definition_params  # sanity: the kernel has parameters
    return all_affine


class TestKnownKernels:
    def test_map_kernel_exact(self):
        assert check_coverage("""
            __kernel void k(__global const float* in, __global float* out,
                            int n, int off) {
                int i = get_global_id(0);
                if (i < n) out[i] = in[i + off];
            }""", "k",
            {"in": np.zeros(80, np.float32), "out": np.zeros(64, np.float32)},
            ["in", "out", 60, 3], 64, 16)

    def test_strided_kernel_exact(self):
        assert check_coverage("""
            __kernel void k(__global float* out, int n) {
                int i = get_global_id(0);
                if (i < n) out[2 * i] = 1.0f;
            }""", "k",
            {"out": np.zeros(128, np.float32)}, ["out", 60], 64, 16)

    def test_grid_stride_loop_exact(self):
        assert check_coverage("""
            __kernel void k(__global const float* in, __global float* out,
                            int n) {
                for (int i = get_global_id(0); i < n;
                     i += (int)get_global_size(0)) {
                    out[i] = in[i] * 2.0f;
                }
            }""", "k",
            {"in": np.ones(100, np.float32), "out": np.zeros(100, np.float32)},
            ["in", "out", 100], 16, 8)

    def test_data_dependent_fallback_is_still_sound(self):
        # Index depends on loaded data: analysis must fall back to the
        # whole buffer, which still covers the trace.
        table = np.arange(16, dtype=np.int32) % 7
        assert not check_coverage("""
            __kernel void k(__global const int* t, __global int* out, int n) {
                int i = get_global_id(0);
                if (i < n) out[t[i]] = i;
            }""", "k",
            {"t": table, "out": np.zeros(16, np.int32)}, ["t", "out", 16],
            16, 4)


_OFFSETS = st.integers(min_value=0, max_value=3)
_STRIDES = st.sampled_from([1, 2, 3])
_SCALES = st.sampled_from(["i", "2 * i", "3 * i + 1", "i + off"])


class TestPropertyCoverage:
    @settings(max_examples=40, deadline=None)
    @given(expr=_SCALES, off=_OFFSETS, n=st.integers(min_value=1, max_value=48))
    def test_affine_index_families_always_covered(self, expr, off, n):
        source = f"""
            __kernel void k(__global const float* in, __global float* out,
                            int n, int off) {{
                int i = get_global_id(0);
                if (i < n) out[{expr}] = in[{expr}];
            }}"""
        size = 4 * 48 + 16  # room for every generated index
        check_coverage(source, "k",
                       {"in": np.zeros(size, np.float32),
                        "out": np.zeros(size, np.float32)},
                       ["in", "out", n, off], 48, 16)

    @settings(max_examples=25, deadline=None)
    @given(start=_OFFSETS, step=_STRIDES,
           bound=st.integers(min_value=1, max_value=40))
    def test_loop_families_always_covered(self, start, step, bound):
        source = f"""
            __kernel void k(__global float* out, int n) {{
                int g = get_global_id(0);
                for (int i = g + {start}; i < n; i += {step * 8}) {{
                    out[i] = (float)g;
                }}
            }}"""
        check_coverage(source, "k", {"out": np.zeros(64, np.float32)},
                       ["out", bound], 8, 8)
