"""The SkelAccess-backed lint rules: ``symbolic-oob`` (witness-based
out-of-bounds proof), ``uncoalesced-access`` / ``strided-global-read``
(memory-layout hints), and the ``skelcl-lint: allow(...)`` suppression
comments.  The seeded-bug test mirrors the acceptance criterion: an
off-by-one MapOverlap tile that constant-interval bound checking cannot
catch (the index depends on get_local_id) must be flagged."""

import pytest

from repro.kernelc.diagnostics import Severity
from repro.kernelc.frontend import compile_source
from repro.kernelc.lint import lint_program
from repro.skelcl.mapoverlap import MapOverlap


def lint(source):
    program = compile_source(source, "<test>")
    return lint_program(program)


def messages(diagnostics, rule):
    return [d for d in diagnostics if f"[{rule}]" in d.message]


class TestSymbolicOob:
    def test_seeded_mapoverlap_tile_off_by_one_is_caught(self):
        blur = MapOverlap(
            "float func(float* v) { return v[-1] + v[0] + v[1]; }", 1)
        good = blur.vector_source()
        assert not messages(lint(good), "symbolic-oob")
        # Seed the bug: tile one element short of the halo staging loop's
        # reach.  An interval analysis sees only `index <= 256 + lid`
        # with unknown lid; the reqd_work_group_size attribute makes
        # lid=1 a guaranteed witness.
        seeded = good.replace("__local float SCL_TILE[256 + 2 * 1];",
                              "__local float SCL_TILE[256 + 2 * 1 - 1];")
        assert seeded != good
        found = messages(lint(seeded), "symbolic-oob")
        assert found, "seeded off-by-one tile not reported"
        assert found[0].severity is Severity.ERROR
        assert "SCL_TILE" in found[0].message
        assert "257" in found[0].message  # the witness index

    def test_plain_kernel_witness(self):
        diagnostics = lint("""
            __attribute__((reqd_work_group_size(32, 1, 1)))
            __kernel void k(__global float* out) {
                __local float tile[32];
                int lid = get_local_id(0);
                tile[lid + 1] = 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                out[get_global_id(0)] = tile[lid];
            }""")
        found = messages(diagnostics, "symbolic-oob")
        assert found and "32" in found[0].message

    def test_guarded_access_is_clean(self):
        diagnostics = lint("""
            __attribute__((reqd_work_group_size(32, 1, 1)))
            __kernel void k(__global float* out) {
                __local float tile[32];
                int lid = get_local_id(0);
                if (lid + 1 < 32) tile[lid + 1] = 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                out[get_global_id(0)] = tile[lid];
            }""")
        assert not messages(diagnostics, "symbolic-oob")

    def test_non_affine_loop_iv_without_guard_is_not_definite(self):
        # The loop condition t*t < m is not affine, so no guard pins
        # the induction symbol — and the loop may run zero times
        # (m = 0).  Iteration t=0 is therefore not a guaranteed
        # witness; reporting it would be a false-positive *error*.
        diagnostics = lint("""
            __kernel void k(__global float* out, int m) {
                __local float tile[4];
                float s = 0.0f;
                for (int t = 0; t * t < m; ++t) {
                    s += tile[t + 10];
                }
                out[get_global_id(0)] = s;
            }""")
        assert not messages(diagnostics, "symbolic-oob")

    def test_without_reqd_attribute_no_definite_witness(self):
        # Only work-item 0 is guaranteed; tile[lid + 1] = tile[1] is in
        # bounds, so no *definite* report without the attribute.
        diagnostics = lint("""
            __kernel void k(__global float* out) {
                __local float tile[32];
                int lid = get_local_id(0);
                tile[lid + 1] = 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                out[get_global_id(0)] = tile[lid];
            }""")
        assert not messages(diagnostics, "symbolic-oob")


class TestCoalescing:
    STRIDED = """
        __kernel void k(__global float* out, __global const float* in, int n) {
            int i = get_global_id(0);
            if (i < n) out[2 * i] = in[2 * i + 1];
        }"""

    def test_strided_store_and_load_warn(self):
        diagnostics = lint(self.STRIDED)
        assert messages(diagnostics, "uncoalesced-access")
        assert messages(diagnostics, "strided-global-read")
        assert all(d.severity is Severity.WARNING for d in diagnostics)

    def test_unit_stride_and_uniform_broadcast_are_silent(self):
        diagnostics = lint("""
            __kernel void k(__global float* out, __global const float* in,
                            int n) {
                int i = get_global_id(0);
                if (i < n) out[i] = in[i] + in[0];
            }""")
        assert not messages(diagnostics, "uncoalesced-access")
        assert not messages(diagnostics, "strided-global-read")

    def test_column_major_matrix_walk_warns(self):
        diagnostics = lint("""
            __kernel void k(__global float* out, int w, int h) {
                int i = get_global_id(0);
                for (int r = 0; r < h; ++r) {
                    out[i * h + r] = 0.0f;  /* row-major transpose walk */
                }
            }""")
        assert messages(diagnostics, "uncoalesced-access")

    def test_allow_comment_suppresses(self):
        diagnostics = lint("""
            __kernel void k(__global float* out, __global const float* in,
                            int n) {
                int i = get_global_id(0);
                /* skelcl-lint: allow(uncoalesced-access) */
                if (i < n) out[2 * i] = in[i];
            }""")
        assert not messages(diagnostics, "uncoalesced-access")

    def test_allow_comment_is_rule_specific(self):
        diagnostics = lint("""
            __kernel void k(__global float* out, __global const float* in,
                            int n) {
                int i = get_global_id(0);
                /* skelcl-lint: allow(strided-global-read) */
                if (i < n) out[2 * i] = in[2 * i];
            }""")
        assert messages(diagnostics, "uncoalesced-access")
        assert not messages(diagnostics, "strided-global-read")


class TestBuildIntegration:
    def test_strict_mode_fails_build_on_symbolic_oob(self, monkeypatch):
        monkeypatch.setenv("SKELCL_SANITIZE", "strict")
        from repro import ocl
        from repro.ocl.program import BuildError

        context = ocl.Context.create(ocl.TEST_DEVICE, 1)
        try:
            program = context.create_program("""
                __attribute__((reqd_work_group_size(16, 1, 1)))
                __kernel void bad(__global float* out) {
                    __local float tile[16];
                    tile[get_local_id(0) + 1] = 0.0f;
                    barrier(CLK_LOCAL_MEM_FENCE);
                    out[get_global_id(0)] = tile[0];
                }""")
            with pytest.raises(BuildError) as excinfo:
                program.build()
            assert "symbolic-oob" in str(excinfo.value)
        finally:
            context.release()


class TestCli:
    def test_access_flag_prints_footprints(self, tmp_path, capsys):
        from repro.kernelc.__main__ import main

        path = tmp_path / "k.cl"
        path.write_text("""
__kernel void k(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = in[i];
}
""")
        assert main([str(path), "--access"]) == 0
        out = capsys.readouterr().out
        assert "kernel k" in out
        assert "2/2 pointer parameter(s) affine" in out

    def test_access_composes_with_lint_exit_code(self, tmp_path, capsys):
        from repro.kernelc.__main__ import main

        path = tmp_path / "bad.cl"
        path.write_text("""
__attribute__((reqd_work_group_size(8, 1, 1)))
__kernel void bad(__global float* out) {
    __local float tile[8];
    tile[get_local_id(0) + 1] = 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[0];
}
""")
        assert main([str(path), "--access", "--lint"]) == 1
        captured = capsys.readouterr()
        assert "symbolic-oob" in captured.err
        assert "kernel bad" in captured.out
