"""PyOP2-style jit intents flowing into SkelSan's access analysis.

Two halves:

* **Decoration-time enforcement** — a body that contradicts its
  declared intent (writing a READ pointer, reading a WRITE pointer) is
  rejected when the function is jitted, before any kernel exists.
* **Verbatim declarations** — a declared intent overrides the derived
  access mode in :func:`repro.analysis.access.pointer_param_modes`:
  the analysis must not second-guess a declaration, so ``RW`` on a
  read-only body still reports ``rw`` (the paper's conservative
  contract for user-declared access sets)."""

import numpy as np
import pytest

import repro.skelcl as skelcl
from repro.analysis.access import pointer_param_modes
from repro.kernelc.frontend import compile_source
from repro.skelcl import JitError


def modes_of(fn):
    """Compile a jit function's lowered source and run the pointer-mode
    analysis on it."""
    source = fn.lower_source(fn.resolve_param_ctypes())
    program = compile_source(source, "<jit>")
    target = next(f for f in program.functions if f.name == fn.__name__)
    return pointer_param_modes(program, target)


class TestDecorationTimeEnforcement:
    def test_writing_a_read_pointer_fails_at_decoration(self):
        with pytest.raises(JitError, match="declared READ but the body "
                                           "writes it"):
            @skelcl.jit
            def bad(v: skelcl.READ[np.float32]) -> np.float32:
                v[0] = 2.0
                return v[0]

    def test_reading_a_write_pointer_fails_at_decoration(self):
        with pytest.raises(JitError, match="declared WRITE but the body "
                                           "reads it"):
            @skelcl.jit
            def bad(out: skelcl.WRITE[np.float32]) -> np.float32:
                return out[0]

    def test_inc_pointer_allows_only_increments(self):
        with pytest.raises(JitError, match="declared INC; only \\+="):
            @skelcl.jit
            def bad(acc: skelcl.INC[np.float32]) -> np.float32:
                acc[0] = acc[0] * 2.0
                return 0.0


class TestDeclaredIntentsAreVerbatim:
    def test_rw_on_read_only_body_stays_rw(self):
        @skelcl.jit
        def touches(v: skelcl.RW[np.float32]) -> np.float32:
            return v[0] * 2.0

        assert "/*@intent:touches.v=rw*/" in touches.lower_source(
            touches.resolve_param_ctypes())
        assert modes_of(touches) == {"v": "rw"}

    def test_read_declaration_reports_r(self):
        @skelcl.jit
        def reads(v: skelcl.READ[np.float32]) -> np.float32:
            return v[0] + v[1]

        assert modes_of(reads) == {"v": "r"}

    def test_underived_declaration_beats_analysis(self):
        """The same read-only body WITHOUT a declaration derives 'r' —
        proof the 'rw' above really came from the marker, not the
        body."""
        @skelcl.jit
        def plain(v: skelcl.READ[np.float32]) -> np.float32:
            return v[0] * 2.0

        source = plain.lower_source(plain.resolve_param_ctypes())
        # Drop the intent marker line, then re-analyze: the derived
        # mode for the read-only body is 'r'.
        stripped = "\n".join(line for line in source.split("\n")
                             if "/*@intent:" not in line)
        # The READ intent also makes the parameter const; strip that
        # too so the derived mode comes purely from the body.
        stripped = stripped.replace("const float* v", "float* v")
        program = compile_source(stripped, "<jit>")
        target = next(f for f in program.functions if f.name == "plain")
        assert pointer_param_modes(program, target) == {"v": "r"}
