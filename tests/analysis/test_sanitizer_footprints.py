"""Footprint-driven SkelSan precision: two unordered kernels writing
interleaved strided halves of one buffer must NOT be reported as a race
(the classic false positive whole-buffer mode analysis produces), while
genuinely overlapping writes still are.  Also pins the observability
counters: ``skelcl_access_summary_total{kind=...}`` and MapOverlap's
``skelcl_transfer_bytes_saved_total``."""

import numpy as np
import pytest

from repro import ocl

N = 512

EVENS = """
__kernel void evens(__global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) out[2 * i] = 1.0f;
}
"""

ODDS = """
__kernel void odds(__global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) out[2 * i + 1] = 2.0f;
}
"""

SAME = """
__kernel void same(__global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) out[2 * i] = 3.0f;
}
"""


@pytest.fixture
def ctx():
    context = ocl.Context.create(ocl.TEST_DEVICE, 1, detect_races="strict")
    yield context
    context.release()


def launch(ctx, queue, source, name, buffer, wait=()):
    kernel = ctx.create_program(source).build().create_kernel(name)
    kernel.set_args(buffer, N)
    return queue.enqueue_nd_range_kernel(kernel, (N,), (64,),
                                         event_wait_list=list(wait))


class TestDisjointStrides:
    def test_interleaved_writers_are_not_a_race(self, ctx):
        queue = ctx.queues[0]
        out = ctx.create_buffer(4 * 2 * N, queue.device)
        a = launch(ctx, queue, EVENS, "evens", out)
        b = launch(ctx, queue, ODDS, "odds", out)  # no ordering edge
        a.wait()
        b.wait()
        ctx.finish_all()  # strict mode raises on any detected race

    def test_same_phase_writers_still_race(self, ctx):
        queue = ctx.queues[0]
        out = ctx.create_buffer(4 * 2 * N, queue.device)
        from repro.analysis import RaceError

        with pytest.raises(RaceError) as excinfo:
            launch(ctx, queue, EVENS, "evens", out)
            launch(ctx, queue, SAME, "same", out)
            ctx.finish_all()
        # Provenance names the argument and index expression.
        assert "arg out" in str(excinfo.value)

    def test_footprints_attached_to_event_accesses(self, ctx):
        queue = ctx.queues[0]
        out = ctx.create_buffer(4 * 2 * N, queue.device)
        event = launch(ctx, queue, EVENS, "evens", out)
        event.wait()
        (access,) = [a for a in event.accesses if a.buffer_uid == out.uid]
        assert access.stride == 8
        assert access.width == 4
        assert access.start == 0
        assert "index" in access.provenance

    def test_affine_summary_counter(self, ctx):
        queue = ctx.queues[0]
        out = ctx.create_buffer(4 * 2 * N, queue.device)
        launch(ctx, queue, EVENS, "evens", out).wait()
        snapshot = ctx.metrics_snapshot()
        series = snapshot["counters"].get("skelcl_access_summary_total", {})
        assert series.get("{kind=affine}", 0) >= 1


class TestMapOverlapBytesSaved:
    def test_proven_reach_shrinks_halo_transfers(self):
        import repro.skelcl as skelcl
        from repro.skelcl import MapOverlap, Vector

        runtime = skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE)
        try:
            # Declared overlap 4, but the function provably reads ±1:
            # each device's halo shrinks by 3 elements per side.
            blur = MapOverlap(
                "float func(float* v) { return v[-1] + v[0] + v[1]; }", 4)
            assert blur.effective_overlap == 1
            data = np.arange(4096, dtype=np.float32)
            result = blur(Vector(data=data)).to_numpy()
            expected = data[:-2] + data[1:-1] + data[2:]
            np.testing.assert_allclose(result[1:-1], expected[:], rtol=1e-5)
            snapshot = runtime.metrics_snapshot()
            series = snapshot["counters"].get(
                "skelcl_transfer_bytes_saved_total", {})
            # 2 devices, one interior boundary, 3 elements x 4 bytes per
            # side of it.
            assert sum(series.values()) == 2 * 3 * 4
        finally:
            runtime.close()

    def test_aliased_access_keeps_declared_halo(self):
        from repro.skelcl import MapOverlap

        # The alias hides a read at offset 3 from the bounds proof; the
        # halo must stay at the declared overlap, not shrink to the
        # tracked (empty) reach.
        blur = MapOverlap(
            "float func(float* v) { float* p = v; return p[3]; }", 4)
        assert not blur.checks_elided
        assert blur.effective_overlap == 4

    def test_full_reach_saves_nothing(self):
        import repro.skelcl as skelcl
        from repro.skelcl import MapOverlap, Vector

        runtime = skelcl.init(num_devices=2, spec=ocl.TEST_DEVICE)
        try:
            blur = MapOverlap(
                "float func(float* v) { return v[-1] + v[0] + v[1]; }", 1)
            assert blur.effective_overlap == 1
            blur(Vector(data=np.ones(1024, np.float32))).to_numpy()
            snapshot = runtime.metrics_snapshot()
            series = snapshot["counters"].get(
                "skelcl_transfer_bytes_saved_total", {})
            assert sum(series.values()) == 0
        finally:
            runtime.close()
