"""SkelAccess unit tests: affine access summaries of kernel sources and
their enqueue-time resolution to concrete byte ranges."""

import pytest

from repro.analysis import affine
from repro.analysis.access import BufferAccess
from repro.kernelc.frontend import compile_source


def summarize(source):
    program = compile_source(source, "<test>")
    fn = program.kernels()[0]
    return affine.summarize_kernel(program, fn)


class TestSummaries:
    def test_map_kernel_is_affine(self):
        summary = summarize("""
            __kernel void k(__global const float* in, __global float* out,
                            unsigned int n, unsigned int off) {
                size_t i = get_global_id(0);
                if (i < n) out[i] = 2.0f * in[i + off];
            }""")
        assert summary.params["in"].affine
        assert summary.params["out"].affine
        (read,) = summary.params["in"].footprints
        assert read.mode == "r"
        assert read.index.format() == "get_global_id(0) + off"
        (write,) = summary.params["out"].footprints
        assert write.mode == "w"
        assert write.index.format() == "get_global_id(0)"
        # The bound guard rides along: i < n  ==>  i + 1 - n <= 0.
        assert any("n" in g.format() for g in write.guards)

    def test_local_pointer_params_are_not_summarized(self):
        summary = summarize("""
            __kernel void k(__global float* out, __local float* scratch) {
                size_t i = get_global_id(0);
                scratch[get_local_id(0)] = 1.0f;
                out[i] = scratch[0];
            }""")
        assert set(summary.params) == {"out"}

    def test_non_affine_index_falls_back_with_reason(self):
        summary = summarize("""
            __kernel void k(__global const int* table, __global int* out) {
                int i = get_global_id(0);
                out[i] = table[out[i] * i];
            }""")
        psum = summary.params["table"]
        assert not psum.affine
        assert psum.fallback_reason

    def test_pointer_escaping_to_helper_is_tracked_through_call(self):
        summary = summarize("""
            float pick(__global const float* p, int i) { return p[i + 1]; }
            __kernel void k(__global const float* in, __global float* out) {
                int i = get_global_id(0);
                out[i] = pick(in, i);
            }""")
        assert summary.params["in"].affine
        (read,) = summary.params["in"].footprints
        assert read.index.format() == "get_global_id(0) + 1"

    def test_callee_early_return_guard_does_not_leak_into_caller(self):
        # `f` early-returns under i >= n; the negated guard (i < n)
        # covers only the callee's remaining statements.  The caller's
        # unconditional out[i] write must not inherit it, or the write
        # footprint under-approximates and races go unreported.
        summary = summarize("""
            int f(int i, int n) {
                if (i >= n) return 0;
                return i;
            }
            __kernel void k(__global int* out, unsigned int n) {
                int i = get_global_id(0);
                int t = f(i, n);
                out[i] = t;
            }""")
        (write,) = summary.params["out"].footprints
        assert not write.guards
        env = affine.make_eval_env((16,), (4,), {"n": 4})
        resolved = affine.resolve_footprint(write, env, 4, 16 * 4)
        # All 16 work-items write, regardless of the callee's guard.
        assert (resolved.start, resolved.stop) == (0, 16 * 4)

    def test_reqd_work_group_size_attribute_parsed(self):
        summary = summarize("""
            __attribute__((reqd_work_group_size(64, 1, 1)))
            __kernel void k(__global float* out) {
                out[get_global_id(0)] = 0.0f;
            }""")
        assert summary.reqd_wg == (64, 1, 1)


class TestResolution:
    def test_map_footprint_resolves_to_exact_bytes(self):
        summary = summarize("""
            __kernel void k(__global const float* in, __global float* out,
                            unsigned int n, unsigned int off) {
                size_t i = get_global_id(0);
                if (i < n) out[i] = in[i + off];
            }""")
        env = affine.make_eval_env((1024,), (256,), {"n": 1000, "off": 5})
        (read,) = summary.params["in"].footprints
        resolved = affine.resolve_footprint(read, env, 4, 8192)
        # gid in [0, 999] (narrowed by the guard), +5 offset, 4 bytes each.
        assert (resolved.start, resolved.stop) == (5 * 4, (1000 + 5) * 4)
        assert resolved.stride == 0
        (write,) = summary.params["out"].footprints
        resolved = affine.resolve_footprint(write, env, 4, 8192)
        assert (resolved.start, resolved.stop) == (0, 1000 * 4)

    def test_grid_stride_loop_resolves_exactly(self):
        summary = summarize("""
            __kernel void k(__global const float* in, __global float* out,
                            unsigned int n) {
                for (size_t i = get_global_id(0); i < n;
                     i += get_global_size(0)) {
                    out[i] = in[i];
                }
            }""")
        env = affine.make_eval_env((256,), (64,), {"n": 5000})
        (read,) = summary.params["in"].footprints
        resolved = affine.resolve_footprint(read, env, 4, 4 * 5000)
        assert (resolved.start, resolved.stop) == (0, 4 * 5000)

    def test_strided_store_resolves_with_stride(self):
        summary = summarize("""
            __kernel void k(__global float* out, unsigned int n) {
                size_t i = get_global_id(0);
                if (i < n) out[2 * i + 1] = 0.0f;
            }""")
        env = affine.make_eval_env((512,), (64,), {"n": 512})
        (write,) = summary.params["out"].footprints
        resolved = affine.resolve_footprint(write, env, 4, 4 * 1024)
        assert resolved.start == 4  # element 1
        assert resolved.stride == 8  # every other float
        assert resolved.width == 4

    def test_infeasible_guards_resolve_to_none(self):
        summary = summarize("""
            __kernel void k(__global float* out, unsigned int n) {
                size_t i = get_global_id(0);
                if (i < n) out[i] = 0.0f;
            }""")
        env = affine.make_eval_env((256,), (64,), {"n": 0})
        (write,) = summary.params["out"].footprints
        assert affine.resolve_footprint(write, env, 4, 1024) is None

    def test_missing_scalar_raises_unresolvable(self):
        summary = summarize("""
            __kernel void k(__global float* out, unsigned int off) {
                out[get_global_id(0) + off] = 0.0f;
            }""")
        env = affine.make_eval_env((256,), (64,), {})
        (write,) = summary.params["out"].footprints
        with pytest.raises(affine.Unresolvable):
            affine.resolve_footprint(write, env, 4, 4096)


class TestResidueDisjointness:
    def access(self, start, stop, stride, width, mode="w"):
        return BufferAccess(1, "buf", start, stop, mode,
                            stride=stride, width=width)

    def test_even_odd_strided_writes_do_not_conflict(self):
        even = self.access(0, 4096, 8, 4)
        odd = self.access(4, 4100, 8, 4)
        assert not even.conflicts_with(odd)
        assert not odd.conflicts_with(even)

    def test_same_phase_strided_writes_conflict(self):
        a = self.access(0, 4096, 8, 4)
        b = self.access(0, 4096, 8, 4)
        assert a.conflicts_with(b)

    def test_mixed_width_overlapping_windows_conflict(self):
        # a covers residues {0,1,2,3} mod 8; b writes single bytes at
        # residue 2 — inside a's window, so they share bytes.
        a = self.access(0, 4096, 8, 4)
        b = self.access(2, 4099, 8, 1)
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_mixed_width_disjoint_windows_do_not_conflict(self):
        # a covers residues {0,1,2,3} mod 8; b touches residue 6 only.
        a = self.access(0, 4096, 8, 4)
        b = self.access(6, 4103, 8, 1)
        assert not a.conflicts_with(b)
        assert not b.conflicts_with(a)

    def test_dense_range_conflicts_with_overlapping_stride(self):
        dense = self.access(0, 4096, 0, 0)
        strided = self.access(4, 4100, 8, 4)
        assert dense.conflicts_with(strided)

    def test_reads_never_conflict(self):
        a = self.access(0, 4096, 0, 0, mode="r")
        b = self.access(0, 4096, 0, 0, mode="r")
        assert not a.conflicts_with(b)

    def test_describe_carries_provenance(self):
        access = BufferAccess(7, "out", 0, 64, "w", stride=8, width=4,
                              provenance="arg out, index 2*get_global_id(0)")
        text = access.describe()
        assert "out#7[0:64:8]" in text
        assert "arg out" in text
