"""Golden-output pins for the paper's evaluation applications.

Each test runs one of the paper's applications end-to-end through the
full SkelCL stack (skeleton → kernel source → compile → execute →
read-back) and pins a SHA-256 of the exact output bytes, per backend.
The pins serve two purposes:

* **Regression tripwire** — any change anywhere in the stack that
  perturbs a single output byte (compiler folding, evaluator rounding,
  distribution arithmetic, read-back paths) fails loudly here.
* **Backend invariance proof** — the interp and vector pins are the
  same hash by construction: the vectorized backend is bit-exact
  against the per-item path, so switching backends must never change
  any application's output.

If an intentional semantic change lands, re-derive the pins with the
snippet in each table's comment and update *both* backends together —
a pin update that touches only one backend is itself a bug.
"""

import hashlib

import numpy as np
import pytest

from repro.apps.dotproduct import dot_product
from repro.apps.images import synthetic_image
from repro.apps.mandelbrot import Mandelbrot, mandelbrot_reference
from repro.apps.sobel import SobelEdgeDetection

BACKENDS = ("interp", "vector")


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# Derived via: Mandelbrot(max_iterations=40).render_image(64, 48)
_MANDELBROT_GOLDEN = {
    "interp": "f8aecf11eaee4e25bb493243cd499a741b624c24a82126e86047277b379b6fe2",
    "vector": "f8aecf11eaee4e25bb493243cd499a741b624c24a82126e86047277b379b6fe2",
}

# Derived via: SobelEdgeDetection().detect(synthetic_image(64, 64))
_SOBEL_GOLDEN = {
    "interp": "f1c9e8fcb4830cca6c3f8d2a8095589ae2b8cf4f0972f0bdb7f5dcf89b73db0b",
    "vector": "f1c9e8fcb4830cca6c3f8d2a8095589ae2b8cf4f0972f0bdb7f5dcf89b73db0b",
}

# Derived via: dot_product over RandomState(2013) float32 vectors of 1024.
_DOT_GOLDEN = {
    "interp": "3bb446c29242f223a6854d1c0130c65b2ec80aed5d8949621bec569a897e7ebe",
    "vector": "3bb446c29242f223a6854d1c0130c65b2ec80aed5d8949621bec569a897e7ebe",
}


def test_pins_are_backend_invariant():
    """The documented invariant, checked structurally on the tables."""
    for table in (_MANDELBROT_GOLDEN, _SOBEL_GOLDEN, _DOT_GOLDEN):
        assert table["interp"] == table["vector"]
        assert set(table) == set(BACKENDS)


class TestMandelbrotGolden:
    """Fig. 4 application: the Mandelbrot Map skeleton."""

    def test_image_hash_pinned(self, runtime_backend):
        image = Mandelbrot(max_iterations=40).render_image(64, 48)
        assert image.dtype == np.uint8 and image.shape == (48, 64)
        assert _sha(image.tobytes()) == _MANDELBROT_GOLDEN[runtime_backend.backend]

    def test_pinned_image_still_resembles_reference(self, runtime_backend):
        # Guard against pinning a wrong-but-stable image: the pinned
        # output must stay close to the numpy escape-time oracle.
        image = Mandelbrot(max_iterations=40).render_image(64, 48)
        reference = mandelbrot_reference(64, 48, 40)
        mismatch = np.count_nonzero(image != reference) / image.size
        assert mismatch < 0.02


class TestSobelGolden:
    """Fig. 5 application: Sobel via MapOverlap."""

    def test_edges_hash_pinned(self, runtime_backend):
        edges = SobelEdgeDetection().detect(synthetic_image(64, 64))
        assert edges.dtype == np.uint8 and edges.shape == (64, 64)
        assert _sha(edges.tobytes()) == _SOBEL_GOLDEN[runtime_backend.backend]


class TestDotProductGolden:
    """Listing 1.1 application: Zip ∘ Reduce dot product."""

    def test_scalar_hash_pinned(self, runtime_backend):
        rng = np.random.RandomState(2013)
        a = rng.uniform(-1, 1, 1024).astype(np.float32)
        b = rng.uniform(-1, 1, 1024).astype(np.float32)
        result = dot_product(a, b)
        assert _sha(np.float64(result).tobytes()) == _DOT_GOLDEN[runtime_backend.backend]
        # And the value itself is right (tree-reduction order differs
        # from numpy's pairwise sum, hence the tolerance).
        assert abs(result - float(np.dot(a.astype(np.float64), b))) < 1e-3
